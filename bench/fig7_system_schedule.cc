// Fig 7 / Example 4: the four top-level transactions on the
// encyclopedia, executed through the real runtime (open nested semantic
// locking), with their call trees and inherited dependencies — plus a
// benchmark of replaying the whole scenario.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/encyclopedia.h"
#include "schedule/printer.h"
#include "schedule/validator.h"

using namespace oodb;

namespace {

/// Runs T1..T4 of Example 4; returns the database for inspection.
std::unique_ptr<Database> RunExample4() {
  auto db = std::make_unique<Database>();
  Encyclopedia::RegisterMethods(db.get());
  ObjectId enc = Encyclopedia::Create(db.get(), "Enc", 8, 8, 4);
  (void)db->RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert("DBS", "database systems"));
  });
  (void)db->RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
    return txn.Call(enc, Encyclopedia::Change("DBMS", "dbms v2"));
  });
  (void)db->RunTransaction("T3", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
  });
  (void)db->RunTransaction("T4", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
  });
  return db;
}

void PrintFig7() {
  std::unique_ptr<Database> db = RunExample4();
  std::printf("Fig 7: object-oriented transactions of Example 4 "
              "(executed through the runtime)\n\n");
  std::printf("%s\n", SchedulePrinter::AllTrees(db->ts()).c_str());

  ValidationReport report = Validator::Validate(&db->ts());
  std::printf("verdict: %s\n", report.Summary().c_str());
  if (!report.serialization_order.empty()) {
    std::printf("equivalent serial order:");
    for (ActionId t : report.serialization_order) {
      std::printf(" %s", db->ts().action(t).label.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: T3 (search DBS) serializes after T1 (insert DBS);\n"
      "T4 (readSeq) after T1 and T2; T1 vs T2 stay unordered - their\n"
      "page conflicts commute at the leaf (Example 1).\n\n");
}

void BM_Example4Replay(benchmark::State& state) {
  for (auto _ : state) {
    std::unique_ptr<Database> db = RunExample4();
    benchmark::DoNotOptimize(db->counters().committed.load());
  }
}
BENCHMARK(BM_Example4Replay);

void BM_Example4Validation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::unique_ptr<Database> db = RunExample4();
    state.ResumeTiming();
    ValidationReport report = Validator::Validate(&db->ts());
    benchmark::DoNotOptimize(report.oo_serializable);
  }
}
BENCHMARK(BM_Example4Validation);

}  // namespace

int main(int argc, char** argv) {
  PrintFig7();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
