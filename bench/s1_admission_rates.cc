// S1 (shape experiment): admission rates. The headline claim — "a lower
// rate of conflicting accesses than with the conventional definition of
// serializability is achieved" — quantified: across random
// interleavings, what fraction does each criterion accept?
//
// oo-serializability must accept a superset of conventional
// serializability (inclusion is also property-tested in the test suite);
// the gap must widen with more keys per page (commuting likelier) and
// narrow with more transactions (contradictions likelier).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "schedule/validator.h"
#include "workload/random_history.h"

using namespace oodb;

namespace {

struct Rates {
  double oo = 0;
  double conv = 0;
  double oo_only = 0;
};

Rates Measure(size_t num_txns, size_t keys_per_leaf, size_t trials) {
  Rates rates;
  for (size_t trial = 0; trial < trials; ++trial) {
    RandomHistoryConfig config;
    config.num_txns = num_txns;
    config.ops_per_txn = 3;
    config.num_leaves = 2;
    config.keys_per_leaf = keys_per_leaf;
    config.search_fraction = 0.3;
    config.seed = trial * 7919 + num_txns * 13 + keys_per_leaf;
    RandomHistory h = GenerateRandomHistory(config);
    ValidationReport report = Validator::Validate(h.ts.get());
    if (report.oo_serializable) rates.oo += 1;
    if (report.conventionally_serializable) rates.conv += 1;
    if (report.oo_serializable && !report.conventionally_serializable) {
      rates.oo_only += 1;
    }
  }
  rates.oo /= double(trials);
  rates.conv /= double(trials);
  rates.oo_only /= double(trials);
  return rates;
}

void PrintTable() {
  constexpr size_t kTrials = 150;
  std::printf("S1: schedule admission rates over %zu random "
              "interleavings per cell\n(2 leaves/pages, 3 ops per "
              "transaction, 30%% searches)\n\n", kTrials);
  std::printf("%6s %10s %10s %10s %12s\n", "txns", "keys/page",
              "oo-accept", "conv-accept", "oo-only gain");
  for (size_t txns : {2, 4, 8}) {
    for (size_t keys : {2, 8, 64}) {
      Rates r = Measure(txns, keys, kTrials);
      std::printf("%6zu %10zu %9.0f%% %9.0f%% %11.0f%%\n", txns, keys,
                  r.oo * 100, r.conv * 100, r.oo_only * 100);
    }
  }
  std::printf(
      "\nShape check: oo-accept >= conv-accept everywhere (inclusion);\n"
      "the oo-only gain grows with keys/page (page conflicts commute at\n"
      "the leaf) and both rates fall as transactions are added.\n\n");
}

void BM_ValidateHistory(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 3;
  config.keys_per_leaf = 16;
  for (auto _ : state) {
    state.PauseTiming();
    config.seed += 1;
    RandomHistory h = GenerateRandomHistory(config);
    state.ResumeTiming();
    ValidationReport report = Validator::Validate(h.ts.get());
    benchmark::DoNotOptimize(report.oo_serializable);
  }
}
BENCHMARK(BM_ValidateHistory)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
