// Fig 8: "Schedule dependencies of the objects" — the per-object
// dependency table, recomputed mechanically from the Example 4
// execution, plus a benchmark of the table computation on larger
// histories.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/encyclopedia.h"
#include "model/extension.h"
#include "schedule/printer.h"
#include "workload/random_history.h"

using namespace oodb;

namespace {

void PrintFig8() {
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
  (void)db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert("DBS", "database systems"));
  });
  (void)db.RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
    return txn.Call(enc, Encyclopedia::Change("DBMS", "dbms v2"));
  });
  (void)db.RunTransaction("T3", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
  });
  (void)db.RunTransaction("T4", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
  });

  SystemExtender::Extend(&db.ts());
  DependencyEngine engine(db.ts());
  if (!engine.Compute().ok()) return;

  std::printf("Fig 8: schedule dependencies of the objects "
              "(Example 4, recomputed)\n\n");
  std::printf("%s\n",
              SchedulePrinter::DependencyTable(db.ts(), engine).c_str());
  std::printf(
      "stats: %zu primitive conflicts (Axiom 1), %zu inherited (Def 10), "
      "%zu stopped at commuting callers,\n       %zu added cross-object "
      "dependencies (Def 15), %zu fixpoint rounds\n",
      engine.stats().primitive_conflicts, engine.stats().inherited_txn_deps,
      engine.stats().stopped_inheritance, engine.stats().added_deps,
      engine.stats().fixpoint_rounds);
  std::printf(
      "\nShape check (vs the paper's table): dependencies appear at the\n"
      "pages and at Leaf11 for the two inserts but vanish at BpTree/Enc\n"
      "level; the insert(DBS)/search(DBS) pair and the mutation/readSeq\n"
      "pairs survive to the top; the change->readSeq dependency shows up\n"
      "as an added dependency (Def 15) because its callers live on\n"
      "different objects.\n\n");
}

void BM_DependencyTable(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 3;
  config.num_leaves = 4;
  config.keys_per_leaf = 32;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    DependencyEngine engine(*h.ts);
    if (engine.Compute().ok()) {
      benchmark::DoNotOptimize(
          SchedulePrinter::DependencyTable(*h.ts, engine).size());
    }
  }
}
BENCHMARK(BM_DependencyTable)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  PrintFig8();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
