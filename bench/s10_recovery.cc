// S10 (robustness): what durability costs and what recovery buys.
//
// Two axes, both written to BENCH_recovery.json:
//
//   throughput  the same directory/hash-index workload with no engine
//               attached (the in-memory baseline), with the WAL on but
//               unsynced, and with the full force-at-commit discipline.
//               The gap no-wal -> wal-nosync is the logging overhead
//               (serialization + append); wal-nosync -> wal-fsync is
//               the price of the commit fsync itself.
//
//   recovery    restart time as a function of epoch log length: N
//               committed transactions with no checkpoint, then
//               Open + Recover on a fresh process image. Logical redo
//               re-executes real methods, so this is the cost model for
//               "how often should I checkpoint".

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "containers/directory.h"
#include "containers/hash_index.h"
#include "containers/persist.h"
#include "storage/recovery.h"
#include "util/random.h"

using namespace oodb;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = "/tmp/oodb_bench_s10_" + tag + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

void Register(Database* db) {
  RegisterDirectoryMethods(db);
  HashIndex::RegisterMethods(db);
}

Status OpenStore(StorageEngine* engine, Database* db) {
  OODB_RETURN_IF_ERROR(RegisterStandardSerdes(engine));
  OODB_RETURN_IF_ERROR(engine->Open(db));
  if (!engine->RootId("D").valid()) {
    OODB_RETURN_IF_ERROR(
        engine->AttachRoot("D", "directory", CreateDirectory(db, "D")));
  }
  if (!engine->RootId("H").valid()) {
    OODB_RETURN_IF_ERROR(engine->AttachRoot(
        "H", "hash-index", HashIndex::Create(db, "H", /*capacity=*/4)));
  }
  return Recover(engine, db);
}

/// The workload cell: `txns` transactions over `threads` threads, each
/// 1-3 inserts split between the directory and the hash index.
double RunWorkload(Database* db, ObjectId dir, ObjectId idx, size_t txns,
                   size_t threads, uint64_t seed) {
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const size_t per_thread = (txns + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([=] {
      Rng rng(seed * 7919 + t);
      for (size_t i = 0; i < per_thread; ++i) {
        (void)db->RunTransaction("b", [&](MethodContext& txn) -> Status {
          const size_t ops = 1 + rng.NextBelow(3);
          for (size_t k = 0; k < ops; ++k) {
            const std::string key = "k" + std::to_string(rng.NextBelow(200));
            const std::string val = "v" + std::to_string(i);
            Status st =
                rng.NextBool()
                    ? txn.Call(dir, Invocation("insert",
                                               {Value(key), Value(val)}))
                    : txn.Call(idx, HashIndex::Insert(key, val));
            if (!st.ok()) return st;
          }
          return Status::OK();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  return MsSince(start);
}

struct ThroughputRow {
  std::string mode;
  size_t txns = 0;
  double ms = 0;
  double txns_per_sec() const { return txns / (ms / 1000.0); }
};

ThroughputRow ThroughputCell(const std::string& mode, size_t txns,
                             size_t threads) {
  Database db;
  Register(&db);
  ThroughputRow row{mode, txns, 0};
  if (mode == "no-wal") {
    ObjectId dir = CreateDirectory(&db, "D");
    ObjectId idx = HashIndex::Create(&db, "H", 4);
    row.ms = RunWorkload(&db, dir, idx, txns, threads, 42);
    return row;
  }
  StorageEngineOptions opts;
  opts.dir = FreshDir("tp_" + mode);
  opts.wal.fsync = mode == "wal-fsync";
  StorageEngine engine(opts);
  if (!OpenStore(&engine, &db).ok()) std::exit(1);
  db.AttachDurability(&engine);
  row.ms = RunWorkload(&db, engine.RootId("D"), engine.RootId("H"), txns,
                       threads, 42);
  std::filesystem::remove_all(opts.dir);
  return row;
}

struct RecoveryRow {
  size_t logged_txns = 0;
  uint64_t redo_records = 0;
  uint64_t winners = 0;
  double recover_ms = 0;
};

RecoveryRow RecoveryCell(size_t txns) {
  const std::string dir = FreshDir("rec_" + std::to_string(txns));
  StorageEngineOptions opts;
  opts.dir = dir;
  {
    Database db;
    Register(&db);
    StorageEngine engine(opts);
    if (!OpenStore(&engine, &db).ok()) std::exit(1);
    db.AttachDurability(&engine);
    // No checkpoint: the whole workload stays in the epoch WAL.
    RunWorkload(&db, engine.RootId("D"), engine.RootId("H"), txns,
                /*threads=*/2, /*seed=*/7);
  }
  RecoveryRow row;
  row.logged_txns = txns;
  {
    Database db;
    Register(&db);
    StorageEngine engine(opts);
    if (!RegisterStandardSerdes(&engine).ok()) std::exit(1);
    if (!engine.Open(&db).ok()) std::exit(1);
    RecoveryStats stats;
    auto start = std::chrono::steady_clock::now();
    if (!Recover(&engine, &db, &stats).ok()) std::exit(1);
    row.recover_ms = MsSince(start);
    row.redo_records = stats.redo_records;
    row.winners = stats.winners;
  }
  std::filesystem::remove_all(dir);
  return row;
}

void WriteJson(const std::vector<ThroughputRow>& throughput,
               const std::vector<RecoveryRow>& recovery) {
  FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::printf("note: could not open BENCH_recovery.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"s10_recovery\",\n");
  std::fprintf(f, "  \"throughput\": [\n");
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"txns\": %zu, \"ms\": %.2f, "
                 "\"txns_per_sec\": %.0f}%s\n",
                 r.mode.c_str(), r.txns, r.ms, r.txns_per_sec(),
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryRow& r = recovery[i];
    std::fprintf(f,
                 "    {\"logged_txns\": %zu, \"winners\": %llu, "
                 "\"redo_records\": %llu, \"recover_ms\": %.2f}%s\n",
                 r.logged_txns, (unsigned long long)r.winners,
                 (unsigned long long)r.redo_records, r.recover_ms,
                 i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_recovery.json\n");
}

}  // namespace

int main() {
  std::printf("S10: durability cost and recovery scaling\n\n");

  constexpr size_t kTxns = 600;
  constexpr size_t kThreads = 2;
  std::printf("%-10s %6s %10s %12s\n", "mode", "txns", "ms", "txns/sec");
  std::vector<ThroughputRow> throughput;
  for (const char* mode : {"no-wal", "wal-nosync", "wal-fsync"}) {
    ThroughputRow row = ThroughputCell(mode, kTxns, kThreads);
    std::printf("%-10s %6zu %10.1f %12.0f\n", row.mode.c_str(), row.txns,
                row.ms, row.txns_per_sec());
    throughput.push_back(row);
  }

  std::printf("\n%-12s %8s %13s %12s\n", "logged_txns", "winners",
              "redo_records", "recover_ms");
  std::vector<RecoveryRow> recovery;
  for (size_t txns : {200, 800, 3200}) {
    RecoveryRow row = RecoveryCell(txns);
    std::printf("%-12zu %8llu %13llu %12.2f\n", row.logged_txns,
                (unsigned long long)row.winners,
                (unsigned long long)row.redo_records, row.recover_ms);
    recovery.push_back(row);
  }

  WriteJson(throughput, recovery);
  std::printf(
      "\nShape check: logging off the commit path is cheap; the fsync\n"
      "dominates durable throughput. Recovery time grows linearly in\n"
      "the epoch's redo records — checkpoint frequency bounds restart\n"
      "time, not correctness.\n");
  return 0;
}
