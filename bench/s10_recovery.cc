// S10 (robustness): what durability costs and what recovery buys.
//
// Two axes, both written to BENCH_recovery.json:
//
//   throughput  the same directory/hash-index workload with no engine
//               attached (the in-memory baseline), with the WAL on but
//               unsynced, and with the full force-at-commit discipline.
//               The gap no-wal -> wal-nosync is the logging overhead
//               (serialization + append); wal-nosync -> wal-fsync is
//               the price of the commit fsync itself.
//
//   recovery    restart time as a function of epoch log length: N
//               committed transactions with no checkpoint, then
//               Open + Recover on a fresh process image. Logical redo
//               re-executes real methods, so this is the cost model for
//               "how often should I checkpoint".
//
// Each recovery cell runs with a metrics registry attached, so the
// JSON rows carry the recovery-phase split (scan/analysis/redo/undo/
// checkpoint/finish, coverage 1.0 by construction) and the buffer-cache
// introspection headline numbers (hit ratio, evictions, pin p50/p99).
//
//   --recovery-only        skip the throughput cells (the series job
//                          only gates the recovery axis)
//   --series=PATH          record a sampler series (tag "s10-recovery")
//                          over the largest recovery cell
//   --series-interval=MS   sampler tick period (default 5)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "containers/directory.h"
#include "containers/hash_index.h"
#include "containers/persist.h"
#include "obs/sampler.h"
#include "storage/recovery.h"
#include "util/random.h"

using namespace oodb;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string FreshDir(const std::string& tag) {
  std::string dir = "/tmp/oodb_bench_s10_" + tag + "_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

void Register(Database* db) {
  RegisterDirectoryMethods(db);
  HashIndex::RegisterMethods(db);
}

Status OpenStore(StorageEngine* engine, Database* db) {
  OODB_RETURN_IF_ERROR(RegisterStandardSerdes(engine));
  OODB_RETURN_IF_ERROR(engine->Open(db));
  if (!engine->RootId("D").valid()) {
    OODB_RETURN_IF_ERROR(
        engine->AttachRoot("D", "directory", CreateDirectory(db, "D")));
  }
  if (!engine->RootId("H").valid()) {
    OODB_RETURN_IF_ERROR(engine->AttachRoot(
        "H", "hash-index", HashIndex::Create(db, "H", /*capacity=*/4)));
  }
  return Recover(engine, db);
}

/// The workload cell: `txns` transactions over `threads` threads, each
/// 1-3 inserts split between the directory and the hash index.
double RunWorkload(Database* db, ObjectId dir, ObjectId idx, size_t txns,
                   size_t threads, uint64_t seed) {
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  const size_t per_thread = (txns + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([=] {
      Rng rng(seed * 7919 + t);
      for (size_t i = 0; i < per_thread; ++i) {
        (void)db->RunTransaction("b", [&](MethodContext& txn) -> Status {
          const size_t ops = 1 + rng.NextBelow(3);
          for (size_t k = 0; k < ops; ++k) {
            const std::string key = "k" + std::to_string(rng.NextBelow(200));
            const std::string val = "v" + std::to_string(i);
            Status st =
                rng.NextBool()
                    ? txn.Call(dir, Invocation("insert",
                                               {Value(key), Value(val)}))
                    : txn.Call(idx, HashIndex::Insert(key, val));
            if (!st.ok()) return st;
          }
          return Status::OK();
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  return MsSince(start);
}

struct ThroughputRow {
  std::string mode;
  size_t txns = 0;
  double ms = 0;
  double txns_per_sec() const { return txns / (ms / 1000.0); }
};

ThroughputRow ThroughputCell(const std::string& mode, size_t txns,
                             size_t threads) {
  Database db;
  Register(&db);
  ThroughputRow row{mode, txns, 0};
  if (mode == "no-wal") {
    ObjectId dir = CreateDirectory(&db, "D");
    ObjectId idx = HashIndex::Create(&db, "H", 4);
    row.ms = RunWorkload(&db, dir, idx, txns, threads, 42);
    return row;
  }
  StorageEngineOptions opts;
  opts.dir = FreshDir("tp_" + mode);
  opts.wal.fsync = mode == "wal-fsync";
  StorageEngine engine(opts);
  if (!OpenStore(&engine, &db).ok()) std::exit(1);
  db.AttachDurability(&engine);
  row.ms = RunWorkload(&db, engine.RootId("D"), engine.RootId("H"), txns,
                       threads, 42);
  std::filesystem::remove_all(opts.dir);
  return row;
}

struct RecoveryRow {
  size_t logged_txns = 0;
  uint64_t redo_records = 0;
  uint64_t winners = 0;
  double recover_ms = 0;
  RecoveryTimeline timeline;
  PageCacheStats cache;
  uint64_t pin_p50_ns = 0;
  uint64_t pin_p99_ns = 0;
};

RecoveryRow RecoveryCell(size_t txns, const std::string& series_path,
                         uint64_t series_interval_ms) {
  const std::string dir = FreshDir("rec_" + std::to_string(txns));
  StorageEngineOptions opts;
  opts.dir = dir;
  {
    Database db;
    Register(&db);
    StorageEngine engine(opts);
    if (!OpenStore(&engine, &db).ok()) std::exit(1);
    db.AttachDurability(&engine);
    // No checkpoint: the whole workload stays in the epoch WAL.
    RunWorkload(&db, engine.RootId("D"), engine.RootId("H"), txns,
                /*threads=*/2, /*seed=*/7);
  }
  RecoveryRow row;
  row.logged_txns = txns;
  {
    Database db;
    Register(&db);
    StorageEngine engine(opts);
    MetricsRegistry registry;
    engine.AttachMetrics(&registry);
    if (!RegisterStandardSerdes(&engine).ok()) std::exit(1);
    if (!engine.Open(&db).ok()) std::exit(1);
    SamplerOptions sampler_opts;
    sampler_opts.interval = std::chrono::milliseconds(series_interval_ms);
    sampler_opts.tag = "s10-recovery";
    MetricsSampler sampler(&registry, sampler_opts);
    engine.InstallSamplerProbes(&sampler);
    const bool record = !series_path.empty();
    if (record) sampler.Start();
    RecoveryStats stats;
    auto start = std::chrono::steady_clock::now();
    if (!Recover(&engine, &db, &stats).ok()) std::exit(1);
    row.recover_ms = MsSince(start);
    if (record) {
      sampler.Stop();
      Status wrote = sampler.WriteJsonLines(series_path);
      if (!wrote.ok()) {
        std::printf("note: could not write %s: %s\n", series_path.c_str(),
                    wrote.ToString().c_str());
      } else {
        std::printf("wrote %s\n", series_path.c_str());
      }
    }
    row.redo_records = stats.redo_records;
    row.winners = stats.winners;
    row.timeline = stats.timeline;
    row.cache = engine.cache()->stats();
    const HistogramSnapshot pins =
        registry.GetHistogram("storage.cache.pin_ns")->Snapshot();
    row.pin_p50_ns = pins.Quantile(0.5);
    row.pin_p99_ns = pins.Quantile(0.99);
  }
  std::filesystem::remove_all(dir);
  return row;
}

void WriteJson(const std::vector<ThroughputRow>& throughput,
               const std::vector<RecoveryRow>& recovery) {
  FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::printf("note: could not open BENCH_recovery.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"s10_recovery\",\n");
  std::fprintf(f, "  \"throughput\": [\n");
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"txns\": %zu, \"ms\": %.2f, "
                 "\"txns_per_sec\": %.0f}%s\n",
                 r.mode.c_str(), r.txns, r.ms, r.txns_per_sec(),
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryRow& r = recovery[i];
    auto phase_ms = [&r](RecoveryPhase p) {
      return double(r.timeline.Ns(p)) / 1e6;
    };
    std::fprintf(f,
                 "    {\"logged_txns\": %zu, \"winners\": %llu, "
                 "\"redo_records\": %llu, \"recover_ms\": %.2f,\n",
                 r.logged_txns, (unsigned long long)r.winners,
                 (unsigned long long)r.redo_records, r.recover_ms);
    std::fprintf(f,
                 "     \"phases\": {\"scan_ms\": %.3f, \"analysis_ms\": "
                 "%.3f, \"redo_ms\": %.3f, \"undo_ms\": %.3f, "
                 "\"checkpoint_ms\": %.3f, \"finish_ms\": %.3f, "
                 "\"coverage\": %.4f},\n",
                 phase_ms(RecoveryPhase::kScan),
                 phase_ms(RecoveryPhase::kAnalysis),
                 phase_ms(RecoveryPhase::kRedo),
                 phase_ms(RecoveryPhase::kUndo),
                 phase_ms(RecoveryPhase::kCheckpoint),
                 phase_ms(RecoveryPhase::kFinish), r.timeline.Coverage());
    const uint64_t lookups = r.cache.hits + r.cache.misses;
    std::fprintf(f,
                 "     \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                 "\"hit_ratio\": %.4f, \"evictions\": %llu, "
                 "\"writebacks\": %llu, \"pin_p50_ns\": %llu, "
                 "\"pin_p99_ns\": %llu}}%s\n",
                 (unsigned long long)r.cache.hits,
                 (unsigned long long)r.cache.misses,
                 lookups > 0 ? double(r.cache.hits) / double(lookups) : 0.0,
                 (unsigned long long)r.cache.evictions,
                 (unsigned long long)r.cache.writebacks,
                 (unsigned long long)r.pin_p50_ns,
                 (unsigned long long)r.pin_p99_ns,
                 i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_recovery.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool recovery_only = false;
  std::string series_path;
  uint64_t series_interval_ms = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--recovery-only") {
      recovery_only = true;
    } else if (arg.rfind("--series=", 0) == 0) {
      series_path = arg.substr(9);
    } else if (arg.rfind("--series-interval=", 0) == 0) {
      series_interval_ms = std::strtoull(arg.c_str() + 18, nullptr, 10);
      if (series_interval_ms == 0) series_interval_ms = 5;
    } else {
      std::fprintf(stderr, "s10_recovery: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::printf("S10: durability cost and recovery scaling\n\n");

  std::vector<ThroughputRow> throughput;
  if (!recovery_only) {
    constexpr size_t kTxns = 600;
    constexpr size_t kThreads = 2;
    std::printf("%-10s %6s %10s %12s\n", "mode", "txns", "ms", "txns/sec");
    for (const char* mode : {"no-wal", "wal-nosync", "wal-fsync"}) {
      ThroughputRow row = ThroughputCell(mode, kTxns, kThreads);
      std::printf("%-10s %6zu %10.1f %12.0f\n", row.mode.c_str(), row.txns,
                  row.ms, row.txns_per_sec());
      throughput.push_back(row);
    }
    std::printf("\n");
  }

  std::printf("%-12s %8s %13s %12s %9s %9s\n", "logged_txns", "winners",
              "redo_records", "recover_ms", "redo%", "cache-hit%");
  std::vector<RecoveryRow> recovery;
  const std::vector<size_t> cells = {200, 800, 3200};
  for (size_t txns : cells) {
    // The series (when asked for) records the largest cell — the one
    // long enough for per-tick phase/progress gauges to mean anything.
    const bool record = txns == cells.back();
    RecoveryRow row = RecoveryCell(txns, record ? series_path : "",
                                   series_interval_ms);
    const uint64_t lookups = row.cache.hits + row.cache.misses;
    std::printf("%-12zu %8llu %13llu %12.2f %8.1f%% %8.1f%%\n",
                row.logged_txns, (unsigned long long)row.winners,
                (unsigned long long)row.redo_records, row.recover_ms,
                row.timeline.total_ns > 0
                    ? 100.0 * double(row.timeline.Ns(RecoveryPhase::kRedo)) /
                          double(row.timeline.total_ns)
                    : 0.0,
                lookups > 0 ? 100.0 * double(row.cache.hits) / double(lookups)
                            : 0.0);
    recovery.push_back(row);
  }

  WriteJson(throughput, recovery);
  std::printf(
      "\nShape check: logging off the commit path is cheap; the fsync\n"
      "dominates durable throughput. Recovery time grows linearly in\n"
      "the epoch's redo records — checkpoint frequency bounds restart\n"
      "time, not correctness.\n");
  return 0;
}
