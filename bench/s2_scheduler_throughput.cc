// S2 (shape experiment): scheduler throughput on the encyclopedia
// workload. The paper's promise is runtime concurrency: open nested
// semantic locking should beat flat page-level 2PL — and crush the
// object-exclusive strawman — on nested workloads with shared pages,
// with the gap growing under contention and thread count.
//
// This is a plain timing harness (no google-benchmark): the harness
// measures wall time, commits, aborts, deadlocks, and lock waits per
// scheduler x thread-count x contention cell.
//
// A final section validates one recorded contended run twice — under
// the hand-written commutativity specs and under the matrices the
// inference engine synthesizes (analysis/spec_synthesis.h, installed
// via TransactionSystem::SetSpecOverride) — and compares dependency-
// edge counts and validation time. --inference-json=PATH dumps that
// comparison (BENCH_inference.json in the repo root is its committed
// snapshot).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/commutativity_inference.h"
#include "analysis/spec_synthesis.h"
#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "schedule/validator.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

constexpr size_t kKeys = 256;

HarnessResult RunCell(SchedulerKind scheduler, size_t threads,
                      double zipf_theta, size_t txns_per_thread,
                      MetricsRegistry* metrics) {
  DatabaseOptions opts;
  opts.scheduler = scheduler;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(300);
  Database db(opts);
  if (metrics != nullptr) db.AttachObservability(metrics, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/32,
                                      /*fanout=*/32, /*items_per_page=*/8);
  // Preload under open-nested-equivalent single thread (no contention).
  for (size_t i = 0; i < kKeys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05zu", i);
    (void)db.RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(enc, Encyclopedia::Insert(key, "seed"));
    });
  }
  db.counters().Reset();

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = txns_per_thread;
  config.metrics = metrics;
  return Harness::Run(
      &db, config,
      [enc, zipf_theta](size_t thread, size_t index) -> TransactionBody {
        return [enc, zipf_theta, thread, index](MethodContext& txn) {
          thread_local std::unique_ptr<ZipfGenerator> zipf;
          thread_local double zipf_theta_cached = -1;
          if (!zipf || zipf_theta_cached != zipf_theta) {
            zipf = std::make_unique<ZipfGenerator>(kKeys, zipf_theta,
                                                   thread * 31 + 7);
            zipf_theta_cached = zipf_theta;
          }
          thread_local Rng rng(thread * 1009 + 1);
          char key[16];
          std::snprintf(key, sizeof(key), "k%05llu",
                        (unsigned long long)zipf->Next());
          (void)index;
          double dice = rng.NextDouble();
          Status st;
          if (dice < 0.5) {
            Value out;
            st = txn.Call(enc, Encyclopedia::Search(key), &out);
          } else {
            st = txn.Call(enc, Encyclopedia::Change(
                                   key, "rev" + std::to_string(index)));
          }
          OODB_RETURN_IF_ERROR(st);
          // Keep the transaction open for a moment (user think time /
          // downstream IO) while its locks are held: the window in
          // which schedulers differ.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return Status::OK();
        };
      });
}

/// One validation cell of the hand-vs-inferred comparison.
struct SpecCell {
  uint64_t validate_ns = 0;
  bool oo_serializable = false;
  DependencyStats stats;

  std::string Json() const {
    return "{\"validate_ns\":" + std::to_string(validate_ns) +
           ",\"oo_serializable\":" +
           (oo_serializable ? std::string("true") : std::string("false")) +
           ",\"primitive_conflicts\":" +
           std::to_string(stats.primitive_conflicts) +
           ",\"inherited_txn_deps\":" +
           std::to_string(stats.inherited_txn_deps) +
           ",\"stopped_inheritance\":" +
           std::to_string(stats.stopped_inheritance) +
           ",\"added_deps\":" + std::to_string(stats.added_deps) +
           ",\"unordered_conflicts\":" +
           std::to_string(stats.unordered_conflicts) + "}";
  }
};

/// Validates the recorded system `reps` times (extension already
/// applied) and keeps the fastest wall time — the numbers CI and the
/// committed BENCH_inference.json snapshot track.
SpecCell TimeValidation(TransactionSystem* ts, size_t reps) {
  SpecCell cell;
  ValidationOptions options;
  options.apply_extension = false;
  for (size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    ValidationReport report = Validator::Validate(ts, options);
    const uint64_t ns =
        uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    if (rep == 0 || ns < cell.validate_ns) cell.validate_ns = ns;
    cell.oo_serializable = report.oo_serializable;
    cell.stats = report.stats;
  }
  return cell;
}

/// Records one contended open-nested run, synthesizes a matrix for
/// every registered type, and validates the same execution under the
/// hand specs and the inferred specs.
std::string RunInferenceComparison(MetricsRegistry* metrics) {
  constexpr size_t kThreads = 4;
  constexpr size_t kTxns = 60;
  static constexpr double kTheta = 0.9;
  constexpr size_t kReps = 5;

  DatabaseOptions opts;
  opts.scheduler = SchedulerKind::kOpenNested;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(300);
  Database db(opts);
  db.AttachObservability(metrics, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/32,
                                      /*fanout=*/32, /*items_per_page=*/8);
  for (size_t i = 0; i < kKeys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05zu", i);
    (void)db.RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(enc, Encyclopedia::Insert(key, "seed"));
    });
  }
  HarnessConfig config;
  config.threads = kThreads;
  config.txns_per_thread = kTxns;
  config.metrics = metrics;
  HarnessResult run = Harness::Run(
      &db, config, [enc](size_t thread, size_t index) -> TransactionBody {
        return [enc, thread, index](MethodContext& txn) {
          thread_local std::unique_ptr<ZipfGenerator> zipf;
          if (!zipf) {
            zipf = std::make_unique<ZipfGenerator>(kKeys, kTheta,
                                                   thread * 31 + 7);
          }
          thread_local Rng rng(thread * 1009 + 1);
          char key[16];
          std::snprintf(key, sizeof(key), "k%05llu",
                        (unsigned long long)zipf->Next());
          if (rng.NextDouble() < 0.5) {
            Value out;
            return txn.Call(enc, Encyclopedia::Search(key), &out);
          }
          return txn.Call(
              enc, Encyclopedia::Change(key, "rev" + std::to_string(index)));
        };
      });

  // Synthesize matrices for every registered type (Page probes; the
  // composite types delegate to their audited hand specs).
  oodb::analysis::InferenceStats istats;
  std::vector<std::unique_ptr<oodb::analysis::SynthesizedSpec>> specs;
  std::vector<const ObjectType*> types;
  for (const ObjectType* type : db.registry().Types()) {
    oodb::analysis::InferredMatrix matrix =
        oodb::analysis::InferType(type, db.registry());
    istats.Add(matrix);
    specs.push_back(std::make_unique<oodb::analysis::SynthesizedSpec>(
        std::move(matrix)));
    types.push_back(type);
  }

  // Extend once, then time both specs on the identical extended system.
  (void)Validator::Validate(&db.ts());
  SpecCell hand = TimeValidation(&db.ts(), kReps);
  for (size_t i = 0; i < types.size(); ++i) {
    db.ts().SetSpecOverride(types[i], specs[i].get());
  }
  SpecCell inferred = TimeValidation(&db.ts(), kReps);

  std::printf("--- hand spec vs inferred spec (same recorded run: %zu "
              "threads, zipf %.1f, %llu commits) ---\n",
              kThreads, kTheta, (unsigned long long)run.committed);
  std::printf("%-10s %12s %10s %10s %10s %8s %s\n", "spec", "prim.confl",
              "inherited", "stopped", "added", "val.ms", "Def16");
  for (const auto& [name, cell] :
       {std::pair<const char*, const SpecCell&>{"hand", hand},
        {"inferred", inferred}}) {
    std::printf("%-10s %12zu %10zu %10zu %10zu %8.2f %s\n", name,
                cell.stats.primitive_conflicts, cell.stats.inherited_txn_deps,
                cell.stats.stopped_inheritance, cell.stats.added_deps,
                double(cell.validate_ns) / 1e6,
                cell.oo_serializable ? "holds" : "VIOLATED");
  }
  std::printf(
      "The inferred Page matrix commutes different-key writes the hand\n"
      "reader/writer spec refuses, so the primitive conflict relation\n"
      "thins out; both verdicts must agree (soundness).\n\n");

  return "{\"workload\":{\"threads\":" + std::to_string(kThreads) +
         ",\"txns_per_thread\":" + std::to_string(kTxns) +
         ",\"zipf_theta\":" + std::to_string(kTheta) +
         ",\"committed\":" + std::to_string(run.committed) +
         "},\"hand\":" + hand.Json() +
         ",\"inferred\":" + inferred.Json() +
         ",\"inference\":{\"types\":" + std::to_string(istats.types) +
         ",\"types_probed\":" + std::to_string(istats.types_probed) +
         ",\"pairs_probed\":" + std::to_string(istats.pairs_probed) +
         ",\"probe_runs\":" + std::to_string(istats.probe_runs) +
         ",\"entries_tightened\":" +
         std::to_string(istats.entries_tightened) +
         ",\"entries_unsound\":" + std::to_string(istats.entries_unsound) +
         "}}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-json=PATH: accumulate every cell's runtime counters and
  // latency histogram into one registry and dump it at exit.
  // --inference-json=PATH: dump the hand-vs-inferred comparison cell.
  std::string metrics_path;
  std::string inference_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    } else if (arg.rfind("--inference-json=", 0) == 0) {
      inference_path = arg.substr(std::string("--inference-json=").size());
    }
  }
  // ONE registry for every phase of the bench (all scheduler cells and
  // the inference comparison). A sampler attached to it sees monotone
  // counter streams across phase boundaries; per-phase registries would
  // make deltas jump backwards at each phase start (the sampler's
  // debug fold asserts counters never decrease).
  MetricsRegistry registry;
  MetricsRegistry* metrics = &registry;

  constexpr size_t kTxnsPerThread = 60;
  std::printf("S2: encyclopedia workload (50%% search / 50%% change over "
              "256 preloaded items),\n%zu txns per thread, each holding its locks ~200us\n\n",
              kTxnsPerThread);
  for (double theta : {0.0, 0.9}) {
    std::printf("--- contention: zipf theta = %.1f ---\n", theta);
    std::printf("%-18s %8s %s\n", "scheduler", "threads", "result");
    for (SchedulerKind kind :
         {SchedulerKind::kOpenNested, SchedulerKind::kClosedNested,
          SchedulerKind::kFlat2PL, SchedulerKind::kObjectExclusive}) {
      for (size_t threads : {1, 2, 4, 8}) {
        HarnessResult r =
            RunCell(kind, threads, theta, kTxnsPerThread, metrics);
        std::printf("%-18s %8zu %s\n", SchedulerKindName(kind), threads,
                    r.Row().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check: open-nested >= flat-2pl >= object-exclusive in\n"
      "throughput at >1 thread; the object-exclusive strawman collapses\n"
      "(every transaction locks Enc until commit), flat 2PL suffers lock\n"
      "waits on shared pages under contention, open nested waits only on\n"
      "genuine same-key conflicts. At 1 thread the three are comparable\n"
      "(the S3 bench isolates the CC overhead).\n\n");
  const std::string inference_json = RunInferenceComparison(metrics);
  if (!inference_path.empty()) {
    FILE* f = std::fopen(inference_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("note: could not open %s for writing\n",
                  inference_path.c_str());
      return 0;
    }
    std::fputs(inference_json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", inference_path.c_str());
  }
  if (!metrics_path.empty()) {
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("note: could not open %s for writing\n",
                  metrics_path.c_str());
      return 0;
    }
    std::fputs(registry.JsonSnapshot().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
