// S2 (shape experiment): scheduler throughput on the encyclopedia
// workload. The paper's promise is runtime concurrency: open nested
// semantic locking should beat flat page-level 2PL — and crush the
// object-exclusive strawman — on nested workloads with shared pages,
// with the gap growing under contention and thread count.
//
// This is a plain timing harness (no google-benchmark): the harness
// measures wall time, commits, aborts, deadlocks, and lock waits per
// scheduler x thread-count x contention cell.

#include <cstdio>
#include <string>
#include <thread>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

constexpr size_t kKeys = 256;

HarnessResult RunCell(SchedulerKind scheduler, size_t threads,
                      double zipf_theta, size_t txns_per_thread,
                      MetricsRegistry* metrics) {
  DatabaseOptions opts;
  opts.scheduler = scheduler;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(300);
  Database db(opts);
  if (metrics != nullptr) db.AttachObservability(metrics, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/32,
                                      /*fanout=*/32, /*items_per_page=*/8);
  // Preload under open-nested-equivalent single thread (no contention).
  for (size_t i = 0; i < kKeys; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05zu", i);
    (void)db.RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(enc, Encyclopedia::Insert(key, "seed"));
    });
  }
  db.counters().Reset();

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = txns_per_thread;
  config.metrics = metrics;
  return Harness::Run(
      &db, config,
      [enc, zipf_theta](size_t thread, size_t index) -> TransactionBody {
        return [enc, zipf_theta, thread, index](MethodContext& txn) {
          thread_local std::unique_ptr<ZipfGenerator> zipf;
          thread_local double zipf_theta_cached = -1;
          if (!zipf || zipf_theta_cached != zipf_theta) {
            zipf = std::make_unique<ZipfGenerator>(kKeys, zipf_theta,
                                                   thread * 31 + 7);
            zipf_theta_cached = zipf_theta;
          }
          thread_local Rng rng(thread * 1009 + 1);
          char key[16];
          std::snprintf(key, sizeof(key), "k%05llu",
                        (unsigned long long)zipf->Next());
          (void)index;
          double dice = rng.NextDouble();
          Status st;
          if (dice < 0.5) {
            Value out;
            st = txn.Call(enc, Encyclopedia::Search(key), &out);
          } else {
            st = txn.Call(enc, Encyclopedia::Change(
                                   key, "rev" + std::to_string(index)));
          }
          OODB_RETURN_IF_ERROR(st);
          // Keep the transaction open for a moment (user think time /
          // downstream IO) while its locks are held: the window in
          // which schedulers differ.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return Status::OK();
        };
      });
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics-json=PATH: accumulate every cell's runtime counters and
  // latency histogram into one registry and dump it at exit.
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    }
  }
  MetricsRegistry registry;
  MetricsRegistry* metrics = metrics_path.empty() ? nullptr : &registry;

  constexpr size_t kTxnsPerThread = 60;
  std::printf("S2: encyclopedia workload (50%% search / 50%% change over "
              "256 preloaded items),\n%zu txns per thread, each holding its locks ~200us\n\n",
              kTxnsPerThread);
  for (double theta : {0.0, 0.9}) {
    std::printf("--- contention: zipf theta = %.1f ---\n", theta);
    std::printf("%-18s %8s %s\n", "scheduler", "threads", "result");
    for (SchedulerKind kind :
         {SchedulerKind::kOpenNested, SchedulerKind::kClosedNested,
          SchedulerKind::kFlat2PL, SchedulerKind::kObjectExclusive}) {
      for (size_t threads : {1, 2, 4, 8}) {
        HarnessResult r =
            RunCell(kind, threads, theta, kTxnsPerThread, metrics);
        std::printf("%-18s %8zu %s\n", SchedulerKindName(kind), threads,
                    r.Row().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check: open-nested >= flat-2pl >= object-exclusive in\n"
      "throughput at >1 thread; the object-exclusive strawman collapses\n"
      "(every transaction locks Enc until commit), flat 2PL suffers lock\n"
      "waits on shared pages under contention, open nested waits only on\n"
      "genuine same-key conflicts. At 1 thread the three are comparable\n"
      "(the S3 bench isolates the CC overhead).\n");
  if (metrics != nullptr) {
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("note: could not open %s for writing\n",
                  metrics_path.c_str());
      return 0;
    }
    std::fputs(registry.JsonSnapshot().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
