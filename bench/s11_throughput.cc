// S11: sustained-throughput headline for the sharded runtime.
//
// An open-loop (pgbench-style) driver over a contended Zipf workload of
// primitive Cell operations: commuting adds, conflicting puts, and
// reads. Worker threads issue transactions against a schedule of
// arrival times (rate=0 degenerates to closed-loop max throughput);
// latency is measured from the *scheduled* arrival, so queueing delay
// counts, and recorded into per-thread histograms merged at the end
// (shared util/histogram layout).
//
// The headline compares the classic runtime (1 shard, recorded
// history — exactly the pre-sharding code path) against the sharded
// runtime (8 shards, epoch-batched history) on the same workload, and
// prints the attribution cells (each axis alone) so the speedup is
// explainable. --suite writes BENCH_throughput.json; --smoke is the CI
// gate (small fixed rate, asserts nonzero sustained throughput and a
// clean shutdown).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/database.h"
#include "cc/epoch_log.h"
#include "model/type_registry.h"
#include "obs/metrics.h"
#include "obs/phases.h"
#include "obs/sampler.h"
#include "util/histogram.h"
#include "util/random.h"

using namespace oodb;

namespace {

// ---------------------------------------------------------------------
// The Cell: a primitive counter object with the three op classes a
// contention study needs — add/add commutes (semantic concurrency),
// put conflicts with everything (real lock waits), get/get commutes.

struct CellState : public ObjectState {
  int64_t value = 0;
};

const ObjectType* CellType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("get", "get");
    spec->SetCommutes("add", "add");
    // put is unregistered: conflicts with get, add, and put.
    return new ObjectType("Cell", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

void RegisterCellMethods(Database* db) {
  TypeRegistry::Global().Register(CellType());
  db->Register(CellType(), "get",
               [](MethodContext& ctx, const ValueList&, Value* result) {
                 *result = Value(ctx.state<CellState>()->value);
                 return Status::OK();
               },
               MethodTraits{.observer = true});
  db->Register(CellType(), "add",
               [](MethodContext& ctx, const ValueList& params, Value*) {
                 ctx.state<CellState>()->value += params[0].AsInt();
                 ctx.SetCompensation(
                     Invocation("add", {Value(-params[0].AsInt())}));
                 return Status::OK();
               });
  db->Register(CellType(), "put",
               [](MethodContext& ctx, const ValueList& params, Value*) {
                 auto* cell = ctx.state<CellState>();
                 ctx.SetCompensation(
                     Invocation("put", {Value(cell->value)}));
                 cell->value = params[0].AsInt();
                 return Status::OK();
               });
}

// ---------------------------------------------------------------------

struct CellConfig {
  std::string name;
  size_t shards = 1;
  HistoryMode history = HistoryMode::kRecorded;
  size_t threads = 8;
  uint64_t keys = 64;
  double theta = 0.99;      ///< Zipf skew over the key space
  int ops_per_txn = 4;
  double put_fraction = 0.20;
  double get_fraction = 0.20;
  uint64_t rate = 0;        ///< total arrivals/sec; 0 = closed loop
  double seconds = 3.0;
  uint64_t seed = 42;
  /// Flight-recorder series destination for this cell (empty = don't
  /// sample). %s in the path expands to the cell name.
  std::string series_path;
  uint64_t sample_interval_ms = 10;
};

struct CellResult {
  double elapsed = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t deadlocks = 0;
  uint64_t operations = 0;
  uint64_t lock_waits = 0;
  double actions_per_sec = 0;
  double txns_per_sec = 0;
  Histogram latency;  ///< ns from scheduled arrival to completion
  std::vector<LockShardStats> shard_stats;
  /// Per-phase service-time attribution (sum of ns per phase across
  /// committed roots) + the measured end-to-end total it must cover.
  uint64_t phase_sum_ns[kPhaseCount] = {};
  uint64_t phase_total_ns = 0;
  uint64_t phase_total_count = 0;
  SamplerStats sampler_stats;  ///< zeros when the cell did not sample
};

std::string ExpandCellName(const std::string& pattern,
                           const std::string& name) {
  const size_t pos = pattern.find("%s");
  if (pos == std::string::npos) return pattern;
  return pattern.substr(0, pos) + name + pattern.substr(pos + 2);
}

CellResult RunCell(const CellConfig& cfg) {
  DatabaseOptions options;
  options.shards = cfg.shards;
  options.history = cfg.history;
  Database db(options);
  // One registry for the whole cell (workload + flusher + sampler):
  // attaching it turns on per-phase latency attribution, and the
  // sampler folds it into the flight-recorder series.
  MetricsRegistry registry;
  db.AttachObservability(&registry, nullptr);
  RegisterCellMethods(&db);
  std::vector<ObjectId> cells;
  cells.reserve(cfg.keys);
  for (uint64_t i = 0; i < cfg.keys; ++i) {
    cells.push_back(db.CreateObject(CellType(), "c" + std::to_string(i),
                                    std::make_unique<CellState>()));
  }

  // Epoch flusher: one batch per 5ms epoch, no sink (batches are
  // counted and dropped — pure throughput mode).
  std::atomic<bool> stop_flusher{false};
  std::thread flusher;
  if (db.epoch_log() != nullptr) {
    flusher = std::thread([&] {
      while (!stop_flusher.load(std::memory_order_relaxed)) {
        db.AdvanceEpoch();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      db.AdvanceEpoch();
    });
  }

  // Flight recorder: contention snapshots + counter deltas every tick,
  // exported as the JSON-lines series oodb_top consumes.
  std::unique_ptr<MetricsSampler> sampler;
  if (!cfg.series_path.empty()) {
    SamplerOptions soptions;
    soptions.interval = std::chrono::milliseconds(cfg.sample_interval_ms);
    soptions.tag = "s11:" + cfg.name;
    sampler = std::make_unique<MetricsSampler>(&registry, soptions);
    db.InstallSamplerProbes(sampler.get());
    sampler->Start();
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(cfg.seconds));
  const uint64_t interval_ns =
      cfg.rate == 0
          ? 0
          : uint64_t(1e9 * double(cfg.threads) / double(cfg.rate));

  std::vector<Histogram> hists(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (size_t t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ZipfGenerator zipf(cfg.keys, cfg.theta, cfg.seed ^ (t * 0x9E37ULL));
      Rng rng(cfg.seed * 31 + t);
      Histogram& hist = hists[t];
      uint64_t issued = 0;
      std::vector<uint64_t> keys(size_t(cfg.ops_per_txn));
      for (;;) {
        auto now = Clock::now();
        auto scheduled = now;
        if (interval_ns != 0) {
          // Open loop: the t-th thread owns arrivals t, t+T, t+2T, ...
          scheduled = start + std::chrono::nanoseconds(
                                  interval_ns * issued +
                                  interval_ns * t / cfg.threads);
          if (scheduled > deadline) break;
          if (scheduled > now) {
            std::this_thread::sleep_until(scheduled);
          }
          // Behind schedule: issue immediately; the queueing delay
          // lands in the latency histogram where it belongs.
        } else if (now >= deadline) {
          break;
        }
        // Zipf-skewed distinct keys, sorted: lock *ordering* keeps the
        // workload deadlock-free so the measurement is waits, not
        // retry backoff. (Dedup below shrinks the vector, so restore
        // the draw count first.)
        keys.resize(size_t(cfg.ops_per_txn));
        for (auto& k : keys) k = zipf.Next();
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        Status st = db.RunTransaction(
            "s11", [&](MethodContext& txn) -> Status {
              for (uint64_t k : keys) {
                double dice = rng.NextDouble();
                Status op;
                if (dice < cfg.put_fraction) {
                  op = txn.Call(cells[k],
                                Invocation("put", {Value(int64_t(k))}));
                } else if (dice < cfg.put_fraction + cfg.get_fraction) {
                  op = txn.Call(cells[k], Invocation("get"));
                } else {
                  op = txn.Call(cells[k], Invocation("add", {Value(1)}));
                }
                OODB_RETURN_IF_ERROR(op);
              }
              return Status::OK();
            });
        (void)st;
        hist.Add(uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - scheduled)
                              .count()));
        ++issued;
        if ((issued & 0x3F) == 0 && Clock::now() >= deadline) break;
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (flusher.joinable()) {
    stop_flusher.store(true);
    flusher.join();
  }

  CellResult r;
  if (sampler != nullptr) {
    sampler->Stop();
    r.sampler_stats = sampler->Stats();
    const std::string path = ExpandCellName(cfg.series_path, cfg.name);
    Status st = sampler->WriteJsonLines(path);
    if (!st.ok()) {
      std::fprintf(stderr, "series write failed: %s\n",
                   st.ToString().c_str());
    } else {
      std::printf("wrote %s (%llu ticks)\n", path.c_str(),
                  (unsigned long long)r.sampler_stats.ticks);
    }
  }
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    r.phase_sum_ns[i] =
        registry
            .GetHistogram(std::string("phase.") + PhaseSuffix(phase) +
                          "_ns")
            ->Snapshot()
            .sum();
  }
  HistogramSnapshot total = registry.GetHistogram("phase.total_ns")->Snapshot();
  r.phase_total_ns = total.sum();
  r.phase_total_count = total.count();
  r.elapsed = elapsed;
  r.committed = db.counters().committed.load();
  r.aborted = db.counters().aborted.load();
  r.deadlocks = db.counters().deadlocks.load();
  r.operations = db.counters().operations.load();
  r.lock_waits = db.locks().wait_count();
  r.actions_per_sec = double(r.operations + r.committed) / elapsed;
  r.txns_per_sec = double(r.committed) / elapsed;
  for (const Histogram& h : hists) r.latency.Merge(h);
  r.shard_stats = db.locks().PerShardStats();
  return r;
}

void PrintRow(const CellConfig& cfg, const CellResult& r) {
  uint64_t phase_total = 0;
  size_t dominant = 0;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    phase_total += r.phase_sum_ns[i];
    if (r.phase_sum_ns[i] > r.phase_sum_ns[dominant]) dominant = i;
  }
  std::printf(
      "%-22s %2zu shards %-13s %6.0f s  %9.0f act/s %8.0f txn/s  "
      "p50=%.0fus p95=%.0fus p99=%.0fus  waits=%llu dl=%llu  "
      "dom=%s(%.0f%%)\n",
      cfg.name.c_str(), cfg.shards, HistoryModeName(cfg.history),
      r.elapsed, r.actions_per_sec, r.txns_per_sec,
      double(r.latency.Quantile(0.50)) / 1e3,
      double(r.latency.Quantile(0.95)) / 1e3,
      double(r.latency.Quantile(0.99)) / 1e3,
      (unsigned long long)r.lock_waits, (unsigned long long)r.deadlocks,
      PhaseName(static_cast<Phase>(dominant)),
      phase_total > 0
          ? 100.0 * double(r.phase_sum_ns[dominant]) / double(phase_total)
          : 0.0);
}

void AppendCellJson(std::string* out, const CellConfig& cfg,
                    const CellResult& r, bool last) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"shards\": %zu,\n"
      "      \"history\": \"%s\",\n"
      "      \"threads\": %zu,\n"
      "      \"keys\": %llu,\n"
      "      \"zipf_theta\": %.2f,\n"
      "      \"ops_per_txn\": %d,\n"
      "      \"put_fraction\": %.2f,\n"
      "      \"rate_per_sec\": %llu,\n"
      "      \"elapsed_sec\": %.3f,\n"
      "      \"actions_per_sec\": %.0f,\n"
      "      \"txns_per_sec\": %.0f,\n"
      "      \"committed\": %llu,\n"
      "      \"aborted\": %llu,\n"
      "      \"deadlocks\": %llu,\n"
      "      \"lock_waits\": %llu,\n"
      "      \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, "
      "\"p99\": %.1f, \"max\": %.1f},\n",
      cfg.name.c_str(), cfg.shards, HistoryModeName(cfg.history),
      cfg.threads, (unsigned long long)cfg.keys, cfg.theta,
      cfg.ops_per_txn, cfg.put_fraction,
      (unsigned long long)cfg.rate, r.elapsed, r.actions_per_sec,
      r.txns_per_sec, (unsigned long long)r.committed,
      (unsigned long long)r.aborted, (unsigned long long)r.deadlocks,
      (unsigned long long)r.lock_waits,
      double(r.latency.Quantile(0.50)) / 1e3,
      double(r.latency.Quantile(0.95)) / 1e3,
      double(r.latency.Quantile(0.99)) / 1e3,
      double(r.latency.max()) / 1e3);
  *out += buf;
  // Per-phase service-time attribution: where root-transaction time
  // went. share is of the summed phases; execute is the residual, so
  // the shares cover measured end-to-end time exactly.
  uint64_t phase_total = 0;
  for (size_t i = 0; i < kPhaseCount; ++i) phase_total += r.phase_sum_ns[i];
  *out += "      \"phases\": {";
  for (size_t i = 0; i < kPhaseCount; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\": {\"sum_ns\": %llu, "
                  "\"share\": %.4f}",
                  i == 0 ? "" : ", ",
                  PhaseName(static_cast<Phase>(i)),
                  (unsigned long long)r.phase_sum_ns[i],
                  phase_total > 0
                      ? double(r.phase_sum_ns[i]) / double(phase_total)
                      : 0.0);
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "},\n      \"phase_total_ns\": %llu,\n",
                (unsigned long long)r.phase_total_ns);
  *out += buf;
  *out += "      \"per_shard\": [";
  for (size_t i = 0; i < r.shard_stats.size(); ++i) {
    const LockShardStats& s = r.shard_stats[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"acquires\": %llu, \"waits\": %llu, "
                  "\"deadlocks\": %llu, \"wait_ms\": %.1f}",
                  i == 0 ? "" : ", ", (unsigned long long)s.acquires,
                  (unsigned long long)s.waits,
                  (unsigned long long)s.deadlocks,
                  double(s.wait_ns) / 1e6);
    *out += buf;
  }
  *out += "]\n    }";
  *out += last ? "\n" : ",\n";
}

int RunSmoke(const CellConfig& base) {
  // CI gate: a short fixed-small-rate open-loop run on the sharded
  // configuration must sustain nonzero throughput and shut down clean.
  CellConfig cfg;
  cfg.series_path = base.series_path;
  cfg.sample_interval_ms = base.sample_interval_ms;
  cfg.name = "smoke";
  cfg.shards = 4;
  cfg.history = HistoryMode::kEpochBatched;
  cfg.threads = 2;
  cfg.rate = 2000;
  cfg.seconds = 1.0;
  CellResult r = RunCell(cfg);
  PrintRow(cfg, r);
  if (r.committed == 0 || r.operations == 0) {
    std::fprintf(stderr, "smoke FAILED: no sustained throughput\n");
    return 1;
  }
  std::printf("smoke ok: %llu txns committed, %llu actions\n",
              (unsigned long long)r.committed,
              (unsigned long long)r.operations);
  return 0;
}

int RunSuite(const std::string& json_path, const CellConfig& tuned) {
  CellConfig base = tuned;

  // The headline pair: the pre-sharding runtime vs the sharded one.
  CellConfig classic = base;
  classic.name = "single-shard-recorded";
  classic.shards = 1;
  classic.history = HistoryMode::kRecorded;
  CellConfig sharded = base;
  sharded.name = "sharded-8-epoch";
  sharded.shards = 8;
  sharded.history = HistoryMode::kEpochBatched;
  // Attribution cells: one axis at a time.
  CellConfig shards_only = base;
  shards_only.name = "sharded-8-recorded";
  shards_only.shards = 8;
  shards_only.history = HistoryMode::kRecorded;
  CellConfig epoch_only = base;
  epoch_only.name = "single-shard-epoch";
  epoch_only.shards = 1;
  epoch_only.history = HistoryMode::kEpochBatched;

  std::printf("S11: open-loop throughput, %zu threads, %llu keys, "
              "zipf %.2f, %d ops/txn (%.0f%% put / %.0f%% get / rest "
              "add), closed loop, %.1fs per cell\n\n",
              base.threads, (unsigned long long)base.keys, base.theta,
              base.ops_per_txn, base.put_fraction * 100,
              base.get_fraction * 100, base.seconds);

  std::vector<std::pair<CellConfig, CellResult>> cells;
  for (const CellConfig& cfg :
       {classic, epoch_only, shards_only, sharded}) {
    cells.emplace_back(cfg, RunCell(cfg));
    PrintRow(cells.back().first, cells.back().second);
  }
  const CellResult& slow = cells.front().second;
  const CellResult& fast = cells.back().second;
  double speedup = fast.actions_per_sec / slow.actions_per_sec;
  std::printf("\nheadline: %.0f -> %.0f actions/sec, %.2fx "
              "(target >= 5x)\n",
              slow.actions_per_sec, fast.actions_per_sec, speedup);

  if (!json_path.empty()) {
    std::string out;
    out += "{\n  \"bench\": \"s11_throughput\",\n";
    out += "  \"unit\": \"actions/sec sustained (primitive ops + "
           "commits per wall second)\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"headline\": {\"speedup\": %.2f, \"baseline\": "
                  "\"single-shard-recorded\", \"contender\": "
                  "\"sharded-8-epoch\", \"target\": 5.0},\n",
                  speedup);
    out += buf;
    out += "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      AppendCellJson(&out, cells[i].first, cells[i].second,
                     i + 1 == cells.size());
    }
    out += "  ]\n}\n";
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return speedup >= 5.0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, suite = false;
  std::string json_path;
  CellConfig base;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--suite") {
      suite = true;
      if (json_path.empty()) json_path = "BENCH_throughput.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--seconds=", 0) == 0) {
      base.seconds = std::atof(arg.c_str() + 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      base.threads = size_t(std::atoi(arg.c_str() + 10));
    } else if (arg.rfind("--keys=", 0) == 0) {
      base.keys = uint64_t(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--theta=", 0) == 0) {
      base.theta = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--ops=", 0) == 0) {
      base.ops_per_txn = std::atoi(arg.c_str() + 6);
    } else if (arg.rfind("--put=", 0) == 0) {
      base.put_fraction = std::atof(arg.c_str() + 6);
    } else if (arg.rfind("--rate=", 0) == 0) {
      base.rate = uint64_t(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--series=", 0) == 0) {
      base.series_path = arg.substr(9);
    } else if (arg.rfind("--series-interval=", 0) == 0) {
      base.sample_interval_ms = uint64_t(std::atoll(arg.c_str() + 18));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--suite] [--json=PATH] "
                   "[--seconds=N] [--threads=N] [--keys=N] [--theta=F] "
                   "[--ops=N] [--put=F] [--rate=N] [--series=PATH] "
                   "[--series-interval=MS]\n"
                   "  --series: write each cell's flight-recorder series "
                   "(%%s in PATH = cell name)\n",
                   argv[0]);
      return 1;
    }
  }
  if (smoke) return RunSmoke(base);
  if (suite || !json_path.empty()) return RunSuite(json_path, base);
  // Default: a quick look at the headline pair.
  base.seconds = 1.0;
  return RunSuite("", base) == 1 ? 1 : 0;
}
