// Fig 1: "Differences between conventional transactions and
// object-oriented operations" — the paper's comparison table, regenerated
// by measuring both archetypes on this implementation:
//
//   conventional: bank transfers (access to small objects, short
//                 duration, simple actions),
//   object-oriented: encyclopedia inserts and document edits (large and
//                 complex structured objects, long duration, complex
//                 structured actions).
//
// We report, per transaction: objects touched, actions executed, call
// depth, and wall time — the measurable counterparts of the table's
// rows — then benchmark each transaction type.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <set>

#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "util/stopwatch.h"

using namespace oodb;

namespace {

struct Profile {
  double actions = 0;
  double depth = 0;
  double objects = 0;
  double micros = 0;
};

size_t DepthOf(const TransactionSystem& ts, ActionId a) {
  size_t best = 0;
  for (ActionId c : ts.action(a).children) {
    best = std::max(best, DepthOf(ts, c));
  }
  return best + 1;
}

Profile MeasureLast(const TransactionSystem& ts, double micros) {
  Profile p;
  ActionId top = ts.TopLevel().back();
  // Count actions and distinct objects in this transaction's tree.
  std::set<uint64_t> objects;
  size_t actions = 0;
  std::function<void(ActionId)> walk = [&](ActionId a) {
    ++actions;
    objects.insert(ts.action(a).object.value);
    for (ActionId c : ts.action(a).children) walk(c);
  };
  for (ActionId c : ts.action(top).children) walk(c);
  p.actions = double(actions);
  p.depth = double(DepthOf(ts, top) - 1);
  p.objects = double(objects.size());
  p.micros = micros;
  return p;
}

void PrintTable() {
  // Conventional archetype: a bank transfer.
  Database bank_db;
  Bank::RegisterMethods(&bank_db, BankSemantics::kEscrow);
  ObjectId bank =
      Bank::Create(&bank_db, "Bank", BankSemantics::kEscrow, 8, 10000);
  Stopwatch sw;
  (void)bank_db.RunTransaction("xfer", [&](MethodContext& txn) {
    return txn.Call(bank, Bank::Transfer(0, 1, 10));
  });
  Profile conv = MeasureLast(bank_db.ts(), sw.ElapsedNanos() / 1000.0);

  // Object-oriented archetype: an encyclopedia insert (prefilled so the
  // tree has real depth).
  Database enc_db;
  Encyclopedia::RegisterMethods(&enc_db);
  ObjectId enc = Encyclopedia::Create(&enc_db, "Enc", 8, 8);
  for (int i = 0; i < 120; ++i) {
    (void)enc_db.RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(enc, Encyclopedia::Insert(
                               "k" + std::to_string(1000 + i), "data"));
    });
  }
  sw.Restart();
  (void)enc_db.RunTransaction("ins", [&](MethodContext& txn) {
    return txn.Call(enc,
                    Encyclopedia::Insert("k9999", "a complex document"));
  });
  Profile oo = MeasureLast(enc_db.ts(), sw.ElapsedNanos() / 1000.0);

  std::printf("Fig 1: conventional transactions vs object-oriented "
              "operations (measured)\n\n");
  std::printf("%-28s %14s %14s\n", "", "conventional", "object-oriented");
  std::printf("%-28s %14s %14s\n", "example", "bank transfer",
              "Enc.insert");
  std::printf("%-28s %14.0f %14.0f\n", "objects accessed", conv.objects,
              oo.objects);
  std::printf("%-28s %14.0f %14.0f\n", "actions executed", conv.actions,
              oo.actions);
  std::printf("%-28s %14.0f %14.0f\n", "call depth", conv.depth, oo.depth);
  std::printf("%-28s %13.1fu %13.1fu\n", "duration (us)", conv.micros,
              oo.micros);
  std::printf("\nShape check: the object-oriented operation touches more "
              "objects,\nexecutes more (nested) actions, and runs longer "
              "- Fig 1's columns.\n\n");
}

void BM_BankTransfer(benchmark::State& state) {
  Database db;
  Bank::RegisterMethods(&db, BankSemantics::kEscrow);
  ObjectId bank = Bank::Create(&db, "Bank", BankSemantics::kEscrow, 8,
                               1000000000);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.RunTransaction("xfer", [&](MethodContext& txn) {
          return txn.Call(bank, Bank::Transfer(i % 8, (i + 1) % 8, 1));
        }));
    ++i;
  }
}
BENCHMARK(BM_BankTransfer);

void BM_EncyclopediaInsert(benchmark::State& state) {
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 64, 64);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(
              enc, Encyclopedia::Insert("k" + std::to_string(i), "data"));
        }));
    ++i;
  }
}
BENCHMARK(BM_EncyclopediaInsert);

void BM_DocumentEdit(benchmark::State& state) {
  Database db;
  Document::RegisterMethods(&db);
  ObjectId doc = Document::Create(&db, "Doc", 8);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.RunTransaction("edit", [&](MethodContext& txn) {
          return txn.Call(doc, Document::EditSection(i % 8, "text"));
        }));
    ++i;
  }
}
BENCHMARK(BM_DocumentEdit);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
