// S5 (ablation): what does *early lock release* buy? Open and closed
// nested transactions use identical semantic lock modes; they differ
// only in when inherited locks release (at each action's completion vs
// at top-level commit). The paper's claim rests on open nesting:
// "Subtransactions of open nested transactions are isolated against
// other subtransactions" — and nothing more.
//
// Workload: inserts of distinct keys that all land on a small number of
// shared leaf pages, each transaction holding its locks briefly after
// the insert. Keys always commute, so every wait is pure page-lock
// retention.

#include <cstdio>
#include <thread>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

HarnessResult RunCell(SchedulerKind kind, size_t threads) {
  DatabaseOptions opts;
  opts.scheduler = kind;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(2000);
  Database db(opts);
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  // Large leaves: many distinct keys share one page, like the paper's
  // "rough up to 500" keys per node.
  ObjectId tree = BpTree::Create(&db, "T", /*leaf_capacity=*/512,
                                 /*fanout=*/64);

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = 50;
  return Harness::Run(
      &db, config, [tree](size_t thread, size_t index) -> TransactionBody {
        return [tree, thread, index](MethodContext& txn) {
          std::string key = "k" + std::to_string(thread) + "_" +
                            std::to_string(index);
          OODB_RETURN_IF_ERROR(
              txn.Call(tree, BpTree::Insert(key, "v")));
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return Status::OK();
        };
      });
}

}  // namespace

int main() {
  std::printf("S5: open vs closed nesting - distinct-key inserts onto "
              "shared leaf pages,\n50 txns per thread, locks held ~200us "
              "after each insert\n\n");
  std::printf("%-15s %8s %s\n", "discipline", "threads", "result");
  for (SchedulerKind kind :
       {SchedulerKind::kOpenNested, SchedulerKind::kClosedNested}) {
    for (size_t threads : {1, 2, 4, 8}) {
      HarnessResult r = RunCell(kind, threads);
      std::printf("%-15s %8zu %s\n", SchedulerKindName(kind), threads,
                  r.Row().c_str());
    }
  }
  std::printf(
      "\nShape check: all keys commute semantically, so open nesting\n"
      "scales with threads and records ~0 waits; closed nesting retains\n"
      "every page write lock until commit and serializes on the shared\n"
      "pages - its throughput stays near the 1-thread line. The gap IS\n"
      "the value of open nesting (and of this paper over closed-nested\n"
      "models).\n");
  return 0;
}
