// S6 (ablation): cost of the dependency analysis itself. The paper
// notes that "relatively high costs ... of concurrency control will be
// acceptable"; this bench measures how the offline analysis scales with
// history size — transactions, operations, and contention — and how
// many fixpoint rounds the Def 10/11/15 propagation needs.
//
// Since the analysis-pipeline rework the table carries a threads axis:
// t1 is the serial reference path (ValidationOptions::num_threads = 1,
// the pre-rework algorithm, unchanged), t2/t4/t8 select the indexed
// engine — memoized conflict pairs + worklist fixpoint — fanned out
// over a pool. A second table isolates the engine to separate the
// memoization win (indexed at 1 thread) from actual parallelism.
// Every timed run is checked to report *identically* to the reference.
//
// Alongside the human-readable tables the bench writes BENCH_s6.json
// (into the working directory) so the numbers can be tracked across
// revisions by machines.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "schedule/validator.h"
#include "util/random.h"
#include "workload/harness.h"
#include "workload/random_history.h"

using namespace oodb;

namespace {

RandomHistory MakeHistory(size_t txns, size_t ops) {
  RandomHistoryConfig config;
  config.num_txns = txns;
  config.ops_per_txn = ops;
  config.num_leaves = 2;
  config.keys_per_leaf = 8;
  config.seed = 42;
  return GenerateRandomHistory(config);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool SameReport(const ValidationReport& a, const ValidationReport& b) {
  return a.oo_serializable == b.oo_serializable &&
         a.conventionally_serializable == b.conventionally_serializable &&
         a.conform == b.conform &&
         a.stats.primitive_conflicts == b.stats.primitive_conflicts &&
         a.stats.inherited_txn_deps == b.stats.inherited_txn_deps &&
         a.stats.stopped_inheritance == b.stats.stopped_inheritance &&
         a.stats.added_deps == b.stats.added_deps &&
         a.stats.fixpoint_rounds == b.stats.fixpoint_rounds &&
         a.stats.unordered_conflicts == b.stats.unordered_conflicts &&
         a.conventional.conflicting_pairs ==
             b.conventional.conflicting_pairs;
}

struct ValidateRow {
  size_t txns, ops, actions, prim_conflicts, rounds;
  double ms[4];  // threads 1 (reference), 2, 4, 8
};

struct EngineRow {
  size_t txns, ops;
  double reference_ms;  // serial reference engine
  double memoized_ms;   // indexed engine, 1 thread: memo + worklist only
  double threaded_ms;   // indexed engine, 4 threads
};

const size_t kThreadAxis[4] = {1, 2, 4, 8};

void PrintScalingTable(std::vector<ValidateRow>* rows) {
  std::printf("S6: dependency-analysis scaling (random histories, "
              "8 keys/leaf, 2 leaves)\n");
  std::printf("t1 = serial reference path; t2/t4/t8 = indexed engine "
              "(memoized + worklist)\n\n");
  std::printf("%6s %6s %10s %12s %8s %10s %10s %10s %10s %9s\n", "txns",
              "ops", "actions", "prim-confl", "rounds", "t1-ms", "t2-ms",
              "t4-ms", "t8-ms", "speedup");
  for (size_t txns : {4, 16, 64, 256}) {
    for (size_t ops : {2, 8}) {
      ValidateRow row{};
      row.txns = txns;
      row.ops = ops;
      ValidationReport reference;
      for (int t = 0; t < 4; ++t) {
        // Validate mutates the system (Def 5 extension), so every
        // timed run gets a fresh same-seed history; generation is not
        // timed.
        RandomHistory h = MakeHistory(txns, ops);
        ValidationOptions options;
        options.num_threads = kThreadAxis[t];
        auto start = std::chrono::steady_clock::now();
        ValidationReport report = Validator::Validate(h.ts.get(), options);
        row.ms[t] = MsSince(start);
        if (t == 0) {
          reference = report;
          row.actions = size_t(h.ts->action_count());
          row.prim_conflicts = report.stats.primitive_conflicts;
          row.rounds = report.stats.fixpoint_rounds;
        } else if (!SameReport(reference, report)) {
          std::printf("FATAL: report mismatch at txns=%zu ops=%zu "
                      "threads=%zu\n",
                      txns, ops, kThreadAxis[t]);
          std::exit(1);
        }
      }
      std::printf("%6zu %6zu %10zu %12zu %8zu %10.2f %10.2f %10.2f "
                  "%10.2f %8.1fx\n",
                  row.txns, row.ops, row.actions, row.prim_conflicts,
                  row.rounds, row.ms[0], row.ms[1], row.ms[2], row.ms[3],
                  row.ms[0] / row.ms[3]);
      rows->push_back(row);
    }
  }
  std::printf(
      "\nShape check: reference cost is dominated by the quadratic\n"
      "number of same-object conflict pairs (prim-confl column) and by\n"
      "full-rescan fixpoint passes; the indexed engine collapses the\n"
      "spec calls into a per-class matrix and reexamines only the delta\n"
      "per wave, so its advantage grows with history size. Fixpoint\n"
      "rounds are identical by construction - waves mirror rescan\n"
      "passes.\n\n");
}

void PrintEngineTable(std::vector<EngineRow>* rows) {
  std::printf("S6b: engine only (no extension/conventional/checks) - "
              "isolating the memoization win from parallelism\n\n");
  std::printf("%6s %6s %14s %13s %13s %9s\n", "txns", "ops", "reference-ms",
              "memoized-ms", "4threads-ms", "memo-win");
  for (size_t txns : {16, 64, 256}) {
    EngineRow row{};
    row.txns = txns;
    row.ops = 8;
    RandomHistory h = MakeHistory(txns, row.ops);
    SystemExtender::Extend(h.ts.get());
    {
      auto start = std::chrono::steady_clock::now();
      DependencyEngine engine(*h.ts);
      if (!engine.Compute().ok()) std::exit(1);
      row.reference_ms = MsSince(start);
    }
    for (int pass = 0; pass < 2; ++pass) {
      DependencyOptions options;
      options.mode = DependencyOptions::Mode::kIndexed;
      options.num_threads = pass == 0 ? 1 : 4;
      auto start = std::chrono::steady_clock::now();
      DependencyEngine engine(*h.ts, options);
      if (!engine.Compute().ok()) std::exit(1);
      (pass == 0 ? row.memoized_ms : row.threaded_ms) = MsSince(start);
    }
    std::printf("%6zu %6zu %14.2f %13.2f %13.2f %8.1fx\n", row.txns,
                row.ops, row.reference_ms, row.memoized_ms,
                row.threaded_ms, row.reference_ms / row.memoized_ms);
    rows->push_back(row);
  }
  std::printf("\n");
}

void WriteJson(const std::vector<ValidateRow>& validate,
               const std::vector<EngineRow>& engine) {
  FILE* f = std::fopen("BENCH_s6.json", "w");
  if (f == nullptr) {
    std::printf("note: could not open BENCH_s6.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"s6_validator_scaling\",\n");
  std::fprintf(f, "  \"thread_axis\": [1, 2, 4, 8],\n");
  std::fprintf(f, "  \"validate\": [\n");
  for (size_t i = 0; i < validate.size(); ++i) {
    const ValidateRow& r = validate[i];
    std::fprintf(f,
                 "    {\"txns\": %zu, \"ops\": %zu, \"actions\": %zu, "
                 "\"prim_conflicts\": %zu, \"fixpoint_rounds\": %zu, "
                 "\"ms\": [%.3f, %.3f, %.3f, %.3f]}%s\n",
                 r.txns, r.ops, r.actions, r.prim_conflicts, r.rounds,
                 r.ms[0], r.ms[1], r.ms[2], r.ms[3],
                 i + 1 < validate.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"engine_only\": [\n");
  for (size_t i = 0; i < engine.size(); ++i) {
    const EngineRow& r = engine[i];
    std::fprintf(f,
                 "    {\"txns\": %zu, \"ops\": %zu, "
                 "\"reference_ms\": %.3f, \"memoized_serial_ms\": %.3f, "
                 "\"indexed_4threads_ms\": %.3f}%s\n",
                 r.txns, r.ops, r.reference_ms, r.memoized_ms,
                 r.threaded_ms, i + 1 < engine.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_s6.json\n\n");
}

// --metrics-json: one registry snapshot covering both halves of the
// pipeline. A small contended encyclopedia run feeds the runtime side
// (lock acquire/wait counters, db.lock.wait_ns histogram), then its own
// history goes through the indexed validator publishing engine metrics
// (dep.memo.hits/misses, dep.stage.*_ns, dep.worklist.*) into the same
// registry. The registry is the caller's (main owns one for the whole
// bench) so a sampler attached to it sees one monotone stream instead
// of counters resetting at the phase boundary.
void WriteMetricsJson(const std::string& path, MetricsRegistry& registry) {
  DatabaseOptions opts;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(300);
  Database db(opts);
  db.AttachObservability(&registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/32,
                                      /*fanout=*/32, /*items_per_page=*/8);
  HarnessConfig config;
  config.threads = 4;
  config.txns_per_thread = 50;
  config.metrics = &registry;
  (void)Harness::Run(
      &db, config, [enc](size_t thread, size_t index) -> TransactionBody {
        return [enc, thread, index](MethodContext& txn) {
          thread_local Rng rng(thread * 7919 + 3);
          std::string key = "K" + std::to_string(rng.NextBelow(32));
          Status st;
          if (index % 2 == 0) {
            st = txn.Call(enc, Encyclopedia::Insert(key, "v"));
            if (st.code() == StatusCode::kAlreadyExists) st = Status::OK();
          } else {
            Value out;
            st = txn.Call(enc, Encyclopedia::Search(key), &out);
          }
          OODB_RETURN_IF_ERROR(st);
          // Hold the locks briefly so concurrent same-key transactions
          // actually wait and the db.lock.wait_ns histogram fills.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return Status::OK();
        };
      });
  ValidationOptions options;
  options.metrics = &registry;
  options.num_threads = 4;  // indexed engine: memo + worklist counters
  (void)Validator::Validate(&db.ts(), options);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("note: could not open %s for writing\n", path.c_str());
    return;
  }
  std::fputs(registry.JsonSnapshot().c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_ValidateScaling(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 4;
  config.num_leaves = 4;
  config.keys_per_leaf = 16;
  config.seed = 7;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    // Validate without mutating the original: dependency engine only.
    DependencyEngine engine(*h.ts);
    benchmark::DoNotOptimize(engine.Compute());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(h.ts->action_count()));
}
BENCHMARK(BM_ValidateScaling)->Arg(4)->Arg(16)->Arg(64);

void BM_ValidateScalingIndexed(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 4;
  config.num_leaves = 4;
  config.keys_per_leaf = 16;
  config.seed = 7;
  RandomHistory h = GenerateRandomHistory(config);
  DependencyOptions options;
  options.mode = DependencyOptions::Mode::kIndexed;
  options.num_threads = size_t(state.range(1));
  for (auto _ : state) {
    DependencyEngine engine(*h.ts, options);
    benchmark::DoNotOptimize(engine.Compute());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(h.ts->action_count()));
}
BENCHMARK(BM_ValidateScalingIndexed)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8});

void BM_ExtensionOnCleanSystem(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = 32;
  config.ops_per_txn = 4;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    // No cycles to break: measures the scan cost alone.
    benchmark::DoNotOptimize(SystemExtender::NeedsExtension(*h.ts));
  }
}
BENCHMARK(BM_ExtensionOnCleanSystem);

}  // namespace

int main(int argc, char** argv) {
  // benchmark::Initialize rejects flags it does not know, so strip the
  // custom one before handing argv over.
  std::string metrics_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  // The bench-wide registry: every phase that publishes metrics shares
  // it, keeping counter streams monotone for any attached sampler.
  MetricsRegistry registry;
  std::vector<ValidateRow> validate_rows;
  std::vector<EngineRow> engine_rows;
  PrintScalingTable(&validate_rows);
  PrintEngineTable(&engine_rows);
  WriteJson(validate_rows, engine_rows);
  if (!metrics_path.empty()) WriteMetricsJson(metrics_path, registry);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
