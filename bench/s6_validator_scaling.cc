// S6 (ablation): cost of the dependency analysis itself. The paper
// notes that "relatively high costs ... of concurrency control will be
// acceptable"; this bench measures how the offline analysis scales with
// history size — transactions, operations, and contention — and how
// many fixpoint rounds the Def 10/11/15 propagation needs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "schedule/validator.h"
#include "workload/random_history.h"

using namespace oodb;

namespace {

void PrintScalingTable() {
  std::printf("S6: dependency-analysis scaling (random histories, "
              "8 keys/leaf, 2 leaves)\n\n");
  std::printf("%6s %6s %10s %12s %10s %10s\n", "txns", "ops", "actions",
              "prim-confl", "rounds", "ms");
  for (size_t txns : {4, 16, 64}) {
    for (size_t ops : {2, 8}) {
      RandomHistoryConfig config;
      config.num_txns = txns;
      config.ops_per_txn = ops;
      config.num_leaves = 2;
      config.keys_per_leaf = 8;
      config.seed = 42;
      RandomHistory h = GenerateRandomHistory(config);
      auto start = std::chrono::steady_clock::now();
      ValidationReport report = Validator::Validate(h.ts.get());
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      std::printf("%6zu %6zu %10zu %12zu %10zu %10.2f\n", txns, ops,
                  size_t(h.ts->action_count()),
                  report.stats.primitive_conflicts,
                  report.stats.fixpoint_rounds, ms);
    }
  }
  std::printf(
      "\nShape check: cost is dominated by the quadratic number of\n"
      "same-object conflict pairs (prim-confl column); fixpoint rounds\n"
      "stay small and constant - propagation settles in a few passes\n"
      "because inheritance chains are as short as the call trees.\n\n");
}

void BM_ValidateScaling(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 4;
  config.num_leaves = 4;
  config.keys_per_leaf = 16;
  config.seed = 7;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    // Validate without mutating the original: dependency engine only.
    DependencyEngine engine(*h.ts);
    benchmark::DoNotOptimize(engine.Compute());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(h.ts->action_count()));
}
BENCHMARK(BM_ValidateScaling)->Arg(4)->Arg(16)->Arg(64);

void BM_ExtensionOnCleanSystem(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = 32;
  config.ops_per_txn = 4;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    // No cycles to break: measures the scan cost alone.
    benchmark::DoNotOptimize(SystemExtender::NeedsExtension(*h.ts));
  }
}
BENCHMARK(BM_ExtensionOnCleanSystem);

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
