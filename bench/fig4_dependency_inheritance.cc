// Fig 4 / Example 1: dependency inheritance along the call trees.
//
// Part 1 replays the exact scenario: two inserts of different keys
// (DBS, DBMS) sharing a leaf page — the dependency is inherited to the
// leaf and *stops* there — and an insert/search pair on the same key —
// the dependency is inherited all the way to the top-level transactions.
//
// Part 2 is the quantitative version of the paper's argument "every node
// and therefore the corresponding page contains many keys (rough up to
// 500). Operations on these keys will often conflict at the page level
// but commute at the node level": a sweep over keys-per-page, measuring
// on random histories how many page-level dependencies stop at commuting
// callers vs. propagate to the top.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "schedule/dependency_engine.h"
#include "schedule/validator.h"
#include "workload/random_history.h"

using namespace oodb;

namespace {

void BuildPath(TransactionSystem* ts, ObjectId tree, ObjectId leaf,
               ObjectId page, const std::string& txn,
               const std::string& method, const std::string& key) {
  ActionId top = ts->BeginTopLevel(txn);
  Invocation inv(method, {Value(key)});
  ActionId tree_op = ts->Call(top, tree, inv);
  ActionId leaf_op = ts->Call(tree_op, leaf, inv);
  if (method == "insert") {
    ActionId r = ts->Call(leaf_op, page, Invocation("read"));
    ActionId w = ts->Call(leaf_op, page, Invocation("write"));
    ts->SetTimestamp(r, ts->NextTimestamp());
    ts->SetTimestamp(w, ts->NextTimestamp());
  } else {
    ActionId r = ts->Call(leaf_op, page, Invocation("read"));
    ts->SetTimestamp(r, ts->NextTimestamp());
  }
}

void PrintExampleOne() {
  std::printf("Fig 4 part 1: the two situations of Example 1 "
              "(scripted exactly)\n\n");
  struct Case {
    const char* label;
    const char* method2;
    const char* key2;
  };
  for (const Case& c :
       {Case{"T1 insert(DBS) vs T2 insert(DBMS):", "insert", "DBMS"},
        Case{"T3 insert(DBS) vs T4 search(DBS): ", "search", "DBS"}}) {
    TransactionSystem ts;
    ObjectId tree = ts.AddObject(BpTreeObjectType(), "BpTree");
    ObjectId leaf = ts.AddObject(LeafObjectType(), "Leaf11");
    ObjectId page = ts.AddObject(PageObjectType(), "Page4712");
    BuildPath(&ts, tree, leaf, page, "Ta", "insert", "DBS");
    BuildPath(&ts, tree, leaf, page, "Tb", c.method2, c.key2);
    DependencyEngine engine(ts);
    if (!engine.Compute().ok()) return;
    bool top = engine.TopLevelOrder().EdgeCount() > 0;
    std::printf(
        "  %-36s page-conflicts=%zu inherited=%zu stopped=%zu "
        "top-level-dep=%s\n",
        c.label, engine.stats().primitive_conflicts,
        engine.stats().inherited_txn_deps,
        engine.stats().stopped_inheritance, top ? "yes" : "no");
  }
  std::printf(
      "\n  Shape check: the page dependency between the two inserts is\n"
      "  inherited to Leaf11 and STOPS (commuting keys, no top-level\n"
      "  dependency); insert/search on the same key propagates to the\n"
      "  top-level transactions.\n\n");
}

struct SweepRow {
  size_t keys_per_page;
  double page_conflict_pairs;   // avg page-level ordered conflicts
  double stopped;               // avg stopped at commuting callers
  double top_deps;              // avg top-level dependencies
  double oo_accept;             // acceptance rates
  double conv_accept;
};

SweepRow RunSweepPoint(size_t keys_per_page, size_t trials) {
  SweepRow row{keys_per_page, 0, 0, 0, 0, 0};
  for (size_t trial = 0; trial < trials; ++trial) {
    RandomHistoryConfig config;
    config.num_txns = 4;
    config.ops_per_txn = 3;
    config.num_leaves = 1;  // one leaf = one shared page, as in Fig 4
    config.keys_per_leaf = keys_per_page;
    config.search_fraction = 0.3;
    config.seed = 1000 + trial;
    RandomHistory h = GenerateRandomHistory(config);
    ValidationReport report = Validator::Validate(h.ts.get());
    row.page_conflict_pairs += double(report.stats.primitive_conflicts);
    row.stopped += double(report.stats.stopped_inheritance);
    DependencyEngine engine(*h.ts);
    (void)engine.Compute();
    row.top_deps += double(engine.TopLevelOrder().EdgeCount());
    row.oo_accept += report.oo_serializable ? 1 : 0;
    row.conv_accept += report.conventionally_serializable ? 1 : 0;
  }
  double n = double(trials);
  row.page_conflict_pairs /= n;
  row.stopped /= n;
  row.top_deps /= n;
  row.oo_accept /= n;
  row.conv_accept /= n;
  return row;
}

void PrintSweep() {
  constexpr size_t kTrials = 100;
  std::printf("Fig 4 part 2: keys-per-page sweep (4 txns x 3 ops on one "
              "shared page, %zu random interleavings each)\n\n", kTrials);
  std::printf("%10s %14s %10s %10s %10s %10s\n", "keys/page",
              "page-conflicts", "stopped", "top-deps", "oo-accept",
              "conv-accept");
  for (size_t k : {1, 2, 5, 10, 50, 100, 500}) {
    SweepRow row = RunSweepPoint(k, kTrials);
    std::printf("%10zu %14.1f %10.1f %10.1f %9.0f%% %9.0f%%\n",
                row.keys_per_page, row.page_conflict_pairs, row.stopped,
                row.top_deps, row.oo_accept * 100, row.conv_accept * 100);
  }
  std::printf(
      "\nShape check: page-level conflicts stay roughly constant, but as\n"
      "keys/page grows the share that STOPS at commuting leaf operations\n"
      "rises and top-level dependencies fall - so the oo acceptance rate\n"
      "climbs toward 100%% while the conventional rate stays low. That\n"
      "gap is the paper's claimed concurrency gain.\n\n");
}

void BM_DependencyEngine(benchmark::State& state) {
  RandomHistoryConfig config;
  config.num_txns = size_t(state.range(0));
  config.ops_per_txn = 4;
  config.keys_per_leaf = 50;
  RandomHistory h = GenerateRandomHistory(config);
  for (auto _ : state) {
    DependencyEngine engine(*h.ts);
    benchmark::DoNotOptimize(engine.Compute());
  }
}
BENCHMARK(BM_DependencyEngine)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  PrintExampleOne();
  PrintSweep();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
