// S4 (ablation): how much does commutativity precision buy? The same
// bank-transfer workload runs over three account-type variants that
// differ only in their declared commutativity:
//
//   escrow      parameter/state-aware ([9,14,17]): everything commutes,
//   name-only   method names only: deposit/deposit commutes,
//   read-write  classical R/W: all mutators conflict.
//
// Correctness (the audited total) is identical; waits, deadlocks, and
// throughput are not — semantics is the paper's lever for concurrency.

#include <cstdio>
#include <memory>
#include <thread>

#include "apps/bank.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

void RunVariant(BankSemantics semantics, const char* label,
                size_t threads) {
  DatabaseOptions opts;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(300);
  Database db(opts);
  Bank::RegisterMethods(&db, semantics);
  ObjectId bank = Bank::Create(&db, "Bank", semantics, /*accounts=*/4,
                               /*initial_balance=*/100000);

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = 100;
  HarnessResult result = Harness::Run(
      &db, config, [bank](size_t thread, size_t index) -> TransactionBody {
        return [bank, thread, index](MethodContext& txn) {
          thread_local Rng rng(thread * 7 + 3);
          (void)index;
          int from = int(rng.NextBelow(4));
          int to = int((from + 1 + rng.NextBelow(3)) % 4);
          OODB_RETURN_IF_ERROR(
              txn.Call(bank, Bank::Transfer(from, to, 1)));
          // Hold the transfer's semantic locks briefly (an external
          // confirmation round-trip); this is where coarse semantics
          // make everyone else wait.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return Status::OK();
        };
      });

  Value total;
  (void)db.RunTransaction("audit", [&](MethodContext& txn) {
    return txn.Call(bank, Bank::Audit(), &total);
  });
  std::printf("%-11s %8zu %s total=%lld\n", label, threads,
              result.Row().c_str(), (long long)total.AsInt());
}

}  // namespace

int main() {
  std::printf("S4: commutativity granularity ablation - bank transfers "
              "between 4 hot accounts,\n100 txns per thread (each holding its locks ~100us). The audited "
              "total must always equal 400000.\n\n");
  std::printf("%-11s %8s\n", "variant", "threads");
  for (size_t threads : {1, 4, 8}) {
    RunVariant(BankSemantics::kEscrow, "escrow", threads);
    RunVariant(BankSemantics::kNameOnly, "name-only", threads);
    RunVariant(BankSemantics::kReadWrite, "read-write", threads);
    std::printf("\n");
  }
  std::printf(
      "Shape check: identical totals; waits and deadlocks grow as the\n"
      "declared semantics coarsens (escrow ~0 waits; name-only waits on\n"
      "withdraw pairs; read-write waits on every pair), and throughput\n"
      "orders escrow > name-only > read-write at >1 thread.\n");
  return 0;
}
