// Shared object types for the figure benches (the same commutativity
// specifications the tests use, without linking the container method
// implementations).

#pragma once

#include <memory>
#include <set>

#include "model/object_type.h"

namespace oodb {
namespace bench_world {

inline const ObjectType* PageType() {
  static const ObjectType* type = [] {
    return new ObjectType("Page",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"read"}),
                          /*primitive=*/true);
  }();
  return type;
}

inline const ObjectType* LeafType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "search", diff);
    spec->SetPredicate("op", "op", diff);
    spec->SetCommutes("search", "search");
    return new ObjectType("Leaf", std::move(spec));
  }();
  return type;
}

}  // namespace bench_world
}  // namespace oodb
