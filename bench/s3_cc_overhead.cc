// S3 (ablation): the cost of semantic concurrency control. Section 1:
// "relatively high costs — compared to conventional transaction systems
// — of concurrency control will be acceptable." This bench quantifies
// those costs on a single thread, where no scheduler ever waits: any
// difference is pure bookkeeping (lock tables, commutativity checks,
// action recording).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "apps/encyclopedia.h"
#include "containers/directory.h"
#include "model/extension.h"
#include "schedule/validator.h"

using namespace oodb;

namespace {

std::unique_ptr<Database> MakeEncDb(SchedulerKind kind, ObjectId* enc) {
  DatabaseOptions opts;
  opts.scheduler = kind;
  auto db = std::make_unique<Database>(opts);
  Encyclopedia::RegisterMethods(db.get());
  *enc = Encyclopedia::Create(db.get(), "Enc", 64, 64, 16);
  for (int i = 0; i < 128; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    (void)db->RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(*enc, Encyclopedia::Insert(key, "seed"));
    });
  }
  return db;
}

void BM_EncChange(benchmark::State& state) {
  SchedulerKind kind = static_cast<SchedulerKind>(state.range(0));
  ObjectId enc;
  std::unique_ptr<Database> db = MakeEncDb(kind, &enc);
  int i = 0;
  for (auto _ : state) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i++ % 128);
    benchmark::DoNotOptimize(
        db->RunTransaction("chg", [&](MethodContext& txn) {
          return txn.Call(enc, Encyclopedia::Change(key, "rev"));
        }));
  }
  state.SetLabel(SchedulerKindName(kind));
}
BENCHMARK(BM_EncChange)
    ->Arg(int(SchedulerKind::kNone))
    ->Arg(int(SchedulerKind::kFlat2PL))
    ->Arg(int(SchedulerKind::kOpenNested))
    ->Arg(int(SchedulerKind::kObjectExclusive));

void BM_EncSearch(benchmark::State& state) {
  SchedulerKind kind = static_cast<SchedulerKind>(state.range(0));
  ObjectId enc;
  std::unique_ptr<Database> db = MakeEncDb(kind, &enc);
  int i = 0;
  for (auto _ : state) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i++ % 128);
    Value out;
    benchmark::DoNotOptimize(
        db->RunTransaction("get", [&](MethodContext& txn) {
          return txn.Call(enc, Encyclopedia::Search(key), &out);
        }));
  }
  state.SetLabel(SchedulerKindName(kind));
}
BENCHMARK(BM_EncSearch)
    ->Arg(int(SchedulerKind::kNone))
    ->Arg(int(SchedulerKind::kFlat2PL))
    ->Arg(int(SchedulerKind::kOpenNested));

// Micro: one primitive operation end to end (the smallest transaction).
void BM_DirectoryInsert(benchmark::State& state) {
  SchedulerKind kind = static_cast<SchedulerKind>(state.range(0));
  DatabaseOptions opts;
  opts.scheduler = kind;
  Database db(opts);
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(dir, Invocation("insert",
                                          {Value("k" + std::to_string(
                                                     i++ % 1024)),
                                           Value("v")}));
        }));
  }
  state.SetLabel(SchedulerKindName(kind));
}
BENCHMARK(BM_DirectoryInsert)
    ->Arg(int(SchedulerKind::kNone))
    ->Arg(int(SchedulerKind::kOpenNested));

// S3b: the *offline* share of the CC cost — validating the history the
// scheduler actually recorded. Reference engine (num_threads = 1)
// against the memoized, worklist-driven engine (num_threads > 1) on the
// same recorded system; the delta is the analysis overhead a deployment
// pays per audit, not per transaction.
void BM_ValidateRecordedHistory(benchmark::State& state) {
  ObjectId enc;
  std::unique_ptr<Database> db =
      MakeEncDb(SchedulerKind::kOpenNested, &enc);
  for (int i = 0; i < 256; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i % 128);
    (void)db->RunTransaction("chg", [&](MethodContext& txn) {
      return txn.Call(enc, Encyclopedia::Change(key, "rev"));
    });
  }
  // Extend once up front; validation is then read-only and repeatable.
  SystemExtender::Extend(&db->ts());
  ValidationOptions options;
  options.apply_extension = false;
  options.num_threads = size_t(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Validator::Validate(&db->ts(), options));
  }
  state.SetLabel(options.num_threads == 1 ? "reference engine"
                                          : "indexed engine x4");
}
BENCHMARK(BM_ValidateRecordedHistory)->Arg(1)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  std::printf("S3: single-threaded cost of concurrency control "
              "(overhead = semantic CC vs scheduler 'none').\n"
              "Expected shape: none < flat-2pl < open-nested <= "
              "object-exclusive, all within a small constant factor -\n"
              "the 'relatively high but acceptable costs' of section 1.\n\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
