// Fig 5 / Example 2: the tree of an oo-transaction — root t1, inner
// actions a11/a12, leaves a111/a112/a113/a121/a122, with precedence
// given by the left-to-right order of arcs. This bench rebuilds the
// exact tree, prints it, checks the Def 7 precedence queries, and then
// benchmarks tree construction and precedence checking at scale.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "schedule/printer.h"
#include "util/random.h"
#include "paper_world.h"

using namespace oodb;

namespace {

void PrintFig5() {
  TransactionSystem ts;
  ObjectId o1 = ts.AddObject(bench_world::LeafType(), "O1");
  ObjectId o2 = ts.AddObject(bench_world::LeafType(), "O2");
  ObjectId p = ts.AddObject(bench_world::PageType(), "P");

  ActionId t1 = ts.BeginTopLevel("t1");
  ActionId a11 = ts.Call(t1, o1, Invocation("insert", {Value("a")}));
  ActionId a12 = ts.Call(t1, o2, Invocation("insert", {Value("b")}));
  ActionId a111 = ts.Call(a11, p, Invocation("read"));
  ActionId a112 = ts.Call(a11, p, Invocation("write"));
  ActionId a113 = ts.Call(a11, p, Invocation("write"));
  ActionId a121 = ts.Call(a12, p, Invocation("read"));
  ActionId a122 = ts.Call(a12, p, Invocation("write"));
  (void)a113;
  (void)a121;

  std::printf("Fig 5: the tree of an oo-transaction\n\n%s\n",
              SchedulePrinter::TransactionTree(ts, t1).c_str());
  std::printf("precedence checks (Def 7, left-to-right arc order):\n");
  std::printf("  a11 < a12              : %s\n",
              ts.MustPrecede(a11, a12) ? "yes" : "no");
  std::printf("  a111 < a112 (siblings) : %s\n",
              ts.MustPrecede(a111, a112) ? "yes" : "no");
  std::printf("  a112 < a121 (inherited): %s\n",
              ts.MustPrecede(a112, a121) ? "yes" : "no");
  std::printf("  a122 < a111 (reversed) : %s\n",
              ts.MustPrecede(a122, a111) ? "yes" : "no");
  std::printf("\nShape check: precedence follows the arcs and is "
              "inherited downward\n(a112 before a121 because a11 "
              "precedes a12), never backward.\n\n");
}

/// Builds a random transaction tree with the given size.
void BuildRandomTree(TransactionSystem* ts, ObjectId obj, size_t actions,
                     Rng* rng) {
  ActionId top = ts->BeginTopLevel("T");
  std::vector<ActionId> nodes{top};
  for (size_t i = 1; i < actions; ++i) {
    ActionId parent = nodes[rng->NextBelow(nodes.size())];
    nodes.push_back(ts->Call(parent, obj,
                             Invocation("op", {Value(int64_t(i))}), true));
  }
}

void BM_TreeConstruction(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  for (auto _ : state) {
    TransactionSystem ts;
    ObjectId obj = ts.AddObject(bench_world::LeafType(), "O");
    Rng rng(7);
    BuildRandomTree(&ts, obj, n, &rng);
    benchmark::DoNotOptimize(ts.action_count());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_TreeConstruction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MustPrecede(benchmark::State& state) {
  TransactionSystem ts;
  ObjectId obj = ts.AddObject(bench_world::LeafType(), "O");
  Rng rng(7);
  BuildRandomTree(&ts, obj, 1000, &rng);
  Rng pick(11);
  for (auto _ : state) {
    ActionId a(pick.NextBelow(ts.action_count()));
    ActionId b(pick.NextBelow(ts.action_count()));
    benchmark::DoNotOptimize(ts.MustPrecede(a, b));
  }
}
BENCHMARK(BM_MustPrecede);

}  // namespace

int main(int argc, char** argv) {
  PrintFig5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
