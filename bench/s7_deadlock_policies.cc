// S7 (ablation): deadlock handling. The paper leaves the protocol to
// the locking literature; this bench compares the two classical options
// on a deadlock-prone workload: detection on the waits-for graph
// (victim = the requester closing the cycle) vs wait-die avoidance.
//
// Workload: transactions lock two keyed directories in randomized order
// with a hold window — the textbook recipe for cycles.

#include <cstdio>
#include <thread>

#include "containers/directory.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

void RunCell(DeadlockPolicy policy, size_t threads) {
  DatabaseOptions opts;
  opts.lock_options.deadlock_policy = policy;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(500);
  // Wait-die restarts get fresh (younger) ids here, so victims can lose
  // repeatedly under heavy contention; give them room.
  opts.max_retries = 64;
  Database db(opts);
  RegisterDirectoryMethods(&db);
  ObjectId d1 = CreateDirectory(&db, "D1");
  ObjectId d2 = CreateDirectory(&db, "D2");

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = 60;
  HarnessResult r = Harness::Run(
      &db, config,
      [d1, d2](size_t thread, size_t index) -> TransactionBody {
        return [d1, d2, thread, index](MethodContext& txn) {
          thread_local Rng rng(thread * 131 + 7);
          bool forward = rng.NextBool(0.5);
          ObjectId first = forward ? d1 : d2;
          ObjectId second = forward ? d2 : d1;
          std::string key = "hot" + std::to_string(rng.NextBelow(2));
          std::string val = std::to_string(thread * 1000 + index);
          OODB_RETURN_IF_ERROR(txn.Call(
              first, Invocation("insert", {Value(key), Value(val)})));
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          return txn.Call(
              second, Invocation("insert", {Value(key), Value(val)}));
        };
      });
  uint64_t retries = db.counters().retries.load();
  std::printf("%-9s %8zu %s retries=%llu\n", DeadlockPolicyName(policy),
              threads, r.Row().c_str(), (unsigned long long)retries);
}

}  // namespace

int main() {
  std::printf("S7: deadlock policies - two directories locked in random "
              "order, 2 hot keys,\n60 txns per thread, 100us between the "
              "two lock points\n\n");
  std::printf("%-9s %8s\n", "policy", "threads");
  for (DeadlockPolicy policy :
       {DeadlockPolicy::kDetect, DeadlockPolicy::kWaitDie}) {
    for (size_t threads : {2, 4, 8}) {
      RunCell(policy, threads);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check: every transaction eventually commits under both\n"
      "policies (deadlock victims retry). Detection aborts only on real\n"
      "cycles; wait-die aborts preemptively whenever an older holder is\n"
      "in the way, so it shows more deadlock aborts/retries but never\n"
      "relies on cycle search or timeouts.\n");
  return 0;
}
