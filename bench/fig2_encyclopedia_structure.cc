// Fig 2: "Objects of an encyclopedia" — Enc, LinkedList, BpTree, nodes,
// leaves, items, and their pages. This bench builds encyclopedias of
// increasing size and prints the object census per type, regenerating
// the figure's structure mechanically, then benchmarks bulk loading.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "apps/encyclopedia.h"

using namespace oodb;

namespace {

std::map<std::string, size_t> Census(const TransactionSystem& ts) {
  std::map<std::string, size_t> counts;
  for (ObjectId o : ts.Objects()) {
    if (ts.object(o).is_virtual) continue;
    ++counts[ts.object(o).type->name()];
  }
  return counts;
}

void PrintStructure() {
  std::printf("Fig 2: objects of an encyclopedia (census after loading "
              "N items; leaf capacity 8, fanout 8, 4 items/page)\n\n");
  std::printf("%6s %5s %11s %7s %6s %6s %6s %7s\n", "N", "Enc",
              "LinkedList", "BpTree", "Node", "Leaf", "Item", "Page");
  for (size_t n : {10, 50, 200, 500}) {
    Database db;
    Encyclopedia::RegisterMethods(&db);
    ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
    for (size_t i = 0; i < n; ++i) {
      char key[24];
      std::snprintf(key, sizeof(key), "k%05zu", i);
      Status st = db.RunTransaction("load", [&](MethodContext& txn) {
        return txn.Call(enc, Encyclopedia::Insert(key, "item data"));
      });
      if (!st.ok()) {
        std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
        return;
      }
    }
    auto census = Census(db.ts());
    std::printf("%6zu %5zu %11zu %7zu %6zu %6zu %6zu %7zu\n", n,
                census["Enc"], census["LinkedList"], census["BpTree"],
                census["Node"], census["Leaf"], census["Item"],
                census["Page"]);
  }
  std::printf("\nShape check: one Enc/LinkedList/BpTree; leaves, nodes, "
              "items and pages grow with N,\nmirroring the Fig 2 object "
              "graph (pages backing leaves, nodes, items, and the list).\n\n");
}

void BM_BulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Database db;
    Encyclopedia::RegisterMethods(&db);
    ObjectId enc = Encyclopedia::Create(&db, "Enc", 32, 32, 8);
    for (size_t i = 0; i < n; ++i) {
      char key[24];
      std::snprintf(key, sizeof(key), "k%05zu", i);
      (void)db.RunTransaction("load", [&](MethodContext& txn) {
        return txn.Call(enc, Encyclopedia::Insert(key, "d"));
      });
    }
    state.counters["objects"] =
        benchmark::Counter(double(db.ts().object_count()));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_BulkLoad)->Arg(50)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  PrintStructure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
