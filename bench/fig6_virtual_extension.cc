// Fig 6 / Example 3 / Def 5: breaking call cycles with virtual objects.
// Rebuilds the figure's situation (an action calling an action on the
// same object, with a bystander action virtually duplicated), prints the
// transformation, and benchmarks the extension on call chains of
// increasing depth and width.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "model/extension.h"
#include "schedule/printer.h"
#include "paper_world.h"

using namespace oodb;

namespace {

void PrintFig6() {
  TransactionSystem ts;
  ObjectId o1 = ts.AddObject(bench_world::LeafType(), "O1");
  ObjectId o2 = ts.AddObject(bench_world::LeafType(), "O2");

  ActionId t1 = ts.BeginTopLevel("t1");
  ActionId a11 = ts.Call(t1, o1, Invocation("insert", {Value("x")}));
  ActionId a112 = ts.Call(a11, o2, Invocation("insert", {Value("x")}));
  ActionId a1121 = ts.Call(a112, o1, Invocation("insert", {Value("y")}));
  (void)a1121;
  ActionId t2 = ts.BeginTopLevel("t2");
  ActionId b22 = ts.Call(t2, o1, Invocation("insert", {Value("z")}));
  (void)b22;

  std::printf("Fig 6: extension of a transaction system (Def 5)\n\n");
  std::printf("before:\n%s%s\n",
              SchedulePrinter::TransactionTree(ts, t1).c_str(),
              SchedulePrinter::TransactionTree(ts, t2).c_str());
  std::printf("objects: %zu, needs extension: %s\n\n", ts.object_count() - 1,
              SystemExtender::NeedsExtension(ts) ? "yes" : "no");

  ExtensionStats stats = SystemExtender::Extend(&ts);
  std::printf("after (a1121 moved to O1', originals duplicated):\n%s%s\n",
              SchedulePrinter::TransactionTree(ts, t1).c_str(),
              SchedulePrinter::TransactionTree(ts, t2).c_str());
  std::printf("objects: %zu, cycles broken: %zu, virtual objects: %zu, "
              "virtual actions: %zu\n",
              ts.object_count() - 1, stats.cycles_broken,
              stats.virtual_objects, stats.virtual_actions);
  std::printf("\nShape check: one virtual object O1' holding the moved "
              "action plus one\nvirtual duplicate per remaining action on "
              "O1 (here: a11 and b22),\neach called by its original - "
              "exactly the Fig 6 construction.\n\n");
}

/// Chain of `depth` calls on one object: every level below the first is
/// a cycle to break.
void BM_ExtendDeepChain(benchmark::State& state) {
  const size_t depth = size_t(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TransactionSystem ts;
    ObjectId obj = ts.AddObject(bench_world::LeafType(), "O");
    ActionId cur = ts.BeginTopLevel("T");
    for (size_t i = 0; i < depth; ++i) {
      cur = ts.Call(cur, obj, Invocation("op", {Value(int64_t(i))}));
    }
    state.ResumeTiming();
    ExtensionStats stats = SystemExtender::Extend(&ts);
    benchmark::DoNotOptimize(stats.cycles_broken);
  }
}
BENCHMARK(BM_ExtendDeepChain)->Arg(2)->Arg(8)->Arg(32);

/// Wide object: many bystanders get duplicated per broken cycle.
void BM_ExtendWideObject(benchmark::State& state) {
  const size_t width = size_t(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TransactionSystem ts;
    ObjectId obj = ts.AddObject(bench_world::LeafType(), "O");
    for (size_t i = 0; i < width; ++i) {
      ActionId t = ts.BeginTopLevel("T" + std::to_string(i));
      ts.Call(t, obj, Invocation("op", {Value(int64_t(i))}));
    }
    ActionId t = ts.BeginTopLevel("Tc");
    ActionId a = ts.Call(t, obj, Invocation("op", {Value(int64_t(999))}));
    ts.Call(a, obj, Invocation("op", {Value(int64_t(998))}));
    state.ResumeTiming();
    ExtensionStats stats = SystemExtender::Extend(&ts);
    benchmark::DoNotOptimize(stats.virtual_actions);
  }
}
BENCHMARK(BM_ExtendWideObject)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  PrintFig6();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
