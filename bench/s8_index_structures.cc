// S8 (generality): the same semantic concurrency control over two
// different index structures — the B+ tree (ordered, B-link splits) and
// the extendible hash index (unordered, directory splits). The paper
// argues the framework covers "index structures" in general; this bench
// shows both enjoying the same open-nested concurrency on point
// operations, with the tree paying extra depth and the hash paying
// occasional directory maintenance.

#include <cstdio>
#include <thread>

#include "containers/bptree.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

constexpr size_t kKeys = 512;

std::string Key(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05llu", (unsigned long long)i);
  return buf;
}

HarnessResult RunCell(bool use_tree, size_t threads, double write_frac) {
  Database db;
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  HashIndex::RegisterMethods(&db);
  ObjectId index = use_tree
                       ? BpTree::Create(&db, "T", 32, 32)
                       : HashIndex::Create(&db, "H", 32);
  auto insert = [&](const std::string& k, const std::string& v) {
    return use_tree ? BpTree::Insert(k, v) : HashIndex::Insert(k, v);
  };
  for (size_t i = 0; i < kKeys; ++i) {
    (void)db.RunTransaction("seed", [&](MethodContext& txn) {
      return txn.Call(index, insert(Key(i), "seed"));
    });
  }
  db.counters().Reset();

  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = 400;
  return Harness::Run(
      &db, config,
      [index, use_tree, write_frac](size_t thread,
                                    size_t index_i) -> TransactionBody {
        return [=](MethodContext& txn) {
          thread_local Rng rng(thread * 31 + 5);
          (void)index_i;
          std::string key = Key(rng.NextBelow(kKeys));
          if (rng.NextDouble() < write_frac) {
            Invocation inv = use_tree ? BpTree::Insert(key, "w")
                                      : HashIndex::Insert(key, "w");
            return txn.Call(index, inv);
          }
          Value out;
          Invocation inv = use_tree ? BpTree::Search(key)
                                    : HashIndex::Search(key);
          return txn.Call(index, inv, &out);
        };
      });
}

}  // namespace

int main() {
  std::printf("S8: index-structure generality - point ops over %zu "
              "preloaded keys,\n400 txns per thread, 50%% writes\n\n",
              kKeys);
  std::printf("%-10s %8s %s\n", "index", "threads", "result");
  for (bool use_tree : {true, false}) {
    for (size_t threads : {1, 4, 8}) {
      HarnessResult r = RunCell(use_tree, threads, 0.5);
      std::printf("%-10s %8zu %s\n", use_tree ? "bptree" : "hash",
                  threads, r.Row().c_str());
    }
  }
  std::printf(
      "\nShape check: both structures commit everything with near-zero\n"
      "waits (distinct keys mostly commute end to end); the hash index\n"
      "wins on per-op cost (no routing depth), the tree pays depth for\n"
      "order (it alone supports range scans - see the scan tests).\n");
  return 0;
}
