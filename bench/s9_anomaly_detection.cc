// S9: the section 1 anomaly table, decided mechanically. For each
// classic anomaly, the anomalous and the repaired interleaving are
// constructed in the paper's model and judged by both criteria —
// demonstrating that oo-serializability admits more schedules (S1)
// while rejecting every genuine anomaly, exactly like the conventional
// criterion. Also benchmarks the per-anomaly analysis cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "schedule/validator.h"
#include "workload/anomalies.h"

using namespace oodb;

namespace {

void PrintTable() {
  std::printf("S9: anomaly detection (section 1: \"lost updates, "
              "inconsistent reads, and occurrences of phantoms\")\n\n");
  std::printf("%-18s %12s %10s %12s\n", "anomaly", "interleaving",
              "oo-accept", "conv-accept");
  for (AnomalyKind kind : AllAnomalyKinds()) {
    for (bool bad : {true, false}) {
      auto ts = MakeAnomaly(kind, bad);
      ValidationReport report = Validator::Validate(ts.get());
      std::printf("%-18s %12s %10s %12s\n", AnomalyKindName(kind),
                  bad ? "anomalous" : "repaired",
                  report.oo_serializable ? "yes" : "NO",
                  report.conventionally_serializable ? "yes" : "NO");
    }
  }
  std::printf(
      "\nShape check: every anomalous interleaving is rejected and every\n"
      "repaired one accepted, by both criteria - the extra schedules oo-\n"
      "serializability admits (S1) are all anomaly-free.\n\n");
}

void BM_AnomalyVerdict(benchmark::State& state) {
  AnomalyKind kind = static_cast<AnomalyKind>(state.range(0));
  for (auto _ : state) {
    auto ts = MakeAnomaly(kind, true);
    ValidationReport report = Validator::Validate(ts.get());
    benchmark::DoNotOptimize(report.oo_serializable);
  }
  state.SetLabel(AnomalyKindName(kind));
}
BENCHMARK(BM_AnomalyVerdict)
    ->Arg(int(AnomalyKind::kLostUpdate))
    ->Arg(int(AnomalyKind::kInconsistentRead))
    ->Arg(int(AnomalyKind::kPhantom))
    ->Arg(int(AnomalyKind::kWriteSkew));

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
