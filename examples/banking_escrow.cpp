// Escrow commutativity on accounts (the paper cites the escrow method
// [9, 14, 17] as commutativity that "includes parameter values and the
// status of accessed objects"). Concurrent transfers commute as long as
// each withdrawal is admissible; the total balance is invariant.
//
// Also contrasts the three account-type variants (escrow, name-only,
// read/write) on the same workload: identical results, very different
// lock-wait behaviour.
//
// Run: ./build/examples/banking_escrow

#include <cstdio>
#include <thread>
#include <vector>

#include "apps/bank.h"
#include "schedule/validator.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace oodb;

namespace {

void RunVariant(BankSemantics semantics, const char* label) {
  Database db;
  Bank::RegisterMethods(&db, semantics);
  ObjectId bank = Bank::Create(&db, "Bank", semantics, /*accounts=*/4,
                               /*initial_balance=*/1000);

  constexpr int kThreads = 4;
  constexpr int kTransfersEach = 100;
  Stopwatch clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, bank, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTransfersEach; ++i) {
        int from = static_cast<int>(rng.NextBelow(4));
        int to = static_cast<int>((from + 1 + rng.NextBelow(3)) % 4);
        (void)db.RunTransaction("xfer", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(txn.Call(bank, Bank::Transfer(from, to, 5)));
          // Hold the transfer's semantic locks for a moment (e.g. while
          // an external confirmation round-trips).
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          return Status::OK();
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds = clock.ElapsedSeconds();

  Value total;
  (void)db.RunTransaction("audit", [&](MethodContext& txn) {
    return txn.Call(bank, Bank::Audit(), &total);
  });

  ValidationReport report = Validator::Validate(&db.ts());
  std::printf("%-12s total=%5lld (must be 4000)  commits=%4llu "
              "aborts=%3llu waits=%5llu deadlocks=%3llu  %.3fs  oo=%s\n",
              label, (long long)total.AsInt(),
              (unsigned long long)db.counters().committed.load(),
              (unsigned long long)db.counters().aborted.load(),
              (unsigned long long)db.locks().wait_count(),
              (unsigned long long)db.counters().deadlocks.load(), seconds,
              report.oo_serializable ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("4 threads x 100 transfers of 5 between 4 accounts "
              "(initial balance 1000 each)\n\n");
  RunVariant(BankSemantics::kEscrow, "escrow");
  RunVariant(BankSemantics::kNameOnly, "name-only");
  RunVariant(BankSemantics::kReadWrite, "read-write");
  std::printf(
      "\nExpected shape: all three variants preserve the 4000 total; the\n"
      "escrow semantics never wait (all transfer pairs commute), the\n"
      "name-only variant waits on withdraw/withdraw and withdraw/deposit\n"
      "pairs, and the read/write variant waits on every access pair.\n");
  return 0;
}
