// Quickstart: define an object type with a commutativity specification,
// run concurrent transactions against it under open nested semantic
// locking, and validate the recorded execution for oo-serializability.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "cc/database.h"
#include "schedule/printer.h"
#include "schedule/validator.h"

using namespace oodb;

// 1. State: a counter with named slots.
struct CounterState : public ObjectState {
  std::map<std::string, int64_t> slots;
};

// 2. Semantics: increments commute with each other (order never matters
//    for "+="); reads conflict with increments (they observe the value).
const ObjectType* CounterType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("inc", "inc");
    spec->SetCommutes("get", "get");
    return new ObjectType("Counter", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

int main() {
  Database db;

  // 3. Methods: inc(slot, delta) and get(slot). Mutators register their
  //    compensation so aborts can undo semantically.
  db.Register(CounterType(), "inc",
              [](MethodContext& ctx, const ValueList& params,
                 Value* result) -> Status {
                auto* state = ctx.state<CounterState>();
                state->slots[params[0].AsString()] += params[1].AsInt();
                ctx.SetCompensation(Invocation(
                    "inc", {params[0], Value(-params[1].AsInt())}));
                *result = Value(state->slots[params[0].AsString()]);
                return Status::OK();
              });
  db.Register(CounterType(), "get",
              [](MethodContext& ctx, const ValueList& params,
                 Value* result) -> Status {
                auto* state = ctx.state<CounterState>();
                auto it = state->slots.find(params[0].AsString());
                *result = it == state->slots.end() ? Value()
                                                   : Value(it->second);
                return Status::OK();
              });

  ObjectId counter =
      db.CreateObject(CounterType(), "Hits", std::make_unique<CounterState>());

  // 4. Concurrent transactions: four threads increment the same slot.
  //    Increments commute, so nobody ever waits for a lock.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, counter] {
      for (int i = 0; i < 100; ++i) {
        Status st = db.RunTransaction("bump", [&](MethodContext& txn) {
          return txn.Call(counter, Invocation("inc", {Value("page"), Value(1)}));
        });
        if (!st.ok()) std::fprintf(stderr, "bump failed: %s\n",
                                   st.ToString().c_str());
      }
    });
  }
  for (auto& t : threads) t.join();

  Value total;
  (void)db.RunTransaction("read", [&](MethodContext& txn) {
    return txn.Call(counter, Invocation("get", {Value("page")}), &total);
  });
  std::printf("total after 4x100 concurrent increments: %lld\n",
              static_cast<long long>(total.AsInt()));
  std::printf("lock waits: %llu (commuting increments never block)\n",
              static_cast<unsigned long long>(db.locks().wait_count()));

  // 5. Validate the recorded execution (Defs 13/16).
  ValidationReport report = Validator::Validate(&db.ts());
  std::printf("validation: %s\n", report.Summary().c_str());
  return report.oo_serializable ? 0 : 1;
}
