// The paper's running example, end to end (Examples 1 & 4, Figs 2-8):
// builds the encyclopedia of Fig 2, replays the four top-level
// transactions of Fig 7, prints the call trees and the mechanically
// recomputed Fig 8 dependency table, and validates oo-serializability.
//
// Run: ./build/examples/encyclopedia

#include <cstdio>

#include "apps/encyclopedia.h"
#include "containers/bptree.h"
#include "containers/codec.h"
#include "containers/page_ops.h"
#include "model/commutativity_table.h"
#include "model/extension.h"
#include "schedule/printer.h"
#include "schedule/validator.h"

using namespace oodb;

int main() {
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/8,
                                      /*fanout=*/8, /*items_per_page=*/4);

  // The commutativity matrices the DBMS assumes per object type
  // (section 4: "We assume a commutativity matrix for every object").
  std::printf("== Commutativity matrices ==\n%s\n%s\n",
              CommutativityTable(
                  *LeafObjectType(),
                  {Invocation("insert", {Value("DBS"), Value("v")}),
                   Invocation("insert", {Value("DBMS"), Value("v")}),
                   Invocation("search", {Value("DBS")}),
                   Invocation("split")})
                  .c_str(),
              CommutativityTable(*PageObjectType(),
                                 {Invocation("read"), Invocation("write")})
                  .c_str());

  std::printf("== The four transactions of Example 4 ==\n");
  // T1: insert item DBS.
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert(
                             "DBS", "database systems: see also DBMS"));
  });
  std::printf("T1 insert(DBS):   %s\n", st.ToString().c_str());

  // T2: insert item DBMS, then change it.
  st = db.RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(
        enc, Encyclopedia::Insert("DBMS", "database management systems")));
    return txn.Call(
        enc, Encyclopedia::Change("DBMS",
                                  "database management systems (rev 2)"));
  });
  std::printf("T2 insert+change: %s\n", st.ToString().c_str());

  // T3: search DBS.
  Value found;
  st = db.RunTransaction("T3", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Search("DBS"), &found);
  });
  std::printf("T3 search(DBS):   %s -> \"%s\"\n", st.ToString().c_str(),
              found.AsString().c_str());

  // T4: read the items sequentially.
  Value seq;
  st = db.RunTransaction("T4", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::ReadSeq(), &seq);
  });
  auto fields = SplitFields(seq.AsString());
  std::printf("T4 readSeq:       %s (%zu items)\n", st.ToString().c_str(),
              fields.size() / 2);
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    std::printf("    %-6s = %s\n", fields[i].c_str(),
                fields[i + 1].c_str());
  }

  std::printf("\n== Call trees (Fig 7) ==\n%s",
              SchedulePrinter::AllTrees(db.ts()).c_str());

  // Extend (Def 5) and compute all object schedules (Defs 10/11/15).
  ExtensionStats ext = SystemExtender::Extend(&db.ts());
  DependencyEngine engine(db.ts());
  Status est = engine.Compute();
  if (!est.ok()) {
    std::fprintf(stderr, "dependency computation failed: %s\n",
                 est.ToString().c_str());
    return 1;
  }
  std::printf("\n== Dependency table (Fig 8) ==\n%s",
              SchedulePrinter::DependencyTable(db.ts(), engine).c_str());
  std::printf(
      "\nextension: %zu call cycles broken, %zu virtual objects\n"
      "dependencies: %zu page-level conflicts ordered (Axiom 1), "
      "%zu inherited upward (Def 10),\n"
      "              %zu stopped at commuting callers - the paper's "
      "concurrency gain\n",
      ext.cycles_broken, ext.virtual_objects,
      engine.stats().primitive_conflicts, engine.stats().inherited_txn_deps,
      engine.stats().stopped_inheritance);

  ValidationOptions opts;
  opts.apply_extension = false;  // already extended above
  ValidationReport report = Validator::Validate(&db.ts(), opts);
  std::printf("\nverdict: %s\n", report.Summary().c_str());
  return report.oo_serializable ? 0 : 1;
}
