// Cooperative document editing — the section 1 motivation. Several
// authors edit one paper concurrently. Under the object-exclusive
// strawman ("locking the whole object for the possibly long time a
// transaction may last") authors serialize; under open nested semantic
// locking, authors in different sections proceed in parallel.
//
// Run: ./build/examples/coop_editing

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/document.h"
#include "schedule/validator.h"
#include "util/stopwatch.h"

using namespace oodb;

namespace {

struct Outcome {
  double seconds;
  uint64_t committed, waits, deadlocks;
};

Outcome RunAuthors(SchedulerKind scheduler) {
  DatabaseOptions opts;
  opts.scheduler = scheduler;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(5000);
  Database db(opts);
  Document::RegisterMethods(&db);
  ObjectId doc = Document::Create(&db, "Paper", /*sections=*/4);

  constexpr int kAuthors = 4;
  constexpr int kRevisions = 25;
  Stopwatch clock;
  std::vector<std::thread> authors;
  for (int a = 0; a < kAuthors; ++a) {
    authors.emplace_back([&db, doc, a] {
      for (int rev = 0; rev < kRevisions; ++rev) {
        (void)db.RunTransaction("edit", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(txn.Call(
              doc, Document::EditSection(
                       a, "author " + std::to_string(a) + ", revision " +
                              std::to_string(rev))));
          // "Thinking" inside the transaction, while the edit's locks
          // are held: the long operation the paper worries about.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return Status::OK();
        });
      }
    });
  }
  for (auto& t : authors) t.join();

  Outcome out;
  out.seconds = clock.ElapsedSeconds();
  out.committed = db.counters().committed.load();
  out.waits = db.locks().wait_count();
  out.deadlocks = db.counters().deadlocks.load();

  ValidationReport report = Validator::Validate(&db.ts());
  if (!report.oo_serializable) {
    std::fprintf(stderr, "history not oo-serializable!\n%s\n",
                 report.Summary().c_str());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("4 authors x 25 revisions, each author in their own "
              "section, 2ms think time per edit\n\n");
  std::printf("%-18s %9s %9s %7s %10s\n", "scheduler", "seconds",
              "committed", "waits", "deadlocks");
  for (SchedulerKind kind :
       {SchedulerKind::kObjectExclusive, SchedulerKind::kFlat2PL,
        SchedulerKind::kOpenNested}) {
    Outcome out = RunAuthors(kind);
    std::printf("%-18s %9.3f %9llu %7llu %10llu\n", SchedulerKindName(kind),
                out.seconds, (unsigned long long)out.committed,
                (unsigned long long)out.waits,
                (unsigned long long)out.deadlocks);
  }
  std::printf(
      "\nExpected shape: object-exclusive serializes the whole document\n"
      "(every edit locks Document until commit), so ~4x the wall time of\n"
      "open nested semantic locking, where edits of different sections\n"
      "commute and never wait.\n");
  return 0;
}
