// validate_history: run a workload, dump the recorded execution to a
// file, reload it, and validate offline — the tooling loop for
// analyzing histories outside the process that produced them.
//
// Usage:
//   ./build/examples/validate_history [history-file]
//
// With no argument, a sample concurrent B+-tree workload is executed,
// dumped to /tmp/oodb_history.txt, reloaded, and validated. With an
// argument, the given dump is loaded and validated (types resolve to
// the built-in container types by name).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "schedule/history_io.h"
#include "schedule/printer.h"
#include "schedule/validator.h"

using namespace oodb;

namespace {

int ValidateText(const std::string& text) {
  // Types resolve through the global registry; make sure the built-in
  // container types are registered (idempotent) even when we were given
  // a file and never executed a workload ourselves.
  {
    Database scratch;
    RegisterPageMethods(&scratch);
    BpTree::RegisterMethods(&scratch);
  }
  auto loaded = HistoryIo::LoadWithGlobalTypes(text);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  TransactionSystem& ts = **loaded;
  std::printf("loaded: %zu objects, %zu actions, %zu transactions\n",
              ts.object_count(), size_t(ts.action_count()),
              ts.TopLevel().size());
  ValidationOptions opts;
  opts.check_global = true;
  ValidationReport report = Validator::Validate(&ts, opts);
  std::printf("%s\n", report.Summary().c_str());
  if (!report.serialization_order.empty()) {
    std::printf("serial order:");
    for (ActionId t : report.serialization_order) {
      std::printf(" %s", ts.action(t).label.c_str());
    }
    std::printf("\n");
  }
  return report.oo_serializable ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return ValidateText(buf.str());
  }

  // Produce a sample history: three workers inserting into one tree.
  Database db;
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  ObjectId tree = BpTree::Create(&db, "T", 8, 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&db, tree, t] {
      for (int i = 0; i < 10; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%02d_%02d", t, i);
        (void)db.RunTransaction("T" + std::string(key + 1),
                                [&](MethodContext& txn) {
                                  return txn.Call(tree,
                                                  BpTree::Insert(key, "v"));
                                });
      }
    });
  }
  for (auto& w : workers) w.join();

  Result<std::string> dump = HistoryIo::Dump(db.ts());
  if (!dump.ok()) {
    std::fprintf(stderr, "dump failed: %s\n",
                 dump.status().ToString().c_str());
    return 1;
  }
  const char* path = "/tmp/oodb_history.txt";
  std::ofstream(path) << *dump;
  std::printf("executed 30 concurrent inserts; dumped %zu bytes to %s\n\n",
              dump->size(), path);
  return ValidateText(*dump);
}
