// Value: parameter and result values carried by messages (Def 1 allows
// parameterized methods; commutativity may depend on parameters, e.g.
// insert(DBS) vs insert(DBMS) on a B+-tree leaf commute because the keys
// differ).

#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace oodb {

/// A dynamically typed parameter value: monostate (none), integer, or
/// string. Kept deliberately small; the paper's examples need keys
/// (strings like "DBS"/"DBMS") and amounts (integers).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t i) : v_(i) {}                       // NOLINT
  Value(int i) : v_(static_cast<int64_t>(i)) {}     // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT

  bool IsNone() const { return std::holds_alternative<std::monostate>(v_); }
  bool IsInt() const { return std::holds_alternative<int64_t>(v_); }
  bool IsString() const { return std::holds_alternative<std::string>(v_); }

  /// Value as integer; 0 when not an integer.
  int64_t AsInt() const {
    const int64_t* p = std::get_if<int64_t>(&v_);
    return p ? *p : 0;
  }

  /// Value as string; empty when not a string.
  const std::string& AsString() const {
    static const std::string kEmpty;
    const std::string* p = std::get_if<std::string>(&v_);
    return p ? *p : kEmpty;
  }

  /// Renders "none", the integer, or the quoted string.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.v_ == b.v_;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return !(a == b);
  }

 private:
  std::variant<std::monostate, int64_t, std::string> v_;
};

using ValueList = std::vector<Value>;

/// "(" v1, v2, ... ")"; "()" for empty.
std::string ToString(const ValueList& values);

}  // namespace oodb
