#include "model/commutativity_table.h"

#include <algorithm>

namespace oodb {

std::string CommutativityTable(const ObjectType& type,
                               const std::vector<Invocation>& samples) {
  std::vector<std::string> labels;
  size_t width = 0;
  labels.reserve(samples.size());
  for (const Invocation& inv : samples) {
    labels.push_back(inv.ToString());
    width = std::max(width, labels.back().size());
  }
  std::string out = type.name() + " commutativity (theta = commutes):\n";
  // Header row: column indices to keep the table narrow.
  out += std::string(width + 2, ' ');
  for (size_t j = 0; j < samples.size(); ++j) {
    out += "[" + std::to_string(j + 1) + "] ";
  }
  out += "\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    std::string row = "[" + std::to_string(i + 1) + "] " + labels[i];
    row.resize(width + 6, ' ');
    out += row;
    for (size_t j = 0; j < samples.size(); ++j) {
      out += type.Commutes(samples[i], samples[j]) ? " 0  " : " x  ";
    }
    out += "\n";
  }
  return out;
}

}  // namespace oodb
