// Invocation: a parameterized method (Def 1: a message m on an object O
// is a parameterized method of O sent to O, denoted O.m(parameters)).

#pragma once

#include <string>
#include <utility>

#include "model/value.h"

namespace oodb {

/// A method name plus its parameter values. The object it is sent to is
/// kept separately (in the action record) so invocations can be compared
/// across (virtual) objects of the same type.
struct Invocation {
  std::string method;
  ValueList params;

  Invocation() = default;
  Invocation(std::string m, ValueList p = {})
      : method(std::move(m)), params(std::move(p)) {}

  /// "method(p1, p2)".
  std::string ToString() const { return method + oodb::ToString(params); }

  friend bool operator==(const Invocation& a, const Invocation& b) {
    return a.method == b.method && a.params == b.params;
  }
};

}  // namespace oodb
