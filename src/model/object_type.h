// ObjectType: the per-type information the DBMS needs for semantic
// concurrency control — the method vocabulary and the commutativity
// specification (section 2: "the implementor of an object type ... can
// specify the semantics of the implemented object type. ... the DBMS can
// connect the specified semantics of different object types in one
// framework").

#pragma once

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "model/commutativity.h"

namespace oodb {

/// Describes one object type: its name, its methods, whether its methods
/// are primitive (Def 3: call no other action; e.g. page reads/writes),
/// and its commutativity specification (Def 9).
///
/// ObjectTypes are immutable after construction and shared by all objects
/// of the type; pass them around as `const ObjectType*`.
class ObjectType {
 public:
  /// `primitive` marks all methods of the type as primitive actions.
  /// (The paper notes "in database systems exists a common object type
  /// which methods call no other actions: the page".)
  ObjectType(std::string name, std::unique_ptr<CommutativitySpec> spec,
             bool primitive = false)
      : name_(std::move(name)), spec_(std::move(spec)),
        primitive_(primitive) {}

  const std::string& name() const { return name_; }
  bool primitive() const { return primitive_; }

  /// The type's commutativity specification (never null).
  const CommutativitySpec& commutativity() const { return *spec_; }

  /// Def 9 on invocations of this type (ignoring the same-process rule,
  /// which needs transaction context; see TransactionSystem::Commute).
  bool Commutes(const Invocation& a, const Invocation& b) const {
    return spec_->Commutes(a, b);
  }

 private:
  std::string name_;
  std::unique_ptr<CommutativitySpec> spec_;
  bool primitive_;
};

/// The type of the system object S (Def 4). Top-level transactions are
/// actions on S; they have no commutativity (every pair conflicts), which
/// makes the dependency relation at S the global serialization order of
/// top-level transactions.
const ObjectType* SystemObjectType();

}  // namespace oodb
