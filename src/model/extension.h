// SystemExtender: the virtual-object extension of Def 5.
//
// If a transaction t calls an action a (directly or indirectly) and both
// access the same object O, the call path forms a cycle through O: t is
// simultaneously an action on O and (transitively) a transaction over
// actions on O, and the per-object dependency inheritance of Defs 10/11
// would recurse into itself. The paper breaks the cycle by construction:
//
//   * a virtual object O' is added,
//   * the deeper action a is moved to O' (so ACT_O loses a),
//   * every remaining action b on O is "virtually duplicated" by an
//     action b' on O', with the call relationship b -> b' added, so that
//     dependencies arising on O' are inherited along these calls back to
//     the original object.
//
// The running example is the B-link split: Node6.insert eventually calls
// Node6.rearrange on the same node (section 2).

#pragma once

#include <cstddef>
#include <vector>

#include "model/transaction_system.h"

namespace oodb {

class MetricsRegistry;
class Tracer;

/// Statistics of one extension pass.
struct ExtensionStats {
  size_t cycles_broken = 0;      ///< actions moved to virtual objects
  size_t virtual_objects = 0;    ///< virtual objects created
  size_t virtual_actions = 0;    ///< duplicate actions created

  /// Sets the ext.* gauges in `registry` to these values (idempotent;
  /// null registry is a no-op).
  void PublishTo(MetricsRegistry* registry) const;
};

/// Applies the Def 5 extension to `ts` until no action has a proper
/// call-ancestor accessing the same object. Idempotent: a second run
/// performs no work. Returns what was done.
class SystemExtender {
 public:
  /// Extends the system in place. A non-null `tracer` receives one
  /// "extension.split" instant per virtual object created, tagged with
  /// the original object's name.
  static ExtensionStats Extend(TransactionSystem* ts,
                               Tracer* tracer = nullptr);

  /// True iff some action has a proper call-ancestor on the same object,
  /// i.e. the Def 5 extension still has work to do.
  static bool NeedsExtension(const TransactionSystem& ts);

  /// The offending actions (each with a proper ancestor on its object),
  /// in id order. Useful for diagnostics and tests.
  static std::vector<ActionId> FindCycleActions(const TransactionSystem& ts);
};

}  // namespace oodb
