#include "model/value.h"

namespace oodb {

std::string Value::ToString() const {
  if (IsNone()) return "none";
  if (IsInt()) return std::to_string(AsInt());
  return AsString();
}

std::string ToString(const ValueList& values) {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace oodb
