#include "model/type_registry.h"

namespace oodb {

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

bool TypeRegistry::Register(const ObjectType* type) {
  if (type == nullptr) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = types_.try_emplace(type->name(), type);
  return inserted || it->second == type;
}

const ObjectType* TypeRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : it->second;
}

std::vector<std::string> TypeRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, type] : types_) {
    (void)type;
    names.push_back(name);
  }
  return names;
}

size_t TypeRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return types_.size();
}

}  // namespace oodb
