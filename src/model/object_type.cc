#include "model/object_type.h"

namespace oodb {

const ObjectType* SystemObjectType() {
  static const ObjectType kType("System", std::make_unique<NeverCommutes>(),
                                /*primitive=*/false);
  return &kType;
}

}  // namespace oodb
