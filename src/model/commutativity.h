// Commutativity specifications (Def 9 and section 2).
//
// Each object type carries a commutativity specification over its
// operations: "We assume a commutativity matrix for every object for all
// their actions. It specifies for every action pair if they commute or if
// they are in conflict." The paper cites Weihl-style abstract-data-type
// commutativity and the escrow method, which "includes parameter values
// and the status of accessed objects in the commutativity definition" —
// hence specs here see full invocations (method + parameters) and may be
// composed from per-method-pair predicates.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "model/invocation.h"

namespace oodb {

/// What a spec's Commutes answers depend on — and therefore how far
/// analysis passes (the conflict-index memo) may cache them. The spec
/// declares this itself because only it knows its inputs; the safe
/// default is kNone (never cache), which the escrow method requires:
/// it "includes parameter values and the status of accessed objects in
/// the commutativity definition", so yesterday's answer may be wrong
/// today.
enum class CommutativityMemo {
  /// Answers may depend on object state or other external inputs:
  /// every query must reach the spec.
  kNone,
  /// Answers depend only on the two method names.
  kMethodPair,
  /// Answers depend on method names and parameter values, but not on
  /// state: one answer per unordered invocation pair.
  kInvocationPair,
};

/// Decides whether two invocations on (distinct executions against) the
/// same object commute. Implementations must be symmetric:
/// Commutes(a, b) == Commutes(b, a). Thread-safe after construction.
class CommutativitySpec {
 public:
  virtual ~CommutativitySpec() = default;

  /// True iff the effect and results of `a` and `b` are independent of
  /// their execution order (Def 9: a Θ b). Unknown methods should be
  /// treated conservatively (conflict).
  virtual bool Commutes(const Invocation& a, const Invocation& b) const = 0;

  /// True iff `a` and `b` are in conflict (the negation of Commutes).
  bool Conflicts(const Invocation& a, const Invocation& b) const {
    return !Commutes(a, b);
  }

  /// Declared memoization granularity. Overrides must only widen this
  /// when Commutes is a pure function of the declared inputs.
  virtual CommutativityMemo memo() const { return CommutativityMemo::kNone; }
};

/// Everything conflicts with everything. The conservative default: using
/// it everywhere degenerates oo-serializability to conventional
/// serializability over the same actions.
class NeverCommutes : public CommutativitySpec {
 public:
  bool Commutes(const Invocation&, const Invocation&) const override {
    return false;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kMethodPair;
  }
};

/// Everything commutes (for pure observers or append-only logs).
class AlwaysCommutes : public CommutativitySpec {
 public:
  bool Commutes(const Invocation&, const Invocation&) const override {
    return true;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kMethodPair;
  }
};

/// Classical read/write semantics, the paper's zero layer (pages):
/// read Θ read; every pair involving a writer conflicts. Method names
/// are partitioned into readers and writers at construction; unknown
/// methods are writers.
class ReadWriteCommutativity : public CommutativitySpec {
 public:
  explicit ReadWriteCommutativity(std::set<std::string> readers)
      : readers_(std::move(readers)) {}

  bool Commutes(const Invocation& a, const Invocation& b) const override {
    return readers_.count(a.method) > 0 && readers_.count(b.method) > 0;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kMethodPair;
  }

 private:
  std::set<std::string> readers_;
};

/// A commutativity matrix over method names, ignoring parameters.
/// Pairs not mentioned conflict (conservative). Entries are stored
/// symmetrically.
class MatrixCommutativity : public CommutativitySpec {
 public:
  /// Declares that `m1` and `m2` commute (in both orders).
  void SetCommutes(const std::string& m1, const std::string& m2);

  bool Commutes(const Invocation& a, const Invocation& b) const override;
  CommutativityMemo memo() const override {
    return CommutativityMemo::kMethodPair;
  }

 private:
  std::set<std::pair<std::string, std::string>> commuting_;
};

/// Parameter-aware commutativity built from per-method-pair predicates.
///
/// Used for keyed containers: insert(k1) Θ insert(k2) iff k1 != k2, and
/// for escrow-style predicates. Resolution order:
///   1. an exact predicate registered for the (unordered) method pair;
///   2. the default for the pair (conflict).
/// Predicates receive the invocations in registration order of the names.
class PredicateCommutativity : public CommutativitySpec {
 public:
  using Predicate =
      std::function<bool(const Invocation& a, const Invocation& b)>;

  /// Registers `pred` for the method pair (m1, m2). When a query arrives
  /// as (m2, m1) the arguments are swapped before calling `pred`, so the
  /// predicate may rely on the order (m1, m2).
  void SetPredicate(const std::string& m1, const std::string& m2,
                    Predicate pred);

  /// Declares that the pair always commutes / always conflicts.
  void SetCommutes(const std::string& m1, const std::string& m2);
  void SetConflicts(const std::string& m1, const std::string& m2);

  bool Commutes(const Invocation& a, const Invocation& b) const override;

  /// Predicates are assumed pure in the invocations (the convenience
  /// predicates below are), so answers memoize per invocation pair.
  /// A spec whose predicates consult object state (escrow-style) must
  /// call DeclareStateDependent() to opt out of caching.
  CommutativityMemo memo() const override {
    return state_dependent_ ? CommutativityMemo::kNone
                            : CommutativityMemo::kInvocationPair;
  }
  void DeclareStateDependent() { state_dependent_ = true; }

  /// Convenience predicate: commute iff parameter `index` differs.
  static Predicate DifferentParam(size_t index);

  /// Convenience predicate: commute iff parameter `index` is equal.
  static Predicate SameParam(size_t index);

  /// Convenience predicate: commute iff parameter `index` differs OR the
  /// two invocations are identical (blind overwrites of one key: the
  /// order of two equal writes is unobservable, unequal same-key writes
  /// conflict). The shape the inference engine synthesizes for keyed
  /// writers.
  static Predicate DifferentParamOrIdentical(size_t index);

 private:
  std::map<std::pair<std::string, std::string>, Predicate> predicates_;
  bool state_dependent_ = false;
};

}  // namespace oodb
