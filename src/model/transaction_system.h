// TransactionSystem: objects, actions, and oo-transactions (Defs 1-6).
//
// An oo-transaction (Def 2) is a tree of actions: the root action, the
// sets of actions each action calls, and a precedence relation (partial
// order) inside each action set. A transaction system (Def 4) is a set
// OBJ of objects with a distinguished system object S plus a set TOP of
// top-level transactions, which are actions on S.
//
// This class is both the static formalism (built by hand in tests and
// the figure benches) and the runtime execution record (populated by the
// cc module while transactions execute, including the primitive-action
// timestamps that manifest Axiom 1). All mutators are thread-safe;
// readers are safe once execution has quiesced.

#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/ids.h"
#include "model/invocation.h"
#include "model/object_type.h"
#include "util/result.h"
#include "util/status.h"

namespace oodb {

/// One object of the system (Def 4). Virtual objects (Def 5) reference
/// the original they duplicate.
struct ObjectRecord {
  ObjectId id;
  const ObjectType* type = nullptr;
  std::string name;
  bool is_virtual = false;
  ObjectId original;               ///< valid iff is_virtual
  std::vector<ActionId> actions;   ///< ACT_O, in creation order
};

/// One action: a numbered message on an object (Def 2). Top-level
/// transactions are the actions on the system object (Def 4).
struct ActionRecord {
  ActionId id;
  ObjectId object;
  Invocation invocation;
  ActionId parent;                  ///< invalid for top-level transactions
  std::vector<ActionId> children;   ///< the action set A_a, in call order
  /// Precedence edges (Def 2) among this action's children:
  /// (before, after) pairs, a partial order on the action set.
  std::vector<std::pair<ActionId, ActionId>> child_precedence;
  uint32_t process = 0;             ///< intra-transaction process (Def 9)
  ActionId top_level;               ///< cached root of the call tree
  bool is_virtual = false;          ///< virtual duplicate (Def 5)
  ActionId original;                ///< valid iff is_virtual
  /// Execution order of primitive actions (Axiom 1): a global, strictly
  /// increasing sequence number assigned when the primitive executes.
  /// 0 = not executed / not primitive.
  uint64_t timestamp = 0;
  /// Completion sequence number (0 = not completed). Used by the runtime
  /// for compensation order and by diagnostics.
  uint64_t completion = 0;
  std::string label;                ///< hierarchical label, e.g. "T1.2.1"
};

/// The transaction system TS = (OBJ, TOP) of Def 4, extended with
/// runtime bookkeeping.
class TransactionSystem {
 public:
  TransactionSystem();

  TransactionSystem(const TransactionSystem&) = delete;
  TransactionSystem& operator=(const TransactionSystem&) = delete;

  // --- construction -------------------------------------------------

  /// Registers an object of `type`. `name` is for diagnostics only.
  ObjectId AddObject(const ObjectType* type, std::string name);

  /// Starts a new top-level transaction: an action on the system object
  /// S whose method is `name` (Def 4).
  ActionId BeginTopLevel(std::string name);

  /// Records that `parent` calls `invocation` on `object` (Def 1/2).
  /// When `sequential` is true a precedence edge from the previous child
  /// of `parent` is added (the common case of a sequential method body).
  ActionId Call(ActionId parent, ObjectId object, Invocation invocation,
                bool sequential = true);

  /// Adds a precedence edge between two children of the same parent
  /// (Def 2: the precedence relation is per action set).
  Status AddPrecedence(ActionId before, ActionId after);

  /// Assigns the intra-transaction process of `a` (Def 9). Children
  /// inherit their parent's process at Call time.
  void SetProcess(ActionId a, uint32_t process);

  /// Stamps the execution order of a primitive action (Axiom 1). The
  /// runtime calls NextTimestamp() under the object latch.
  void SetTimestamp(ActionId a, uint64_t ts);
  uint64_t NextTimestamp();

  /// Stamps completion order (monotone); used for compensation.
  void MarkCompleted(ActionId a);

  // --- queries -------------------------------------------------------

  const ObjectRecord& object(ObjectId id) const;
  const ActionRecord& action(ActionId id) const;

  size_t object_count() const { return objects_.size(); }
  size_t action_count() const { return actions_.size(); }

  /// All non-system objects in creation order.
  std::vector<ObjectId> Objects() const;

  /// The top-level transactions TOP, in creation order.
  const std::vector<ActionId>& TopLevel() const { return top_level_; }

  /// ACT_O: the actions on `o` (Def 5 notation).
  const std::vector<ActionId>& ActionsOn(ObjectId o) const {
    return object(o).actions;
  }

  /// TRA_O: the transactions on `o` — the distinct direct callers of
  /// actions on `o` (Def 6). Top-level actions on S have no caller and
  /// contribute nothing.
  std::vector<ActionId> TransactionsOn(ObjectId o) const;

  /// The root (top-level transaction) of `a`'s call tree.
  ActionId TopLevelOf(ActionId a) const { return action(a).top_level; }

  /// True iff `anc` calls `desc` transitively (anc ->+ desc).
  bool CallsTransitively(ActionId anc, ActionId desc) const;

  /// True iff `a` is primitive: it calls no other action AND its type is
  /// declared primitive (Def 3). During construction an action with no
  /// children yet is primitive only if its type says so.
  bool IsPrimitive(ActionId a) const;

  /// PR_O: primitive actions on `o` (Def 3).
  std::vector<ActionId> PrimitiveActionsOn(ObjectId o) const;

  /// Def 9 with the process rule: actions of the same process of the
  /// same top-level transaction never conflict; otherwise the object
  /// type's commutativity specification decides. Both actions must be on
  /// the same object (callers must ensure this).
  bool Commute(ActionId a, ActionId b) const;

  /// Installs `spec` as the Def 9 commutativity source for objects of
  /// `type`, replacing the type's declared spec in Commute (and in the
  /// engines' ConflictIndex, which routes through SpecFor). This is how
  /// a matrix synthesized by the inference engine (analysis/
  /// spec_synthesis.h) is loaded and benched against the hand spec
  /// without re-registering types. `spec` must outlive the system; pass
  /// null to remove. Install only while the system is quiescent — the
  /// map is read unlocked on the validation hot path.
  void SetSpecOverride(const ObjectType* type, const CommutativitySpec* spec);

  /// The spec Commute consults for `type`: the installed override, or
  /// the type's declared commutativity.
  const CommutativitySpec& SpecFor(const ObjectType* type) const;

  /// The object-precedence relation of Def 7 restricted to a pair:
  /// a must precede b if some ancestor pair of a and b are ordered
  /// siblings of one action set (or a, b themselves are).
  bool MustPrecede(ActionId a, ActionId b) const;

  /// Human-readable "Object.method(params) [label]".
  std::string Describe(ActionId a) const;

 private:
  ActionRecord& MutableAction(ActionId id);
  ObjectRecord& MutableObject(ObjectId id);

  // Friends may perform the surgical updates of the Def 5 extension.
  friend class SystemExtender;

  mutable std::mutex mutex_;
  std::deque<ObjectRecord> objects_;   // index = ObjectId.value
  std::deque<ActionRecord> actions_;   // index = ActionId.value
  std::vector<ActionId> top_level_;
  /// Per-type commutativity overrides (SetSpecOverride); empty in the
  /// common case. Not guarded by mutex_: written only while quiescent.
  std::unordered_map<const ObjectType*, const CommutativitySpec*>
      spec_overrides_;
  uint64_t next_timestamp_ = 0;
  uint64_t next_completion_ = 0;
};

}  // namespace oodb
