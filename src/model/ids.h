// Strongly typed identifiers for objects and actions.

#pragma once

#include <cstdint>
#include <functional>

namespace oodb {

/// Identifies an object of a transaction system (Def 4: objects are
/// uniquely identified by an object identifier). Id 0 is reserved for the
/// system object S.
struct ObjectId {
  uint64_t value = kInvalid;

  static constexpr uint64_t kInvalid = UINT64_MAX;
  static constexpr uint64_t kSystem = 0;

  constexpr ObjectId() = default;
  constexpr explicit ObjectId(uint64_t v) : value(v) {}

  static constexpr ObjectId System() { return ObjectId(kSystem); }

  bool valid() const { return value != kInvalid; }
  bool IsSystem() const { return value == kSystem; }

  friend bool operator==(ObjectId a, ObjectId b) { return a.value == b.value; }
  friend bool operator!=(ObjectId a, ObjectId b) { return a.value != b.value; }
  friend bool operator<(ObjectId a, ObjectId b) { return a.value < b.value; }
};

/// Identifies an action (a numbered message, Def 2) within a transaction
/// system. Actions are arena-allocated; ids are dense indices.
struct ActionId {
  uint64_t value = kInvalid;

  static constexpr uint64_t kInvalid = UINT64_MAX;

  constexpr ActionId() = default;
  constexpr explicit ActionId(uint64_t v) : value(v) {}

  bool valid() const { return value != kInvalid; }

  friend bool operator==(ActionId a, ActionId b) { return a.value == b.value; }
  friend bool operator!=(ActionId a, ActionId b) { return a.value != b.value; }
  friend bool operator<(ActionId a, ActionId b) { return a.value < b.value; }
};

}  // namespace oodb

namespace std {
template <>
struct hash<oodb::ObjectId> {
  size_t operator()(oodb::ObjectId id) const noexcept {
    return std::hash<uint64_t>()(id.value);
  }
};
template <>
struct hash<oodb::ActionId> {
  size_t operator()(oodb::ActionId id) const noexcept {
    return std::hash<uint64_t>()(id.value);
  }
};
}  // namespace std
