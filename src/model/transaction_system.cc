#include "model/transaction_system.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace oodb {

TransactionSystem::TransactionSystem() {
  // The system object S occupies id 0 (Def 4).
  ObjectRecord sys;
  sys.id = ObjectId::System();
  sys.type = SystemObjectType();
  sys.name = "S";
  objects_.push_back(std::move(sys));
}

ObjectId TransactionSystem::AddObject(const ObjectType* type,
                                      std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId id(objects_.size());
  ObjectRecord rec;
  rec.id = id;
  rec.type = type;
  rec.name = std::move(name);
  objects_.push_back(std::move(rec));
  return id;
}

ActionId TransactionSystem::BeginTopLevel(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActionId id(actions_.size());
  ActionRecord rec;
  rec.id = id;
  rec.object = ObjectId::System();
  rec.invocation = Invocation(name);
  rec.top_level = id;
  rec.label = name.empty() ? ("T" + std::to_string(top_level_.size() + 1))
                           : name;
  actions_.push_back(std::move(rec));
  objects_[ObjectId::kSystem].actions.push_back(id);
  top_level_.push_back(id);
  return id;
}

ActionId TransactionSystem::Call(ActionId parent, ObjectId object,
                                 Invocation invocation, bool sequential) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActionRecord& par = actions_[parent.value];
  ActionId id(actions_.size());
  ActionRecord rec;
  rec.id = id;
  rec.object = object;
  rec.invocation = std::move(invocation);
  rec.parent = parent;
  rec.process = par.process;
  rec.top_level = par.top_level;
  rec.label = par.label + "." + std::to_string(par.children.size() + 1);
  if (sequential && !par.children.empty()) {
    par.child_precedence.emplace_back(par.children.back(), id);
  }
  par.children.push_back(id);
  actions_.push_back(std::move(rec));
  objects_[object.value].actions.push_back(id);
  return id;
}

Status TransactionSystem::AddPrecedence(ActionId before, ActionId after) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ActionRecord& b = actions_[before.value];
  const ActionRecord& a = actions_[after.value];
  if (!(b.parent == a.parent) || !b.parent.valid()) {
    return Status::InvalidArgument(
        "precedence edges must connect children of one action set");
  }
  actions_[b.parent.value].child_precedence.emplace_back(before, after);
  return Status::OK();
}

void TransactionSystem::SetProcess(ActionId a, uint32_t process) {
  std::lock_guard<std::mutex> lock(mutex_);
  actions_[a.value].process = process;
}

void TransactionSystem::SetTimestamp(ActionId a, uint64_t ts) {
  std::lock_guard<std::mutex> lock(mutex_);
  actions_[a.value].timestamp = ts;
}

uint64_t TransactionSystem::NextTimestamp() {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++next_timestamp_;
}

void TransactionSystem::MarkCompleted(ActionId a) {
  std::lock_guard<std::mutex> lock(mutex_);
  actions_[a.value].completion = ++next_completion_;
}

const ObjectRecord& TransactionSystem::object(ObjectId id) const {
  return objects_[id.value];
}

const ActionRecord& TransactionSystem::action(ActionId id) const {
  return actions_[id.value];
}

ActionRecord& TransactionSystem::MutableAction(ActionId id) {
  return actions_[id.value];
}

ObjectRecord& TransactionSystem::MutableObject(ObjectId id) {
  return objects_[id.value];
}

std::vector<ObjectId> TransactionSystem::Objects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size() - 1);
  for (size_t i = 1; i < objects_.size(); ++i) out.push_back(ObjectId(i));
  return out;
}

std::vector<ActionId> TransactionSystem::TransactionsOn(ObjectId o) const {
  std::vector<ActionId> out;
  std::unordered_set<uint64_t> seen;
  for (ActionId a : object(o).actions) {
    ActionId p = action(a).parent;
    if (p.valid() && seen.insert(p.value).second) out.push_back(p);
  }
  return out;
}

bool TransactionSystem::CallsTransitively(ActionId anc, ActionId desc) const {
  ActionId cur = action(desc).parent;
  while (cur.valid()) {
    if (cur == anc) return true;
    cur = action(cur).parent;
  }
  return false;
}

bool TransactionSystem::IsPrimitive(ActionId a) const {
  // Virtual duplicate children added by the Def 5 extension do not count
  // as calls: they are bookkeeping, and the original must keep its
  // primitive status so Axiom 1 still orders it.
  const ActionRecord& rec = action(a);
  for (ActionId c : rec.children) {
    if (!action(c).is_virtual) return false;
  }
  return object(rec.object).type->primitive();
}

std::vector<ActionId> TransactionSystem::PrimitiveActionsOn(
    ObjectId o) const {
  std::vector<ActionId> out;
  for (ActionId a : object(o).actions) {
    if (IsPrimitive(a)) out.push_back(a);
  }
  return out;
}

bool TransactionSystem::Commute(ActionId a, ActionId b) const {
  if (a == b) return true;
  const ActionRecord& ra = action(a);
  const ActionRecord& rb = action(b);
  // Def 9: actions of the same process (of one top-level transaction)
  // are never in conflict — their interaction is program logic, not
  // concurrency. Ancestor/descendant pairs are same-process by
  // construction (children inherit the process id unless respawned).
  if (ra.top_level == rb.top_level && ra.process == rb.process) return true;
  const ObjectType* type = object(ra.object).type;
  return SpecFor(type).Commutes(ra.invocation, rb.invocation);
}

void TransactionSystem::SetSpecOverride(const ObjectType* type,
                                        const CommutativitySpec* spec) {
  if (spec == nullptr) {
    spec_overrides_.erase(type);
  } else {
    spec_overrides_[type] = spec;
  }
}

const CommutativitySpec& TransactionSystem::SpecFor(
    const ObjectType* type) const {
  if (!spec_overrides_.empty()) {
    auto it = spec_overrides_.find(type);
    if (it != spec_overrides_.end()) return *it->second;
  }
  return type->commutativity();
}

bool TransactionSystem::MustPrecede(ActionId a, ActionId b) const {
  // Def 7: a must precede b if ancestors (or selves) of a and b are
  // connected by the precedence relation of a common action set.
  // Collect the ancestor chains (self first), find the lowest common
  // parent, and test reachability in that action set's precedence edges.
  auto chain = [this](ActionId x) {
    std::vector<ActionId> c;
    for (ActionId cur = x; cur.valid(); cur = action(cur).parent) {
      c.push_back(cur);
    }
    return c;
  };
  std::vector<ActionId> ca = chain(a), cb = chain(b);
  if (ca.back() != cb.back()) return false;  // different top-level trees
  // Walk from the roots down to the divergence point.
  size_t ia = ca.size(), ib = cb.size();
  while (ia > 0 && ib > 0 && ca[ia - 1] == cb[ib - 1]) {
    --ia;
    --ib;
  }
  if (ia == 0 || ib == 0) return false;  // one is an ancestor of the other
  ActionId branch_a = ca[ia - 1];
  ActionId branch_b = cb[ib - 1];
  ActionId common_parent = action(branch_a).parent;
  // BFS over the precedence edges of the common action set.
  const auto& edges = action(common_parent).child_precedence;
  std::deque<ActionId> frontier{branch_a};
  std::unordered_set<uint64_t> visited{branch_a.value};
  while (!frontier.empty()) {
    ActionId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [from, to] : edges) {
      if (from == cur && visited.insert(to.value).second) {
        if (to == branch_b) return true;
        frontier.push_back(to);
      }
    }
  }
  return false;
}

std::string TransactionSystem::Describe(ActionId a) const {
  const ActionRecord& rec = action(a);
  std::string out = object(rec.object).name + "." + rec.invocation.ToString();
  out += " [" + rec.label + "]";
  return out;
}

}  // namespace oodb
