// TypeRegistry: name -> ObjectType lookup.
//
// Object types carry code (commutativity specifications), so they cannot
// be serialized; histories reference them by name (see
// schedule/history_io.h). A registry maps those names back. The global
// instance is populated by the container/app modules' Register*Methods
// calls and by user code.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "model/object_type.h"

namespace oodb {

/// A thread-safe name -> type map. Registration of the same pointer
/// under its name is idempotent; registering a *different* type under
/// an existing name is refused (types are global constants).
class TypeRegistry {
 public:
  /// The process-wide registry.
  static TypeRegistry& Global();

  /// Registers `type` under its name(). Returns false (and changes
  /// nothing) when a different type already owns the name.
  bool Register(const ObjectType* type);

  /// Lookup by name; null when unknown.
  const ObjectType* Find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, const ObjectType*> types_;
};

}  // namespace oodb
