#include "model/extension.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace oodb {

void ExtensionStats::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("ext.cycles_broken",
                     static_cast<int64_t>(cycles_broken));
  registry->SetGauge("ext.virtual_objects",
                     static_cast<int64_t>(virtual_objects));
  registry->SetGauge("ext.virtual_actions",
                     static_cast<int64_t>(virtual_actions));
}

namespace {

/// True iff `a` has a proper call-ancestor accessing the same object.
bool HasAncestorOnSameObject(const TransactionSystem& ts, ActionId a) {
  const ActionRecord& rec = ts.action(a);
  ActionId cur = rec.parent;
  while (cur.valid()) {
    if (ts.action(cur).object == rec.object) return true;
    cur = ts.action(cur).parent;
  }
  return false;
}

}  // namespace

std::vector<ActionId> SystemExtender::FindCycleActions(
    const TransactionSystem& ts) {
  std::vector<ActionId> out;
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    ActionId a(i);
    if (HasAncestorOnSameObject(ts, a)) out.push_back(a);
  }
  return out;
}

bool SystemExtender::NeedsExtension(const TransactionSystem& ts) {
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    if (HasAncestorOnSameObject(ts, ActionId(i))) return true;
  }
  return false;
}

ExtensionStats SystemExtender::Extend(TransactionSystem* ts,
                                      Tracer* tracer) {
  ExtensionStats stats;
  // Deeper actions first: moving a descendant cannot re-create a
  // violation for its ancestors, and processing in reverse id order
  // (children have larger ids than parents) visits descendants before
  // ancestors within one pass.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<ActionId> offenders = FindCycleActions(*ts);
    std::sort(offenders.begin(), offenders.end(),
              [](ActionId x, ActionId y) { return y < x; });
    for (ActionId a : offenders) {
      // Re-check: an earlier move this pass may have resolved it.
      if (!HasAncestorOnSameObject(*ts, a)) continue;
      ObjectId o = ts->action(a).object;
      // Copy: AddObject below may reallocate the object table.
      const ObjectType* otype = ts->object(o).type;
      const std::string oname = ts->object(o).name;

      // Create the virtual object O'.
      ObjectId vo = ts->AddObject(otype, oname + "'");
      {
        std::lock_guard<std::mutex> lock(ts->mutex_);
        ObjectRecord& vrec = ts->MutableObject(vo);
        vrec.is_virtual = true;
        vrec.original = o;
      }
      ++stats.virtual_objects;
      if (tracer != nullptr) {
        tracer->RecordInstant("extension.split", tracer->NowNs(), oname);
      }

      // Move a from O to O' (ACT_O := ACT_O - {a}; ACT_O' gains a).
      {
        std::lock_guard<std::mutex> lock(ts->mutex_);
        ObjectRecord& from = ts->MutableObject(o);
        from.actions.erase(
            std::remove(from.actions.begin(), from.actions.end(), a),
            from.actions.end());
        ts->MutableObject(vo).actions.push_back(a);
        ts->MutableAction(a).object = vo;
      }
      ++stats.cycles_broken;

      // Virtually duplicate every remaining action b on O as b' on O',
      // called by b. Duplicates carry the original invocation, process,
      // and (for primitives) the execution timestamp, so conflicts with
      // the moved action are observable on O' and inherit back to b.
      std::vector<ActionId> originals = ts->ActionsOn(o);
      for (ActionId b : originals) {
        const ActionRecord& brec = ts->action(b);
        if (brec.is_virtual && ts->object(brec.object).original == vo) {
          continue;  // defensive; cannot happen for fresh vo
        }
        ActionId bv = ts->Call(b, vo, brec.invocation, /*sequential=*/false);
        std::lock_guard<std::mutex> lock(ts->mutex_);
        ActionRecord& vrec = ts->MutableAction(bv);
        vrec.is_virtual = true;
        vrec.original = b;
        vrec.process = brec.process;
        vrec.timestamp = brec.timestamp;
        vrec.completion = brec.completion;
        vrec.label = brec.label + "'";
        ++stats.virtual_actions;
      }
      changed = true;
    }
  }
  return stats;
}

}  // namespace oodb
