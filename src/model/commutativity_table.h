// Rendering commutativity specifications as the Θ-tables the
// literature draws (the paper assumes "a commutativity matrix for every
// object for all their actions").

#pragma once

#include <string>
#include <vector>

#include "model/invocation.h"
#include "model/object_type.h"

namespace oodb {

/// Renders the pairwise commutativity of `samples` under `type` as an
/// ASCII matrix: Θ = commutes, x = conflicts. Sample invocations stand
/// in for operation classes (parameter-dependent specs need concrete
/// parameters, e.g. insert(a) vs insert(b)).
std::string CommutativityTable(const ObjectType& type,
                               const std::vector<Invocation>& samples);

}  // namespace oodb
