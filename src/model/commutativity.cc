#include "model/commutativity.h"

namespace oodb {

void MatrixCommutativity::SetCommutes(const std::string& m1,
                                      const std::string& m2) {
  commuting_.insert({m1, m2});
  commuting_.insert({m2, m1});
}

bool MatrixCommutativity::Commutes(const Invocation& a,
                                   const Invocation& b) const {
  return commuting_.count({a.method, b.method}) > 0;
}

void PredicateCommutativity::SetPredicate(const std::string& m1,
                                          const std::string& m2,
                                          Predicate pred) {
  predicates_[{m1, m2}] = pred;
  if (m1 != m2) {
    predicates_[{m2, m1}] = [pred](const Invocation& a, const Invocation& b) {
      return pred(b, a);
    };
  }
}

void PredicateCommutativity::SetCommutes(const std::string& m1,
                                         const std::string& m2) {
  SetPredicate(m1, m2,
               [](const Invocation&, const Invocation&) { return true; });
}

void PredicateCommutativity::SetConflicts(const std::string& m1,
                                          const std::string& m2) {
  SetPredicate(m1, m2,
               [](const Invocation&, const Invocation&) { return false; });
}

bool PredicateCommutativity::Commutes(const Invocation& a,
                                      const Invocation& b) const {
  auto it = predicates_.find({a.method, b.method});
  if (it == predicates_.end()) return false;  // conservative default
  return it->second(a, b);
}

PredicateCommutativity::Predicate PredicateCommutativity::DifferentParam(
    size_t index) {
  return [index](const Invocation& a, const Invocation& b) {
    if (a.params.size() <= index || b.params.size() <= index) return false;
    return !(a.params[index] == b.params[index]);
  };
}

PredicateCommutativity::Predicate PredicateCommutativity::SameParam(
    size_t index) {
  return [index](const Invocation& a, const Invocation& b) {
    if (a.params.size() <= index || b.params.size() <= index) return false;
    return a.params[index] == b.params[index];
  };
}

PredicateCommutativity::Predicate
PredicateCommutativity::DifferentParamOrIdentical(size_t index) {
  return [index](const Invocation& a, const Invocation& b) {
    if (a == b) return true;
    if (a.params.size() <= index || b.params.size() <= index) return false;
    return !(a.params[index] == b.params[index]);
  };
}

}  // namespace oodb
