#include "schedule/history_io.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "model/type_registry.h"

namespace oodb {

namespace {

constexpr const char* kHeader = "oodb-history v1";

/// Percent-escapes %, space, tab, and newline so fields stay one token.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
        c < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += char(c);
    }
  }
  return out.empty() ? "%" : out;  // bare "%" encodes the empty string
}

Result<std::string> UnescapeField(const std::string& s) {
  if (s == "%") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) {
        return Status::InvalidArgument("truncated escape in '" + s + "'");
      }
      out += char(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  if (v.IsNone()) return "n";
  if (v.IsInt()) return "i" + std::to_string(v.AsInt());
  return "s" + EscapeField(v.AsString());
}

Result<Value> DecodeValue(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty value token");
  switch (s[0]) {
    case 'n':
      return Value();
    case 'i':
      return Value(int64_t(std::stoll(s.substr(1))));
    case 's': {
      auto r = UnescapeField(s.substr(1));
      if (!r.ok()) return r.status();
      return Value(*r);
    }
    default:
      return Status::InvalidArgument("bad value token '" + s + "'");
  }
}

}  // namespace

Result<std::string> HistoryIo::Dump(const TransactionSystem& ts) {
  std::ostringstream out;
  out << kHeader << "\n";
  for (ObjectId o : ts.Objects()) {
    const ObjectRecord& rec = ts.object(o);
    if (rec.is_virtual) {
      return Status::InvalidArgument(
          "cannot dump an extended system (virtual object " + rec.name +
          "); dump before running SystemExtender");
    }
    out << "object " << o.value << " " << EscapeField(rec.type->name())
        << " " << EscapeField(rec.name) << "\n";
  }
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    const ActionRecord& rec = ts.action(ActionId(i));
    if (rec.is_virtual) {
      return Status::InvalidArgument(
          "cannot dump an extended system (virtual action)");
    }
    out << "action " << i << " " << rec.object.value << " ";
    if (rec.parent.valid()) {
      out << rec.parent.value;
    } else {
      out << "-";
    }
    out << " " << rec.process << " " << rec.timestamp << " "
        << rec.completion << " " << EscapeField(rec.invocation.method)
        << " " << rec.invocation.params.size();
    for (const Value& v : rec.invocation.params) {
      out << " " << EncodeValue(v);
    }
    out << " " << EscapeField(rec.label) << "\n";
  }
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    const ActionRecord& rec = ts.action(ActionId(i));
    for (const auto& [before, after] : rec.child_precedence) {
      out << "prec " << before.value << " " << after.value << "\n";
    }
  }
  return out.str();
}

Result<std::unique_ptr<TransactionSystem>> HistoryIo::Load(
    const std::string& text, const TypeResolver& resolver) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing '" + std::string(kHeader) +
                                   "' header");
  }
  auto ts = std::make_unique<TransactionSystem>();
  struct PendingCompletion {
    ActionId action;
    uint64_t completion;
  };
  std::vector<PendingCompletion> completions;

  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == "object") {
      uint64_t id;
      std::string type_token, name_token;
      if (!(fields >> id >> type_token >> name_token)) {
        return fail("malformed object line");
      }
      auto type_name = UnescapeField(type_token);
      auto name = UnescapeField(name_token);
      if (!type_name.ok()) return type_name.status();
      if (!name.ok()) return name.status();
      const ObjectType* type = resolver(*type_name);
      if (type == nullptr) {
        return fail("unknown object type '" + *type_name + "'");
      }
      ObjectId assigned = ts->AddObject(type, *name);
      if (assigned.value != id) {
        return fail("object id mismatch: expected " + std::to_string(id) +
                    ", got " + std::to_string(assigned.value));
      }
    } else if (kind == "action") {
      uint64_t id, object, process, timestamp, completion;
      std::string parent_token, method_token, label_token;
      size_t nparams;
      if (!(fields >> id >> object >> parent_token >> process >>
            timestamp >> completion >> method_token >> nparams)) {
        return fail("malformed action line");
      }
      auto method = UnescapeField(method_token);
      if (!method.ok()) return method.status();
      ValueList params;
      for (size_t p = 0; p < nparams; ++p) {
        std::string token;
        if (!(fields >> token)) return fail("missing parameter");
        auto v = DecodeValue(token);
        if (!v.ok()) return v.status();
        params.push_back(*v);
      }
      if (!(fields >> label_token)) return fail("missing label");

      ActionId assigned;
      if (parent_token == "-") {
        assigned = ts->BeginTopLevel(*method);
      } else {
        ActionId parent(std::stoull(parent_token));
        if (parent.value >= ts->action_count()) {
          return fail("parent references a later action");
        }
        assigned = ts->Call(parent, ObjectId(object),
                            Invocation(*method, std::move(params)),
                            /*sequential=*/false);
      }
      if (assigned.value != id) {
        return fail("action id mismatch: expected " + std::to_string(id));
      }
      ts->SetProcess(assigned, uint32_t(process));
      if (timestamp != 0) ts->SetTimestamp(assigned, timestamp);
      if (completion != 0) completions.push_back({assigned, completion});
    } else if (kind == "prec") {
      uint64_t before, after;
      if (!(fields >> before >> after)) return fail("malformed prec line");
      Status st = ts->AddPrecedence(ActionId(before), ActionId(after));
      if (!st.ok()) return fail(st.ToString());
    } else {
      return fail("unknown record kind '" + kind + "'");
    }
  }

  // Replay completions in their original order so the relative sequence
  // is preserved (absolute values are reassigned monotonically).
  std::sort(completions.begin(), completions.end(),
            [](const PendingCompletion& a, const PendingCompletion& b) {
              return a.completion < b.completion;
            });
  for (const PendingCompletion& c : completions) {
    ts->MarkCompleted(c.action);
  }
  return ts;
}

Result<std::unique_ptr<TransactionSystem>> HistoryIo::LoadWithGlobalTypes(
    const std::string& text) {
  return Load(text, [](const std::string& name) {
    return TypeRegistry::Global().Find(name);
  });
}

}  // namespace oodb
