#include "schedule/conflict_index.h"

namespace oodb {

namespace {

/// One string key per unordered class pair, order-normalized (specs are
/// symmetric, so (a, b) and (b, a) share the decision).
std::string PairKey(const std::string& a, const std::string& b) {
  const std::string& lo = a <= b ? a : b;
  const std::string& hi = a <= b ? b : a;
  std::string key;
  key.reserve(lo.size() + hi.size() + 1);
  key += lo;
  key += '\x01';
  key += hi;
  return key;
}

}  // namespace

ConflictIndex::ConflictIndex(const TransactionSystem& ts)
    : ts_(ts),
      objects_(ts.object_count()),
      class_of_action_(ts.action_count(), 0) {}

ConflictIndex::TypeCache& ConflictIndex::TypeCacheFor(
    const ObjectType* type) {
  std::lock_guard<std::mutex> lock(type_caches_mutex_);
  std::unique_ptr<TypeCache>& slot = type_caches_[type];
  if (!slot) slot = std::make_unique<TypeCache>();
  return *slot;
}

void ConflictIndex::BuildForObject(ObjectId o) {
  PerObject& po = objects_[o.value];
  const ObjectRecord& obj = ts_.object(o);
  // Route through SpecFor so an installed override (a synthesized
  // matrix under test) replaces the declared spec uniformly.
  const CommutativitySpec& spec = ts_.SpecFor(obj.type);
  const CommutativityMemo memo = spec.memo();
  po.built = true;
  if (memo == CommutativityMemo::kNone) {
    po.memoized = false;  // state-dependent: every query goes to the spec
    return;
  }
  po.memoized = true;

  // Classify ACT_O. A class is one method name (kMethodPair) or one
  // rendered invocation (kInvocationPair); the representative invocation
  // of each class stands in for all its members.
  std::unordered_map<std::string, uint32_t> class_ids;
  std::vector<std::string> class_keys;
  std::vector<const Invocation*> reps;
  for (ActionId a : obj.actions) {
    const Invocation& inv = ts_.action(a).invocation;
    std::string key = memo == CommutativityMemo::kMethodPair
                          ? inv.method
                          : inv.ToString();
    auto [it, inserted] =
        class_ids.try_emplace(std::move(key), uint32_t(class_ids.size()));
    if (inserted) {
      class_keys.push_back(it->first);
      reps.push_back(&inv);
    }
    class_of_action_[a.value] = it->second;
  }

  const uint32_t c = uint32_t(class_ids.size());
  po.num_classes = c;
  po.class_commutes.assign(size_t(c) * c, 0);

  // Fill the class-pair matrix, reusing decisions made for other
  // objects of this type. Undecided pairs are collected under the lock,
  // decided outside it (spec calls may be arbitrarily slow), and
  // published afterwards; a duplicate decision by a racing builder is
  // benign because specs at this granularity are deterministic.
  struct Pending {
    uint32_t i, j;
    std::string key;
  };
  std::vector<Pending> pending;
  TypeCache& cache = TypeCacheFor(obj.type);
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    for (uint32_t i = 0; i < c; ++i) {
      for (uint32_t j = i; j < c; ++j) {
        std::string key = PairKey(class_keys[i], class_keys[j]);
        auto it = cache.decided.find(key);
        if (it != cache.decided.end()) {
          memo_hits_.fetch_add(1, std::memory_order_relaxed);
          po.class_commutes[size_t(i) * c + j] =
              po.class_commutes[size_t(j) * c + i] = it->second ? 1 : 0;
        } else {
          pending.push_back({i, j, std::move(key)});
        }
      }
    }
  }
  for (const Pending& p : pending) {
    spec_calls_.fetch_add(1, std::memory_order_relaxed);
    const uint8_t commutes = spec.Commutes(*reps[p.i], *reps[p.j]) ? 1 : 0;
    po.class_commutes[size_t(p.i) * c + p.j] =
        po.class_commutes[size_t(p.j) * c + p.i] = commutes;
  }
  if (!pending.empty()) {
    std::lock_guard<std::mutex> lock(cache.mutex);
    for (Pending& p : pending) {
      cache.decided.emplace(std::move(p.key),
                            po.class_commutes[size_t(p.i) * c + p.j] != 0);
    }
  }
}

bool ConflictIndex::Commute(ActionId a, ActionId b) const {
  if (a == b) return true;
  const ActionRecord& ra = ts_.action(a);
  const ActionRecord& rb = ts_.action(b);
  // Same-process rule of Def 9 (see TransactionSystem::Commute).
  if (ra.top_level == rb.top_level && ra.process == rb.process) return true;
  const PerObject& po = objects_[ra.object.value];
  if (!po.memoized) {
    spec_calls_.fetch_add(1, std::memory_order_relaxed);
    return ts_.SpecFor(ts_.object(ra.object).type)
        .Commutes(ra.invocation, rb.invocation);
  }
  return po.class_commutes[size_t(class_of_action_[a.value]) *
                               po.num_classes +
                           class_of_action_[b.value]] != 0;
}

void ConflictIndex::AppendConflictPairs(
    ObjectId o, std::vector<std::pair<ActionId, ActionId>>* out) const {
  const std::vector<ActionId>& acts = ts_.ActionsOn(o);
  const size_t n = acts.size();
  if (n < 2) return;
  const PerObject& po = objects_[o.value];
  if (!po.memoized) {
    const CommutativitySpec& spec = ts_.SpecFor(ts_.object(o).type);
    for (size_t i = 0; i < n; ++i) {
      const ActionRecord& ra = ts_.action(acts[i]);
      for (size_t j = i + 1; j < n; ++j) {
        const ActionRecord& rb = ts_.action(acts[j]);
        if (ra.top_level == rb.top_level && ra.process == rb.process) {
          continue;
        }
        spec_calls_.fetch_add(1, std::memory_order_relaxed);
        if (!spec.Commutes(ra.invocation, rb.invocation)) {
          out->emplace_back(acts[i], acts[j]);
        }
      }
    }
    return;
  }
  // Flat rows keep the quadratic sweep cache-resident; the memo reduces
  // each probe to one byte load.
  struct Row {
    uint32_t cls;
    uint32_t process;
    uint64_t top;
  };
  std::vector<Row> rows(n);
  for (size_t i = 0; i < n; ++i) {
    const ActionRecord& r = ts_.action(acts[i]);
    rows[i] = {class_of_action_[acts[i].value], r.process, r.top_level.value};
  }
  const uint8_t* matrix = po.class_commutes.data();
  const size_t c = po.num_classes;
  for (size_t i = 0; i < n; ++i) {
    const Row& ri = rows[i];
    const uint8_t* row = matrix + size_t(ri.cls) * c;
    for (size_t j = i + 1; j < n; ++j) {
      const Row& rj = rows[j];
      if (ri.top == rj.top && ri.process == rj.process) continue;
      if (!row[rj.cls]) out->emplace_back(acts[i], acts[j]);
    }
  }
}

}  // namespace oodb
