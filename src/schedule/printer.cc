#include "schedule/printer.h"

#include <functional>
#include <unordered_set>
#include <vector>

namespace oodb {

namespace {

void RenderSubtree(const TransactionSystem& ts, ActionId a,
                   const std::string& prefix, bool last, std::string* out) {
  const ActionRecord& rec = ts.action(a);
  *out += prefix;
  *out += last ? "`- " : "+- ";
  *out += ts.object(rec.object).name;
  *out += '.';
  *out += rec.invocation.ToString();
  if (rec.is_virtual) *out += " (virtual)";
  if (ts.IsPrimitive(a) && rec.timestamp != 0) {
    *out += " @" + std::to_string(rec.timestamp);
  }
  *out += "\n";
  std::string child_prefix = prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < rec.children.size(); ++i) {
    RenderSubtree(ts, rec.children[i], child_prefix,
                  i + 1 == rec.children.size(), out);
  }
}

}  // namespace

std::string SchedulePrinter::TransactionTree(const TransactionSystem& ts,
                                             ActionId root) {
  const ActionRecord& rec = ts.action(root);
  std::string out = rec.label + "\n";
  for (size_t i = 0; i < rec.children.size(); ++i) {
    RenderSubtree(ts, rec.children[i], "", i + 1 == rec.children.size(),
                  &out);
  }
  return out;
}

std::string SchedulePrinter::AllTrees(const TransactionSystem& ts) {
  std::string out;
  for (ActionId t : ts.TopLevel()) {
    out += TransactionTree(ts, t);
  }
  return out;
}

std::string SchedulePrinter::DependencyTable(const TransactionSystem& ts,
                                             const DependencyEngine& engine) {
  auto fmt = [&ts](Digraph::NodeId n) {
    const ActionRecord& rec = ts.action(ActionId(n));
    if (!rec.parent.valid()) return rec.label;  // top-level transaction
    return ts.object(rec.object).name + "." + rec.invocation.ToString() +
           "[" + rec.label + "]";
  };
  std::string out;
  out += "Object                   | schedule dependencies\n";
  out += "-------------------------+----------------------\n";
  for (const ObjectSchedule& sch : engine.schedules()) {
    if (sch.object.IsSystem()) continue;
    std::string deps = sch.action_deps.ToString(fmt);
    std::string tdeps = sch.txn_deps.ToString(fmt);
    std::string name = ts.object(sch.object).name;
    name.resize(24, ' ');
    out += name + " | actions: " + (deps.empty() ? "-" : deps) + "\n";
    out += "                         |    txns: " + (tdeps.empty() ? "-" : tdeps) +
           "\n";
  }
  // The system object's action dependencies are the inherited order of
  // top-level transactions.
  std::string top = engine.TopLevelOrder().ToString(fmt);
  out += "(top-level)              | " + (top.empty() ? std::string("-") : top) + "\n";
  return out;
}

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string DotNode(const TransactionSystem& ts, ActionId a) {
  std::string out = "a";
  out += std::to_string(a.value);
  out += " [label=\"";
  out += DotEscape(ts.object(ts.action(a).object).name + "." +
                   ts.action(a).invocation.ToString());
  out += "\"];\n";
  return out;
}

void EmitEdges(const TransactionSystem& ts, const Digraph& graph,
               const char* style, std::string* out,
               std::unordered_set<uint64_t>* declared) {
  for (Digraph::NodeId n : graph.Nodes()) {
    for (Digraph::NodeId s : graph.Successors(n)) {
      if (declared->insert(n).second) *out += DotNode(ts, ActionId(n));
      if (declared->insert(s).second) *out += DotNode(ts, ActionId(s));
      *out += "a";
      *out += std::to_string(n);
      *out += " -> a";
      *out += std::to_string(s);
      *out += " [style=";
      *out += style;
      *out += "];\n";
    }
  }
}

}  // namespace

std::string SchedulePrinter::CallForestDot(const TransactionSystem& ts) {
  std::string out = "digraph calls {\nrankdir=TB;\nnode [shape=box];\n";
  for (ActionId top : ts.TopLevel()) {
    out += "subgraph cluster_" + std::to_string(top.value) + " {\n";
    out += "label=\"" + DotEscape(ts.action(top).label) + "\";\n";
    // Walk the subtree iteratively.
    std::vector<ActionId> stack{top};
    while (!stack.empty()) {
      ActionId a = stack.back();
      stack.pop_back();
      if (a != top) out += DotNode(ts, a);
      for (ActionId c : ts.action(a).children) {
        if (a != top) {
          out += "a";
          out += std::to_string(a.value);
          out += " -> a";
          out += std::to_string(c.value);
          out += ";\n";
        }
        stack.push_back(c);
      }
    }
    out += "}\n";
  }
  out += "}\n";
  return out;
}

std::string SchedulePrinter::DependencyDot(const TransactionSystem& ts,
                                           const DependencyEngine& engine) {
  std::string out = "digraph deps {\nrankdir=LR;\nnode [shape=box];\n";
  std::unordered_set<uint64_t> declared;
  for (const ObjectSchedule& sch : engine.schedules()) {
    EmitEdges(ts, sch.action_deps, "solid", &out, &declared);
    EmitEdges(ts, sch.txn_deps, "dashed", &out, &declared);
    EmitEdges(ts, sch.added_deps, "dotted", &out, &declared);
  }
  out += "}\n";
  return out;
}

}  // namespace oodb
