// ConflictIndex: memoized Def 9 queries and conflict-pair construction
// for the dependency analysis.
//
// The analysis asks "do a and a' commute?" for every same-object action
// pair — quadratic per object — but commutativity decisions are
// method-pair-structured (Malta & Martinez, "Limits of Commutativity on
// Abstract Data Types"): for most specifications the answer depends only
// on the two method names, or on the names plus parameter values. The
// index assigns every action on an object an *invocation class* at the
// granularity its type's spec declares (CommutativityMemo), decides
// commutativity once per class pair, and serves all further queries from
// the memo. Classes recur across objects of one type, so decided pairs
// are shared through a per-type cache.
//
// Specs that declare CommutativityMemo::kNone (state-dependent
// escrow-style specifications, which "include ... the status of accessed
// objects in the commutativity definition") bypass the memo entirely:
// every query reaches the spec, so the index is exact by construction.
//
// Thread-safety: BuildForObject may run concurrently for *distinct*
// objects (the per-type cache is internally locked); queries are safe
// once the objects they touch are built.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/transaction_system.h"

namespace oodb {

class ConflictIndex {
 public:
  /// `ts` must outlive the index and be quiescent while it is in use.
  explicit ConflictIndex(const TransactionSystem& ts);

  /// Classifies the actions on `o` and decides the commutativity of all
  /// class pairs. Safe to call concurrently for distinct objects.
  void BuildForObject(ObjectId o);

  /// Def 9 with the same-process rule — semantically identical to
  /// TransactionSystem::Commute, served from the memo when the object's
  /// spec allows. Both actions must be on the same, built object.
  bool Commute(ActionId a, ActionId b) const;

  /// Appends the conflicting unordered pairs of ACT_O to `out`, in the
  /// same (i < j) enumeration order as the naive all-pairs loop.
  /// BuildForObject(o) must have run.
  void AppendConflictPairs(
      ObjectId o, std::vector<std::pair<ActionId, ActionId>>* out) const;

  /// Observability: how much work the memo absorbed.
  size_t spec_calls() const {
    return spec_calls_.load(std::memory_order_relaxed);
  }
  size_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-object classification. `memoized` is false for kNone specs;
  /// the class matrix then stays empty and queries go to the spec.
  struct PerObject {
    bool built = false;
    bool memoized = false;
    uint32_t num_classes = 0;
    /// Commutativity per class pair, row-major num_classes^2.
    std::vector<uint8_t> class_commutes;
  };

  const TransactionSystem& ts_;
  std::vector<PerObject> objects_;          // index = ObjectId.value
  std::vector<uint32_t> class_of_action_;   // index = ActionId.value

  /// Decided class pairs shared across objects of one type:
  /// (class key, class key) normalized lexicographically -> commutes.
  struct TypeCache {
    std::mutex mutex;
    std::unordered_map<std::string, bool> decided;
  };
  TypeCache& TypeCacheFor(const ObjectType* type);

  std::mutex type_caches_mutex_;
  std::unordered_map<const ObjectType*, std::unique_ptr<TypeCache>>
      type_caches_;

  mutable std::atomic<size_t> spec_calls_{0};
  mutable std::atomic<size_t> memo_hits_{0};
};

}  // namespace oodb
