// ConventionalChecker: the baseline the paper argues against.
//
// Conventional conflict-order-preserving serializability ignores the
// semantics of higher levels: it looks only at the primitive (zero-layer,
// i.e. page) operations, treats every non-read/read pair on the same
// object as a conflict, and requires the conflict graph over *top-level*
// transactions to be acyclic. Under this definition the two leaf inserts
// of Example 1 conflict (they touch Page4712), although they commute at
// the leaf level — the over-restriction oo-serializability removes.

#pragma once

#include <vector>

#include "model/transaction_system.h"
#include "util/digraph.h"

namespace oodb {

/// Result of the conventional (flat, conflict-based) analysis.
struct ConventionalResult {
  /// Conflict graph over top-level transactions (nodes: ActionId values
  /// of the top-level actions).
  Digraph conflict_graph;
  /// Number of primitive conflicting pairs across different top-level
  /// transactions.
  size_t conflicting_pairs = 0;
  bool serializable = false;
};

/// Analyzes the primitive layer of a recorded execution.
class ConventionalChecker {
 public:
  /// Computes the classical conflict graph: for every pair of primitive
  /// actions on the same object that do not commute *by the object
  /// type's specification alone* (no higher-level semantics), ordered by
  /// execution timestamps, an edge between their top-level transactions
  /// is added. Virtual duplicates (Def 5 bookkeeping) are skipped so the
  /// analysis sees exactly the physical history.
  ///
  /// `num_threads` mirrors ValidationOptions::num_threads: 1 = the
  /// serial reference sweep; any other value (0 = hardware concurrency)
  /// memoizes spec decisions per invocation class and fans the
  /// per-object sweeps out over a pool. The resulting graph and counts
  /// are identical.
  static ConventionalResult Check(const TransactionSystem& ts,
                                  size_t num_threads = 1);
};

}  // namespace oodb
