#include "schedule/dependency_engine.h"

#include <algorithm>

#include "model/extension.h"

namespace oodb {

Status DependencyEngine::Compute() {
  if (SystemExtender::NeedsExtension(ts_)) {
    return Status::InvalidArgument(
        "transaction system must be extended (Def 5) before dependency "
        "computation; run SystemExtender::Extend first");
  }
  schedules_.clear();
  schedules_.resize(ts_.object_count());
  for (size_t i = 0; i < schedules_.size(); ++i) {
    schedules_[i].object = ObjectId(i);
  }
  stats_ = DependencyStats();

  ComputeConflictPairs();
  SeedAxiom1();
  while (PropagateOnce()) {
    ++stats_.fixpoint_rounds;
  }

  // Count conflicting cross-transaction pairs that never acquired a
  // direction (both actions executed, but their subtrees share no
  // object).
  for (const ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      if (ts_.action(a).top_level == ts_.action(b).top_level) continue;
      bool a_ran = ts_.IsPrimitive(a) ? ts_.action(a).timestamp != 0
                                      : !ts_.action(a).children.empty();
      bool b_ran = ts_.IsPrimitive(b) ? ts_.action(b).timestamp != 0
                                      : !ts_.action(b).children.empty();
      if (!a_ran || !b_ran) continue;
      if (!sch.action_deps.HasEdge(a.value, b.value) &&
          !sch.action_deps.HasEdge(b.value, a.value)) {
        ++stats_.unordered_conflicts;
      }
    }
  }

  // Count inheritance that stopped because callers commute: dependent,
  // conflicting pairs whose callers are distinct and commute at the
  // callers' object. This is the paper's "the dependency can be
  // neglected at the higher level" count.
  for (const ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      bool dep = sch.action_deps.HasEdge(a.value, b.value) ||
                 sch.action_deps.HasEdge(b.value, a.value);
      if (!dep) continue;
      ActionId t = ts_.action(a).parent;
      ActionId u = ts_.action(b).parent;
      if (!t.valid() || !u.valid() || t == u) continue;
      if (ts_.action(t).object == ts_.action(u).object &&
          ts_.Commute(t, u)) {
        ++stats_.stopped_inheritance;
      }
    }
  }
  computed_ = true;
  return Status::OK();
}

const ObjectSchedule& DependencyEngine::ForObject(ObjectId o) const {
  return schedules_[o.value];
}

const Digraph& DependencyEngine::TopLevelOrder() const {
  return schedules_[ObjectId::kSystem].action_deps;
}

void DependencyEngine::ComputeConflictPairs() {
  for (ObjectSchedule& sch : schedules_) {
    const auto& acts = ts_.ActionsOn(sch.object);
    for (size_t i = 0; i < acts.size(); ++i) {
      for (size_t j = i + 1; j < acts.size(); ++j) {
        if (!ts_.Commute(acts[i], acts[j])) {
          sch.conflict_pairs.emplace_back(acts[i], acts[j]);
        }
      }
    }
  }
}

void DependencyEngine::SeedAxiom1() {
  // Axiom 1: conflicting primitive actions are totally ordered — here by
  // their execution timestamps. Pairs where a timestamp is missing (an
  // action never executed) contribute nothing.
  for (ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      if (!ts_.IsPrimitive(a) || !ts_.IsPrimitive(b)) continue;
      uint64_t ta = ts_.action(a).timestamp;
      uint64_t tb = ts_.action(b).timestamp;
      if (ta == 0 || tb == 0 || ta == tb) continue;
      if (ta < tb) {
        sch.action_deps.AddEdge(a.value, b.value);
      } else {
        sch.action_deps.AddEdge(b.value, a.value);
      }
      ++stats_.primitive_conflicts;
    }
  }
}

bool DependencyEngine::PropagateOnce() {
  bool changed = false;

  // Def 10: conflicting, dependent action pairs inherit their direction
  // to the calling actions as a transaction dependency at this object.
  for (ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      ActionId t = ts_.action(a).parent;
      ActionId u = ts_.action(b).parent;
      if (!t.valid() || !u.valid() || t == u) continue;
      if (sch.action_deps.HasEdge(a.value, b.value) &&
          !sch.txn_deps.HasEdge(t.value, u.value)) {
        sch.txn_deps.AddEdge(t.value, u.value);
        ++stats_.inherited_txn_deps;
        changed = true;
      }
      if (sch.action_deps.HasEdge(b.value, a.value) &&
          !sch.txn_deps.HasEdge(u.value, t.value)) {
        sch.txn_deps.AddEdge(u.value, t.value);
        ++stats_.inherited_txn_deps;
        changed = true;
      }
    }
  }

  // Def 11 / Def 15: a transaction dependency (t, u) recorded at any
  // object becomes an action dependency at the object where both t and u
  // are actions, or an added action dependency at each endpoint's object
  // when they differ.
  for (ObjectSchedule& sch : schedules_) {
    for (Digraph::NodeId tn : sch.txn_deps.Nodes()) {
      for (Digraph::NodeId un : sch.txn_deps.Successors(tn)) {
        ObjectId ot = ts_.action(ActionId(tn)).object;
        ObjectId ou = ts_.action(ActionId(un)).object;
        if (ot == ou) {
          ObjectSchedule& target = schedules_[ot.value];
          if (!target.action_deps.HasEdge(tn, un)) {
            target.action_deps.AddEdge(tn, un);
            changed = true;
          }
        } else {
          ObjectSchedule& st = schedules_[ot.value];
          ObjectSchedule& su = schedules_[ou.value];
          if (!st.added_deps.HasEdge(tn, un)) {
            st.added_deps.AddEdge(tn, un);
            ++stats_.added_deps;
            changed = true;
          }
          if (!su.added_deps.HasEdge(tn, un)) {
            su.added_deps.AddEdge(tn, un);
            ++stats_.added_deps;
            changed = true;
          }
        }
      }
    }
  }
  return changed;
}

}  // namespace oodb
