#include "schedule/dependency_engine.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "model/extension.h"
#include "obs/metrics.h"
#include "schedule/conflict_index.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace oodb {

namespace {

/// Runs fn(i) for i in [0, n): across the pool when one is given,
/// inline otherwise.
void RunPerObject(ThreadPool* pool, size_t n,
                  const std::function<void(size_t)>& fn) {
  if (pool) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

/// Observes the elapsed time of one engine stage and restarts the
/// clock. No-op without a registry.
void ObserveStage(MetricsRegistry* metrics, Stopwatch* sw,
                  const char* name) {
  if (metrics != nullptr) {
    metrics->GetHistogram(name)->Observe(sw->ElapsedNanos());
  }
  sw->Restart();
}

}  // namespace

void DependencyStats::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("dep.primitive_conflicts",
                     static_cast<int64_t>(primitive_conflicts));
  registry->SetGauge("dep.inherited_txn_deps",
                     static_cast<int64_t>(inherited_txn_deps));
  registry->SetGauge("dep.stopped_inheritance",
                     static_cast<int64_t>(stopped_inheritance));
  registry->SetGauge("dep.added_deps", static_cast<int64_t>(added_deps));
  registry->SetGauge("dep.fixpoint_rounds",
                     static_cast<int64_t>(fixpoint_rounds));
  registry->SetGauge("dep.unordered_conflicts",
                     static_cast<int64_t>(unordered_conflicts));
}

Status DependencyEngine::Compute() {
  if (SystemExtender::NeedsExtension(ts_)) {
    return Status::InvalidArgument(
        "transaction system must be extended (Def 5) before dependency "
        "computation; run SystemExtender::Extend first");
  }
  schedules_.clear();
  schedules_.resize(ts_.object_count());
  for (size_t i = 0; i < schedules_.size(); ++i) {
    schedules_[i].object = ObjectId(i);
  }
  stats_ = DependencyStats();
  provenance_.reset();
  if (options_.record_provenance) {
    provenance_ = std::make_unique<ProvenanceStore>(ts_.object_count(),
                                                    ts_.action_count());
  }

  if (options_.mode == DependencyOptions::Mode::kIndexed) {
    size_t threads = options_.num_threads;
    if (threads == 0) {
      threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    ComputeIndexed(pool.get());
  } else {
    Stopwatch sw;
    ComputeConflictPairs();
    ObserveStage(options_.metrics, &sw, "dep.stage.conflict_pairs_ns");
    SeedAxiom1();
    ObserveStage(options_.metrics, &sw, "dep.stage.seed_ns");
    while (PropagateOnce()) {
      ++stats_.fixpoint_rounds;
    }
    ObserveStage(options_.metrics, &sw, "dep.stage.fixpoint_ns");
    FinalizeDerivedStats(
        [this](ActionId a, ActionId b) { return ts_.Commute(a, b); },
        nullptr);
    ObserveStage(options_.metrics, &sw, "dep.stage.derived_stats_ns");
  }
  computed_ = true;
  stats_.PublishTo(options_.metrics);
  return Status::OK();
}

const ObjectSchedule& DependencyEngine::ForObject(ObjectId o) const {
  return schedules_[o.value];
}

const Digraph& DependencyEngine::TopLevelOrder() const {
  return schedules_[ObjectId::kSystem].action_deps;
}

void DependencyEngine::FinalizeDerivedStats(
    const std::function<bool(ActionId, ActionId)>& commute,
    ThreadPool* pool) {
  const size_t n = schedules_.size();
  std::vector<size_t> unordered(n, 0);
  std::vector<size_t> stopped(n, 0);
  RunPerObject(pool, n, [&](size_t i) {
    const ObjectSchedule& sch = schedules_[i];
    for (size_t s = 0; s < sch.conflict_pairs.size(); ++s) {
      const auto& [a, b] = sch.conflict_pairs[s];
      bool dep = sch.action_deps.HasEdge(a.value, b.value) ||
                 sch.action_deps.HasEdge(b.value, a.value);
      if (dep) {
        // Inheritance that stopped because callers commute: dependent,
        // conflicting pairs whose callers are distinct and commute at
        // the callers' object. This is the paper's "the dependency can
        // be neglected at the higher level" count.
        ActionId t = ts_.action(a).parent;
        ActionId u = ts_.action(b).parent;
        if (!t.valid() || !u.valid() || t == u) continue;
        if (ts_.action(t).object == ts_.action(u).object && commute(t, u)) {
          ++stopped[i];
        }
        continue;
      }
      // Conflicting cross-transaction pairs that never acquired a
      // direction (both actions executed, but their subtrees share no
      // object).
      if (ts_.action(a).top_level == ts_.action(b).top_level) continue;
      bool a_ran = ts_.IsPrimitive(a) ? ts_.action(a).timestamp != 0
                                      : !ts_.action(a).children.empty();
      bool b_ran = ts_.IsPrimitive(b) ? ts_.action(b).timestamp != 0
                                      : !ts_.action(b).children.empty();
      if (a_ran && b_ran) ++unordered[i];
    }
  });
  for (size_t i = 0; i < n; ++i) {
    stats_.unordered_conflicts += unordered[i];
    stats_.stopped_inheritance += stopped[i];
  }
}

// --- reference engine -------------------------------------------------

void DependencyEngine::ComputeConflictPairs() {
  for (ObjectSchedule& sch : schedules_) {
    const auto& acts = ts_.ActionsOn(sch.object);
    for (size_t i = 0; i < acts.size(); ++i) {
      for (size_t j = i + 1; j < acts.size(); ++j) {
        if (!ts_.Commute(acts[i], acts[j])) {
          sch.conflict_pairs.emplace_back(acts[i], acts[j]);
        }
      }
    }
  }
}

void DependencyEngine::SeedAxiom1() {
  // Axiom 1: conflicting primitive actions are totally ordered — here by
  // their execution timestamps. Pairs where a timestamp is missing (an
  // action never executed) contribute nothing.
  for (ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      if (!ts_.IsPrimitive(a) || !ts_.IsPrimitive(b)) continue;
      uint64_t ta = ts_.action(a).timestamp;
      uint64_t tb = ts_.action(b).timestamp;
      if (ta == 0 || tb == 0 || ta == tb) continue;
      ActionId first = ta < tb ? a : b;
      ActionId second = ta < tb ? b : a;
      sch.action_deps.AddEdge(first.value, second.value);
      if (provenance_) {
        provenance_->Record(
            DepRelation::kAction, sch.object, first, second,
            {DepRule::kAxiom1, sch.object, first, second});
      }
      ++stats_.primitive_conflicts;
    }
  }
}

bool DependencyEngine::PropagateOnce() {
  bool changed = false;

  // Def 10: conflicting, dependent action pairs inherit their direction
  // to the calling actions as a transaction dependency at this object.
  for (ObjectSchedule& sch : schedules_) {
    for (const auto& [a, b] : sch.conflict_pairs) {
      ActionId t = ts_.action(a).parent;
      ActionId u = ts_.action(b).parent;
      if (!t.valid() || !u.valid() || t == u) continue;
      if (sch.action_deps.HasEdge(a.value, b.value) &&
          !sch.txn_deps.HasEdge(t.value, u.value)) {
        sch.txn_deps.AddEdge(t.value, u.value);
        if (provenance_) {
          provenance_->Record(DepRelation::kTxn, sch.object, t, u,
                              {DepRule::kDef10, sch.object, a, b});
        }
        ++stats_.inherited_txn_deps;
        changed = true;
      }
      if (sch.action_deps.HasEdge(b.value, a.value) &&
          !sch.txn_deps.HasEdge(u.value, t.value)) {
        sch.txn_deps.AddEdge(u.value, t.value);
        if (provenance_) {
          provenance_->Record(DepRelation::kTxn, sch.object, u, t,
                              {DepRule::kDef10, sch.object, b, a});
        }
        ++stats_.inherited_txn_deps;
        changed = true;
      }
    }
  }

  // Def 11 / Def 15: a transaction dependency (t, u) recorded at any
  // object becomes an action dependency at the object where both t and u
  // are actions, or an added action dependency at each endpoint's object
  // when they differ.
  for (ObjectSchedule& sch : schedules_) {
    for (Digraph::NodeId tn : sch.txn_deps.Nodes()) {
      for (Digraph::NodeId un : sch.txn_deps.Successors(tn)) {
        ObjectId ot = ts_.action(ActionId(tn)).object;
        ObjectId ou = ts_.action(ActionId(un)).object;
        if (ot == ou) {
          ObjectSchedule& target = schedules_[ot.value];
          if (!target.action_deps.HasEdge(tn, un)) {
            target.action_deps.AddEdge(tn, un);
            if (provenance_) {
              provenance_->Record(
                  DepRelation::kAction, ot, ActionId(tn), ActionId(un),
                  {DepRule::kDef11, sch.object, ActionId(tn),
                   ActionId(un)});
            }
            changed = true;
          }
        } else {
          ObjectSchedule& st = schedules_[ot.value];
          ObjectSchedule& su = schedules_[ou.value];
          if (!st.added_deps.HasEdge(tn, un)) {
            st.added_deps.AddEdge(tn, un);
            if (provenance_) {
              provenance_->Record(
                  DepRelation::kAdded, ot, ActionId(tn), ActionId(un),
                  {DepRule::kDef15, sch.object, ActionId(tn),
                   ActionId(un)});
            }
            ++stats_.added_deps;
            changed = true;
          }
          if (!su.added_deps.HasEdge(tn, un)) {
            su.added_deps.AddEdge(tn, un);
            if (provenance_) {
              provenance_->Record(
                  DepRelation::kAdded, ou, ActionId(tn), ActionId(un),
                  {DepRule::kDef15, sch.object, ActionId(tn),
                   ActionId(un)});
            }
            ++stats_.added_deps;
            changed = true;
          }
        }
      }
    }
  }
  return changed;
}

// --- indexed engine ---------------------------------------------------

void DependencyEngine::ComputeIndexed(ThreadPool* pool) {
  const size_t num_objects = schedules_.size();
  const size_t num_actions = ts_.action_count();
  ConflictIndex index(ts_);
  MetricsRegistry* metrics = options_.metrics;
  // Recording is race-free without locks: every parallel stage records
  // only into its own object's shard; the cross-object Def 11/15
  // placements happen in the serial merge phase.
  ProvenanceStore* prov = provenance_.get();
  Stopwatch sw;

  // Flat per-action arrays. The pair sweeps below touch actions in
  // data-dependent order; reading a handful of u64 arrays beats chasing
  // the full ActionRecords (which drag invocation strings and child
  // vectors into cache) by a wide margin.
  std::vector<uint64_t> parent_of(num_actions), prim_ts(num_actions);
  std::vector<uint64_t> object_of(num_actions), top_of(num_actions);
  std::vector<uint8_t> ran(num_actions), has_child(num_actions);
  for (size_t a = 0; a < num_actions; ++a) {
    const ActionRecord& rec = ts_.action(ActionId(a));
    bool prim = ts_.IsPrimitive(ActionId(a));
    parent_of[a] = rec.parent.value;
    prim_ts[a] = prim ? rec.timestamp : 0;
    object_of[a] = rec.object.value;
    top_of[a] = rec.top_level.value;
    ran[a] = prim ? rec.timestamp != 0 : !rec.children.empty();
    has_child[a] = !rec.children.empty();
  }

  // Stage 1: per-object invocation classes + conflict pairs. Objects
  // are independent here.
  RunPerObject(pool, num_objects, [&](size_t i) {
    ObjectId o(i);
    index.BuildForObject(o);
    index.AppendConflictPairs(o, &schedules_[i].conflict_pairs);
  });
  ObserveStage(metrics, &sw, "dep.stage.conflict_pairs_ns");

  // Stage 2: fused Axiom 1 seeding + first Def 10 pass, per object in
  // parallel. A pair of executed primitives gets its timestamp
  // direction as an action dependency, and — being a conflicting,
  // dependent pair — immediately inherits that direction to the
  // callers as a transaction dependency. This is exactly the reference
  // engine's round-1 Def 10 output, derived without re-scanning.
  //
  // Bookkeeping for later stages: `directed[i][s]` flags pair slot s of
  // object i once it carries a dependency in either direction (the
  // post-hoc statistics read these flags instead of probing the graph),
  // and `undirected_slot` finds a pair's slot when a Def 11 placement
  // directs it later. Pair keys pack (min, max) as min * N + max with
  // N = action_count, so the product stays below 2^64 for any history
  // this engine can hold in memory.
  const uint64_t kN = num_actions;
  auto pair_key = [kN](uint64_t a, uint64_t b) {
    return a < b ? a * kN + b : b * kN + a;
  };
  struct Edge {
    uint64_t from, to;
  };
  std::vector<std::vector<uint8_t>> directed(num_objects);
  std::vector<FlatMap64<uint32_t>> undirected_slot(num_objects);
  std::vector<std::vector<Edge>> new_txn(num_objects);
  std::vector<size_t> prim(num_objects, 0);
  // Out-degree of every action in the seed relation, for pre-sized
  // successor sets. Each action lives on exactly one object, so the
  // per-object tasks write disjoint slots.
  std::vector<uint32_t> seed_degree(num_actions, 0);
  RunPerObject(pool, num_objects, [&](size_t i) {
    ObjectSchedule& sch = schedules_[i];
    const auto& pairs = sch.conflict_pairs;
    directed[i].assign(pairs.size(), 0);
    // Counting pre-pass (flat-array arithmetic only): the seed
    // out-degrees, so every successor set below is allocated once at
    // final size instead of rehashing its way up.
    for (const auto& [pa, pb] : pairs) {
      uint64_t ta = prim_ts[pa.value], tb = prim_ts[pb.value];
      if (ta == 0 || tb == 0 || ta == tb) continue;
      ++seed_degree[ta < tb ? pa.value : pb.value];
    }
    const auto& acts = ts_.ActionsOn(sch.object);
    sch.action_deps.Reserve(acts.size());
    for (ActionId act : acts) {
      if (seed_degree[act.value] > 0) {
        sch.action_deps.ReserveSuccessors(act.value,
                                          seed_degree[act.value]);
      }
    }
    // Small direct-mapped filter in front of the txn-dep insert: caller
    // pairs repeat heavily (every conflicting primitive pair below the
    // same two callers maps to one transaction dependency), but not
    // always consecutively.
    constexpr size_t kCacheSize = 256;  // power of two
    Edge seen_txn[kCacheSize];
    for (Edge& e : seen_txn) e = {UINT64_MAX, UINT64_MAX};
    for (size_t s = 0; s < pairs.size(); ++s) {
      uint64_t a = pairs[s].first.value, b = pairs[s].second.value;
      uint64_t ta = prim_ts[a], tb = prim_ts[b];
      if (ta == 0 || tb == 0 || ta == tb) {
        // Only pairs of *calling* actions can acquire a direction later
        // (Def 11 places transaction dependencies, whose endpoints are
        // parents); childless actions never appear as placement
        // endpoints, so their pairs skip the slot map.
        if (has_child[a] && has_child[b]) {
          undirected_slot[i][pair_key(a, b)] = uint32_t(s);
        }
        continue;
      }
      if (ta > tb) std::swap(a, b);
      sch.action_deps.AddEdge(a, b);
      if (prov) {
        prov->Record(DepRelation::kAction, sch.object, ActionId(a),
                     ActionId(b),
                     {DepRule::kAxiom1, sch.object, ActionId(a),
                      ActionId(b)});
      }
      directed[i][s] = 1;
      ++prim[i];
      uint64_t t = parent_of[a], u = parent_of[b];
      if (t == ActionId::kInvalid || u == ActionId::kInvalid || t == u) {
        continue;
      }
      Edge& slot =
          seen_txn[(t * 0x9E3779B97F4A7C15ull ^ u) & (kCacheSize - 1)];
      if (slot.from == t && slot.to == u) continue;
      slot = {t, u};
      if (sch.txn_deps.AddEdge(t, u)) {
        new_txn[i].push_back({t, u});
        if (prov) {
          prov->Record(DepRelation::kTxn, sch.object, ActionId(t),
                       ActionId(u),
                       {DepRule::kDef10, sch.object, ActionId(a),
                        ActionId(b)});
        }
      }
    }
  });
  for (size_t i = 0; i < num_objects; ++i) {
    stats_.primitive_conflicts += prim[i];
  }
  ObserveStage(metrics, &sw, "dep.stage.seed_ns");
  Counter* m_waves =
      metrics ? metrics->GetCounter("dep.worklist.waves") : nullptr;
  Counter* m_frontier =
      metrics ? metrics->GetCounter("dep.worklist.frontier_edges")
              : nullptr;

  // Delta-driven fixpoint. Each wave places the transaction
  // dependencies recorded by the previous Def 10 stage (Def 11/15) and
  // reexamines only the action-dep edges that placement added — their
  // conflict membership is answered by the memoized index, since an
  // edge between distinct actions of one object is a conflict pair iff
  // the actions do not commute. Waves are the reference engine's
  // rounds: the wave-k frontier is exactly what a full rescan would
  // newly derive in pass k, so the statistics — including
  // fixpoint_rounds — come out identical.
  std::vector<std::vector<Edge>> frontier(num_objects);
  for (;;) {
    // Def 11 / Def 15 merge phase: placements target arbitrary
    // objects, so they funnel through this serial stage. The volume
    // here is transaction dependencies, orders of magnitude below the
    // conflict-pair volume the parallel stages absorb.
    bool changed = false;
    size_t frontier_total = 0;
    for (size_t i = 0; i < num_objects; ++i) {
      if (new_txn[i].empty()) continue;
      changed = true;
      stats_.inherited_txn_deps += new_txn[i].size();
      for (const Edge& e : new_txn[i]) {
        ObjectId ot(object_of[e.from]);
        ObjectId ou(object_of[e.to]);
        if (ot == ou) {
          ObjectSchedule& target = schedules_[ot.value];
          if (target.action_deps.AddEdge(e.from, e.to)) {
            if (prov) {
              prov->Record(DepRelation::kAction, ot, ActionId(e.from),
                           ActionId(e.to),
                           {DepRule::kDef11, ObjectId(i),
                            ActionId(e.from), ActionId(e.to)});
            }
            frontier[ot.value].push_back(e);
            ++frontier_total;
            if (const uint32_t* slot = undirected_slot[ot.value].find(
                    pair_key(e.from, e.to))) {
              directed[ot.value][*slot] = 1;
            }
          }
        } else {
          if (schedules_[ot.value].added_deps.AddEdge(e.from, e.to)) {
            if (prov) {
              prov->Record(DepRelation::kAdded, ot, ActionId(e.from),
                           ActionId(e.to),
                           {DepRule::kDef15, ObjectId(i),
                            ActionId(e.from), ActionId(e.to)});
            }
            ++stats_.added_deps;
          }
          if (schedules_[ou.value].added_deps.AddEdge(e.from, e.to)) {
            if (prov) {
              prov->Record(DepRelation::kAdded, ou, ActionId(e.from),
                           ActionId(e.to),
                           {DepRule::kDef15, ObjectId(i),
                            ActionId(e.from), ActionId(e.to)});
            }
            ++stats_.added_deps;
          }
        }
      }
      new_txn[i].clear();
    }
    if (changed) ++stats_.fixpoint_rounds;
    if (changed && m_waves) m_waves->Increment();
    if (m_frontier && frontier_total > 0) {
      m_frontier->Increment(frontier_total);
    }
    if (frontier_total == 0) break;

    // Def 10 stage: per object, in parallel (each task writes only its
    // own object's txn_deps).
    RunPerObject(pool, num_objects, [&](size_t i) {
      if (frontier[i].empty()) return;
      ObjectSchedule& sch = schedules_[i];
      for (const Edge& e : frontier[i]) {
        if (index.Commute(ActionId(e.from), ActionId(e.to))) continue;
        uint64_t t = parent_of[e.from], u = parent_of[e.to];
        if (t == ActionId::kInvalid || u == ActionId::kInvalid || t == u) {
          continue;
        }
        if (sch.txn_deps.AddEdge(t, u)) {
          new_txn[i].push_back({t, u});
          if (prov) {
            prov->Record(DepRelation::kTxn, sch.object, ActionId(t),
                         ActionId(u),
                         {DepRule::kDef10, sch.object, ActionId(e.from),
                          ActionId(e.to)});
          }
        }
      }
      frontier[i].clear();
    });
  }
  ObserveStage(metrics, &sw, "dep.stage.fixpoint_ns");

  // Post-fixpoint derived counters — the indexed twin of
  // FinalizeDerivedStats. The directed flags replace the per-pair
  // HasEdge probes, the flat arrays replace the ActionRecord reads, and
  // caller commutativity comes from the memo.
  std::vector<size_t> unordered(num_objects, 0);
  std::vector<size_t> stopped(num_objects, 0);
  RunPerObject(pool, num_objects, [&](size_t i) {
    const ObjectSchedule& sch = schedules_[i];
    const std::vector<uint8_t>& flags = directed[i];
    for (size_t s = 0; s < sch.conflict_pairs.size(); ++s) {
      const uint64_t a = sch.conflict_pairs[s].first.value;
      const uint64_t b = sch.conflict_pairs[s].second.value;
      if (flags[s]) {
        // Inheritance that stopped because callers commute (the paper's
        // "the dependency can be neglected at the higher level").
        uint64_t t = parent_of[a], u = parent_of[b];
        if (t == ActionId::kInvalid || u == ActionId::kInvalid || t == u) {
          continue;
        }
        if (object_of[t] == object_of[u] &&
            index.Commute(ActionId(t), ActionId(u))) {
          ++stopped[i];
        }
        continue;
      }
      // Conflicting cross-transaction pairs that never acquired a
      // direction (both actions executed, but their subtrees share no
      // object).
      if (top_of[a] == top_of[b]) continue;
      if (ran[a] && ran[b]) ++unordered[i];
    }
  });
  for (size_t i = 0; i < num_objects; ++i) {
    stats_.unordered_conflicts += unordered[i];
    stats_.stopped_inheritance += stopped[i];
  }
  ObserveStage(metrics, &sw, "dep.stage.derived_stats_ns");
  if (metrics != nullptr) {
    // Memo efficiency of the conflict index: hits were served from the
    // class matrix, misses reached the commutativity spec.
    metrics->GetCounter("dep.memo.hits")->Increment(index.memo_hits());
    metrics->GetCounter("dep.memo.misses")->Increment(index.spec_calls());
  }
}

}  // namespace oodb
