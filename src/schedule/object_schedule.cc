#include "schedule/object_schedule.h"

#include "model/transaction_system.h"

namespace oodb {

std::string ObjectSchedule::ToString(const TransactionSystem& ts) const {
  auto fmt = [&ts](Digraph::NodeId n) {
    return ts.Describe(ActionId(n));
  };
  std::string out = ts.object(object).name + ":\n";
  out += "  action deps: " + action_deps.ToString(fmt) + "\n";
  out += "  txn deps:    " + txn_deps.ToString(fmt) + "\n";
  if (added_deps.EdgeCount() > 0) {
    out += "  added deps:  " + added_deps.ToString(fmt) + "\n";
  }
  return out;
}

}  // namespace oodb
