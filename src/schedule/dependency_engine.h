// DependencyEngine: computes every object schedule of a transaction
// system from the recorded execution (Defs 10, 11, 15).
//
// The computation follows the paper's information-flow story:
//   1. Primitive actions in conflict are ordered by their execution
//      timestamps (Axiom 1) — the bootstrap.
//   2. At each object O, a dependent *and conflicting* action pair
//      (a, a') inherits its direction to the calling actions: a
//      transaction dependency parent(a) -> parent(a') is recorded at O
//      (Def 10). Commuting pairs stop the inheritance — the paper's
//      source of extra concurrency.
//   3. A transaction dependency (t, t') recorded at O becomes an action
//      dependency at the object where t and t' are both actions
//      (Def 11), feeding step 2 one call level higher; when t and t'
//      live on different objects it is recorded redundantly at both as
//      an *added* action dependency (Def 15).
// Steps 2-3 iterate to a fixpoint (call trees are finite; edges only
// grow).
//
// Two engines implement this contract:
//   * kReference — the original formulation: all-pairs Commute calls
//     per object and full rescans of every conflict pair and every
//     transaction dependency per fixpoint round. Kept as the executable
//     specification.
//   * kIndexed — the production path: conflict pairs come from the
//     memoized ConflictIndex, the fixpoint is delta-driven (only edges
//     added in the previous round are reexamined, and the conflict
//     membership of a reexamined edge is answered by the memo), and the
//     per-object stages fan out over a thread pool. Produces identical
//     schedules and statistics.
//
// Precondition: the system must already be extended per Def 5
// (SystemExtender); the engine refuses otherwise, because mixed
// action/transaction roles on one object would make the recursion
// ill-founded.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/transaction_system.h"
#include "schedule/object_schedule.h"
#include "schedule/provenance.h"
#include "util/result.h"

namespace oodb {

class MetricsRegistry;
class ThreadPool;

/// Aggregate statistics of one dependency computation. These are the
/// quantities behind the paper's Fig 4 discussion: how many conflicting
/// dependencies existed at the bottom, and how many were *not* inherited
/// upward because the callers commute.
struct DependencyStats {
  size_t primitive_conflicts = 0;   ///< Axiom 1 ordered pairs
  size_t inherited_txn_deps = 0;    ///< Def 10 transaction dependencies
  size_t stopped_inheritance = 0;   ///< dependent pairs whose callers commute
  size_t added_deps = 0;            ///< Def 15 cross-object records
  size_t fixpoint_rounds = 0;
  /// Conflicting cross-transaction pairs for which no dependency could
  /// be derived in either direction (their subtrees never met on a
  /// common object). A serial schedule would order them; the analysis
  /// treats them as freely orderable and reports the count so callers
  /// can see how much of the conflict relation is actually grounded.
  size_t unordered_conflicts = 0;

  /// Sets the dep.* gauges in `registry` to these values (idempotent;
  /// null registry is a no-op).
  void PublishTo(MetricsRegistry* registry) const;
};

/// Selects and configures the engine implementation.
struct DependencyOptions {
  enum class Mode {
    kReference,  ///< original all-pairs / full-rescan engine
    kIndexed,    ///< memoized conflict index + worklist fixpoint
  };
  Mode mode = Mode::kReference;
  /// Worker threads for the kIndexed per-object stages: 0 = hardware
  /// concurrency, 1 = run every stage inline (no pool). Ignored by
  /// kReference.
  size_t num_threads = 1;
  /// When set, Compute() records per-stage wall timings into the
  /// dep.stage.*_ns histograms, worklist progress into the
  /// dep.worklist.waves / dep.worklist.frontier_edges counters, the
  /// conflict-index memo efficiency into dep.memo.hits / dep.memo.misses
  /// (kIndexed only), and publishes the final DependencyStats as dep.*
  /// gauges.
  MetricsRegistry* metrics = nullptr;
  /// Record the derivation of every edge (schedule/provenance.h) so a
  /// failed verdict can be expanded to its primitive conflicts. Off by
  /// default; when off, both engines pay one predictable null test per
  /// derived edge and allocate nothing.
  bool record_provenance = false;
};

/// Computes and stores all object schedules for one transaction system.
class DependencyEngine {
 public:
  /// `ts` must outlive the engine and be quiescent (no concurrent
  /// mutation) during Compute and afterwards.
  explicit DependencyEngine(const TransactionSystem& ts,
                            DependencyOptions options = {})
      : ts_(ts), options_(options) {}

  /// Runs the fixpoint. Fails with InvalidArgument when the system still
  /// needs the Def 5 extension.
  Status Compute();

  /// The schedule of `o`. Compute() must have succeeded.
  const ObjectSchedule& ForObject(ObjectId o) const;

  /// All object schedules (index aligned with object ids; the system
  /// object S is included at index 0).
  const std::vector<ObjectSchedule>& schedules() const { return schedules_; }

  const DependencyStats& stats() const { return stats_; }

  /// The transaction dependencies at the system object S: the inherited
  /// serialization order of top-level transactions.
  const Digraph& TopLevelOrder() const;

  /// The recorded edge provenance, or null when
  /// DependencyOptions::record_provenance was off.
  const ProvenanceStore* provenance() const { return provenance_.get(); }

  /// Releases the provenance store to the caller (the validator moves
  /// it into the report so explanations outlive the engine).
  std::shared_ptr<const ProvenanceStore> TakeProvenance() {
    return std::shared_ptr<const ProvenanceStore>(std::move(provenance_));
  }

  /// Moves the computed schedules out (for reports that must outlive
  /// the engine). The engine is spent afterwards.
  std::vector<ObjectSchedule> TakeSchedules() {
    return std::move(schedules_);
  }

 private:
  // --- reference engine ---------------------------------------------
  void ComputeConflictPairs();
  void SeedAxiom1();
  bool PropagateOnce();

  // --- indexed engine -----------------------------------------------
  void ComputeIndexed(ThreadPool* pool);

  /// Post-fixpoint derived counters (unordered_conflicts and
  /// stopped_inheritance) for the reference engine, probing the action
  /// relation per pair. The indexed engine computes the same counters
  /// from its directed-pair flags instead (see ComputeIndexed).
  void FinalizeDerivedStats(
      const std::function<bool(ActionId, ActionId)>& commute,
      ThreadPool* pool);

  const TransactionSystem& ts_;
  DependencyOptions options_;
  std::vector<ObjectSchedule> schedules_;
  DependencyStats stats_;
  std::unique_ptr<ProvenanceStore> provenance_;
  bool computed_ = false;
};

}  // namespace oodb
