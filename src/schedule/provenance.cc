#include "schedule/provenance.h"

namespace oodb {

const char* DepRuleName(DepRule rule) {
  switch (rule) {
    case DepRule::kAxiom1:
      return "axiom1";
    case DepRule::kDef10:
      return "def10";
    case DepRule::kDef11:
      return "def11";
    case DepRule::kDef15:
      return "def15";
  }
  return "?";
}

const char* DepRelationName(DepRelation relation) {
  switch (relation) {
    case DepRelation::kAction:
      return "action";
    case DepRelation::kTxn:
      return "txn";
    case DepRelation::kAdded:
      return "added";
  }
  return "?";
}

const char* WitnessKindName(Witness::Kind kind) {
  switch (kind) {
    case Witness::Kind::kTxnCycle:
      return "txn-cycle";
    case Witness::Kind::kActionCycle:
      return "action-cycle";
    case Witness::Kind::kAddedCycle:
      return "added-cycle";
    case Witness::Kind::kGlobalCycle:
      return "global-cycle";
    case Witness::Kind::kConformance:
      return "conformance";
  }
  return "?";
}

ProvenanceStore::ProvenanceStore(size_t num_objects, size_t num_actions)
    : num_actions_(num_actions), shards_(num_objects) {}

void ProvenanceStore::Record(DepRelation relation, ObjectId at,
                             ActionId from, ActionId to,
                             EdgeProvenance provenance) {
  shards_[at.value]
      .relations[size_t(relation)]
      .try_emplace(EdgeKey(from, to), provenance);
}

const EdgeProvenance* ProvenanceStore::Find(DepRelation relation,
                                            ObjectId at, ActionId from,
                                            ActionId to) const {
  if (at.value >= shards_.size()) return nullptr;
  const auto& edges = shards_[at.value].relations[size_t(relation)];
  auto it = edges.find(EdgeKey(from, to));
  return it == edges.end() ? nullptr : &it->second;
}

std::vector<ProvenanceStep> ProvenanceStore::Chain(DepRelation relation,
                                                   ObjectId at,
                                                   ActionId from,
                                                   ActionId to) const {
  std::vector<ProvenanceStep> chain;
  // Derivations are well-founded (Def 10 strictly ascends the call
  // trees between Def 11/15 placements), so this bound is never the
  // limiting factor on a store the engine filled; it only contains the
  // walk if the store is inconsistent.
  constexpr size_t kMaxSteps = 256;
  while (chain.size() < kMaxSteps) {
    const EdgeProvenance* p = Find(relation, at, from, to);
    if (p == nullptr) break;  // unrecorded edge: stop early
    ProvenanceStep step;
    step.rule = p->rule;
    step.relation = relation;
    step.object = at;
    step.from = from;
    step.to = to;
    step.cause_object = p->object;
    step.cause_from = p->cause_from;
    step.cause_to = p->cause_to;
    chain.push_back(step);
    switch (p->rule) {
      case DepRule::kAxiom1:
        return chain;  // grounded in a primitive conflict
      case DepRule::kDef10:
        // Inherited from the action pair (cause_from, cause_to), whose
        // dependency lives in this object's action relation.
        relation = DepRelation::kAction;
        from = p->cause_from;
        to = p->cause_to;
        break;
      case DepRule::kDef11:
      case DepRule::kDef15:
        // Placed from the transaction dependency recorded at
        // p->object; the endpoints are the same pair.
        relation = DepRelation::kTxn;
        at = p->object;
        break;
    }
  }
  return chain;
}

size_t ProvenanceStore::EdgeCount() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& rel : shard.relations) total += rel.size();
  }
  return total;
}

}  // namespace oodb
