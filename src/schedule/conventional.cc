#include "schedule/conventional.h"

namespace oodb {

ConventionalResult ConventionalChecker::Check(const TransactionSystem& ts) {
  ConventionalResult result;
  for (ActionId t : ts.TopLevel()) {
    result.conflict_graph.AddNode(t.value);
  }
  for (ObjectId o : ts.Objects()) {
    if (ts.object(o).is_virtual) continue;
    std::vector<ActionId> prims;
    for (ActionId a : ts.ActionsOn(o)) {
      if (ts.action(a).is_virtual) continue;
      if (!ts.IsPrimitive(a)) continue;
      if (ts.action(a).timestamp == 0) continue;  // never executed
      prims.push_back(a);
    }
    const ObjectType* type = ts.object(o).type;
    for (size_t i = 0; i < prims.size(); ++i) {
      const ActionRecord& ra = ts.action(prims[i]);
      for (size_t j = i + 1; j < prims.size(); ++j) {
        const ActionRecord& rb = ts.action(prims[j]);
        if (ra.top_level == rb.top_level) continue;
        if (type->Commutes(ra.invocation, rb.invocation)) continue;
        ++result.conflicting_pairs;
        if (ra.timestamp < rb.timestamp) {
          result.conflict_graph.AddEdge(ra.top_level.value,
                                        rb.top_level.value);
        } else {
          result.conflict_graph.AddEdge(rb.top_level.value,
                                        ra.top_level.value);
        }
      }
    }
  }
  result.serializable = !result.conflict_graph.HasCycle();
  return result;
}

}  // namespace oodb
