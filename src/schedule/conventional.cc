#include "schedule/conventional.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "util/thread_pool.h"

namespace oodb {

namespace {

/// One object's share of the conflict graph, computed independently and
/// merged in object order afterwards.
struct ObjectSweep {
  std::vector<std::pair<uint64_t, uint64_t>> edges;  // top_a -> top_b
  size_t conflicting_pairs = 0;
};

void SweepObject(const TransactionSystem& ts, ObjectId o, bool memoize,
                 ObjectSweep* out) {
  if (ts.object(o).is_virtual) return;
  std::vector<ActionId> prims;
  for (ActionId a : ts.ActionsOn(o)) {
    if (ts.action(a).is_virtual) continue;
    if (!ts.IsPrimitive(a)) continue;
    if (ts.action(a).timestamp == 0) continue;  // never executed
    prims.push_back(a);
  }
  if (prims.size() < 2) return;
  const ObjectType* type = ts.object(o).type;
  const CommutativityMemo memo =
      memoize ? type->commutativity().memo() : CommutativityMemo::kNone;

  if (memo == CommutativityMemo::kNone) {
    for (size_t i = 0; i < prims.size(); ++i) {
      const ActionRecord& ra = ts.action(prims[i]);
      for (size_t j = i + 1; j < prims.size(); ++j) {
        const ActionRecord& rb = ts.action(prims[j]);
        if (ra.top_level == rb.top_level) continue;
        if (type->Commutes(ra.invocation, rb.invocation)) continue;
        ++out->conflicting_pairs;
        if (ra.timestamp < rb.timestamp) {
          out->edges.emplace_back(ra.top_level.value, rb.top_level.value);
        } else {
          out->edges.emplace_back(rb.top_level.value, ra.top_level.value);
        }
      }
    }
    return;
  }

  // Memoized sweep: classify the primitives at the spec's declared
  // granularity, decide commutativity once per class pair, then run the
  // quadratic loop on integers.
  std::unordered_map<std::string, uint32_t> class_ids;
  std::vector<const Invocation*> reps;
  struct Row {
    uint32_t cls;
    uint64_t top;
    uint64_t timestamp;
  };
  std::vector<Row> rows(prims.size());
  for (size_t i = 0; i < prims.size(); ++i) {
    const ActionRecord& r = ts.action(prims[i]);
    std::string key = memo == CommutativityMemo::kMethodPair
                          ? r.invocation.method
                          : r.invocation.ToString();
    auto [it, inserted] =
        class_ids.try_emplace(std::move(key), uint32_t(class_ids.size()));
    if (inserted) reps.push_back(&r.invocation);
    rows[i] = {it->second, r.top_level.value, r.timestamp};
  }
  const size_t c = class_ids.size();
  std::vector<uint8_t> commutes(c * c);
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = i; j < c; ++j) {
      commutes[i * c + j] = commutes[j * c + i] =
          type->Commutes(*reps[i], *reps[j]) ? 1 : 0;
    }
  }

  // Dense ids for the top-level transactions seen on this object.
  std::unordered_map<uint64_t, uint32_t> top_ids;
  std::vector<uint64_t> top_values;
  for (Row& r : rows) {
    auto [it, inserted] =
        top_ids.try_emplace(r.top, uint32_t(top_ids.size()));
    if (inserted) top_values.push_back(r.top);
    r.top = it->second;
  }
  const size_t tops = top_ids.size();

  if (c * tops > rows.size() * rows.size()) {
    // Degenerate shape (nearly every row its own class and top): the
    // sweep's bookkeeping would outweigh the plain quadratic loop.
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& ri = rows[i];
      const uint8_t* row = commutes.data() + size_t(ri.cls) * c;
      for (size_t j = i + 1; j < rows.size(); ++j) {
        const Row& rj = rows[j];
        if (ri.top == rj.top) continue;
        if (row[rj.cls]) continue;
        ++out->conflicting_pairs;
        if (ri.timestamp < rj.timestamp) {
          out->edges.emplace_back(top_values[ri.top],
                                  top_values[rj.top]);
        } else {
          out->edges.emplace_back(top_values[rj.top],
                                  top_values[ri.top]);
        }
      }
    }
    return;
  }

  // Timestamp-ordered sweep: process rows in execution order and keep,
  // per invocation class, how many earlier rows exist in total, per
  // top, and as a bitmask over tops. Each row then settles all its
  // conflicting pairs with *earlier* rows in O(conflicting classes):
  // the pair count is the class totals minus the same-top share, and
  // the graph edges earlier-top -> this-top are the union of the class
  // masks. Same pairs, same directions, same dedup as the quadratic
  // loop — the timestamp comparison is just hoisted into the order.
  //
  // Equal timestamps (possible only for hand-built histories) fall to
  // the quadratic loop's index-order rule: ties sort by *descending*
  // index so the later-indexed row is seen first, reproducing its
  // "else" branch edge exactly.
  std::vector<uint32_t> order(rows.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    if (rows[x].timestamp != rows[y].timestamp) {
      return rows[x].timestamp < rows[y].timestamp;
    }
    return x > y;
  });

  // Per class: conflicting classes, total seen, seen per top, top mask.
  std::vector<std::vector<uint32_t>> conflicts_with(c);
  for (size_t y = 0; y < c; ++y) {
    for (size_t x = 0; x < c; ++x) {
      if (!commutes[y * c + x]) conflicts_with[y].push_back(uint32_t(x));
    }
  }
  const size_t words = (tops + 63) / 64;
  std::vector<uint32_t> seen_total(c, 0);
  std::vector<uint32_t> seen_cnt(c * tops, 0);
  std::vector<uint64_t> seen_mask(c * words, 0);
  std::vector<uint64_t> edges_in(tops * words, 0);
  std::vector<uint64_t> incoming(words);
  for (uint32_t idx : order) {
    const Row& r = rows[idx];
    const uint32_t b = uint32_t(r.top);
    const auto& conf = conflicts_with[r.cls];
    if (!conf.empty()) {
      std::fill(incoming.begin(), incoming.end(), 0);
      for (uint32_t x : conf) {
        out->conflicting_pairs += seen_total[x] - seen_cnt[x * tops + b];
        const uint64_t* mask = seen_mask.data() + size_t(x) * words;
        for (size_t w = 0; w < words; ++w) incoming[w] |= mask[w];
      }
      incoming[b / 64] &= ~(uint64_t{1} << (b % 64));
      uint64_t* in_b = edges_in.data() + size_t(b) * words;
      for (size_t w = 0; w < words; ++w) in_b[w] |= incoming[w];
    }
    ++seen_total[r.cls];
    ++seen_cnt[size_t(r.cls) * tops + b];
    seen_mask[size_t(r.cls) * words + b / 64] |= uint64_t{1} << (b % 64);
  }
  for (size_t b = 0; b < tops; ++b) {
    const uint64_t* in_b = edges_in.data() + b * words;
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = in_b[w];
      while (bits) {
        const size_t a = w * 64 + size_t(__builtin_ctzll(bits));
        bits &= bits - 1;
        out->edges.emplace_back(top_values[a], top_values[b]);
      }
    }
  }
}

}  // namespace

ConventionalResult ConventionalChecker::Check(const TransactionSystem& ts,
                                              size_t num_threads) {
  ConventionalResult result;
  for (ActionId t : ts.TopLevel()) {
    result.conflict_graph.AddNode(t.value);
  }
  std::vector<ObjectId> objects = ts.Objects();
  std::vector<ObjectSweep> sweeps(objects.size());
  if (num_threads == 1) {
    for (size_t i = 0; i < objects.size(); ++i) {
      SweepObject(ts, objects[i], /*memoize=*/false, &sweeps[i]);
    }
  } else {
    size_t threads = num_threads == 0
                         ? std::max<size_t>(
                               1, std::thread::hardware_concurrency())
                         : num_threads;
    if (threads > 1) {
      ThreadPool pool(threads);
      pool.ParallelFor(objects.size(), [&](size_t i) {
        SweepObject(ts, objects[i], /*memoize=*/true, &sweeps[i]);
      });
    } else {
      for (size_t i = 0; i < objects.size(); ++i) {
        SweepObject(ts, objects[i], /*memoize=*/true, &sweeps[i]);
      }
    }
  }
  for (const ObjectSweep& sweep : sweeps) {
    result.conflicting_pairs += sweep.conflicting_pairs;
    for (const auto& [from, to] : sweep.edges) {
      result.conflict_graph.AddEdge(from, to);
    }
  }
  result.serializable = !result.conflict_graph.HasCycle();
  return result;
}

}  // namespace oodb
