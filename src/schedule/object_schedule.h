// ObjectSchedule: the per-object view of an interleaved execution
// (Def 6): "an object schedule consists of a system, an object, an action
// dependency relation, and a transaction dependency relation."

#pragma once

#include <string>
#include <vector>

#include "model/ids.h"
#include "util/digraph.h"

namespace oodb {

class TransactionSystem;

/// The computed schedule of one object. Relations are directed graphs
/// whose nodes are ActionId values:
///   * `action_deps`  — the action dependency relation over ACT_O
///     (Def 11: Axiom 1 base case plus dependencies inherited from
///     transaction dependencies established at other objects),
///   * `txn_deps`     — the transaction dependency relation over TRA_O
///     (Def 10: inherited from conflicting, dependent action pairs),
///   * `added_deps`   — the added action dependency relation (Def 15):
///     transaction dependencies recorded elsewhere whose endpoints do not
///     both live on this object; recorded redundantly at both endpoint
///     objects.
struct ObjectSchedule {
  ObjectId object;
  Digraph action_deps;
  Digraph txn_deps;
  Digraph added_deps;

  /// Conflicting pairs of actions on this object (unordered, each pair
  /// once), per Def 9 including the same-process rule.
  std::vector<std::pair<ActionId, ActionId>> conflict_pairs;

  /// Def 13: (i) the transaction dependency relation admits a serial
  /// object schedule with the same dependencies — i.e. it is acyclic —
  /// and (ii) the action dependency relation is acyclic (no contradicting
  /// inherited dependencies).
  bool IsOoSerializable() const {
    return !txn_deps.HasCycle() && !action_deps.HasCycle();
  }

  /// Def 16(ii): the action dependencies together with the added action
  /// dependencies contain no contradiction.
  bool AddedAcyclic() const {
    Digraph combined = action_deps;
    combined.UnionWith(added_deps);
    return !combined.HasCycle();
  }

  /// Renders the dependency relations like the table of Fig 8.
  std::string ToString(const TransactionSystem& ts) const;
};

}  // namespace oodb
