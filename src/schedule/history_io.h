// HistoryIo: text serialization of recorded executions.
//
// A Database records every execution as a TransactionSystem; dumping it
// lets histories travel — into golden files, bug reports, or the
// validate_history example, which re-checks a dumped run offline.
//
// The format is line-based ("oodb-history v1"); object types are
// referenced by name, so loading needs a resolver from type names to
// ObjectType instances (types carry code — commutativity — that cannot
// be serialized). Only unextended systems are dumped: run the Def 5
// extension after loading, as the validator does anyway.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "model/transaction_system.h"
#include "util/result.h"

namespace oodb {

/// Maps a type name ("Page", "Leaf", ...) to its ObjectType; returns
/// null for unknown names (which fails the load).
using TypeResolver = std::function<const ObjectType*(const std::string&)>;

class HistoryIo {
 public:
  /// Serializes `ts`. Fails on systems containing virtual objects
  /// (dump before extension; the extension is deterministic anyway).
  static Result<std::string> Dump(const TransactionSystem& ts);

  /// Parses a dump. Ids are reassigned densely in the original order,
  /// so they match the dumped ids.
  static Result<std::unique_ptr<TransactionSystem>> Load(
      const std::string& text, const TypeResolver& resolver);

  /// Load resolving type names through TypeRegistry::Global() (the
  /// container/app modules register their types when their
  /// Register*Methods functions run).
  static Result<std::unique_ptr<TransactionSystem>> LoadWithGlobalTypes(
      const std::string& text);
};

}  // namespace oodb
