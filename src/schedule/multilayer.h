// Multi-layer serializability — the special case the paper generalizes.
//
// "In a multi-layer transaction system [1, 3, 11, 23, 24] the
// transactions are implemented by actions at the underlying level of
// specialization. ... The concurrency control component of these systems
// considers two adjacent layers in one schedule." And: "an
// object-oriented transaction system is a generalization of a layered
// system [3] when objects are considered as layers", because in oo
// systems call depths differ per path, calls may skip levels, and a
// transaction may re-enter an object deeper in its own call tree.
//
// This module (a) decides whether a recorded system *is* layered —
// every object sits at one level, every call descends exactly one
// level — and (b) for layered systems runs the classical level-by-level
// check: for each adjacent layer pair, the conflict relation over the
// upper layer's operations (inherited from ordered conflicting lower
// operations, across all objects of the layer) must be acyclic.
//
// Relationship to oo-serializability, testable on every layered history:
//   * multi-layer serializable  =>  oo-serializable (the paper's
//     inclusion claim), and
//   * multi-layer serializability coincides with oo-serializability
//     plus the strictly-global acyclicity check, because the per-level
//     conflict graph is the union of the per-object transaction
//     dependency relations of that level.

#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/transaction_system.h"
#include "schedule/dependency_engine.h"
#include "util/digraph.h"

namespace oodb {

/// Assignment of every non-system object to a layer. Layer 0 is the
/// zero layer (pages); top-level transactions live one above the
/// highest object layer.
struct LayerAssignment {
  std::unordered_map<uint64_t, size_t> object_layer;  ///< ObjectId -> layer
  size_t num_layers = 0;

  size_t LayerOf(ObjectId o) const {
    auto it = object_layer.find(o.value);
    return it == object_layer.end() ? 0 : it->second;
  }
};

/// Result of the layered analysis.
struct MultiLayerResult {
  bool layered = false;            ///< the system fits the layer model
  std::string not_layered_reason;  ///< set when !layered
  LayerAssignment layers;
  /// Per layer L (index into the vector): the conflict graph over the
  /// layer-(L+1) operations, inherited from ordered conflicting layer-L
  /// operations across all objects of layer L.
  std::vector<Digraph> level_graphs;
  /// Level-by-level serializability: every level graph acyclic.
  bool serializable = false;
  /// First level whose graph has a cycle (when !serializable).
  size_t failing_level = 0;
};

class MultiLayerChecker {
 public:
  /// Infers the layer of every object from action depths. A system is
  /// layered iff all actions on one object have the same height (all
  /// call chains below any of its actions have equal length) and every
  /// call descends exactly one layer. The system object S sits above
  /// the top layer.
  static Result<LayerAssignment> InferLayers(const TransactionSystem& ts);

  /// Runs the full analysis. The system must already be quiescent; it
  /// must NOT need the Def 5 extension (a system with same-object call
  /// cycles is by definition not layered, and is reported as such).
  static MultiLayerResult Check(const TransactionSystem& ts);
};

}  // namespace oodb
