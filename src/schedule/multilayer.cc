#include "schedule/multilayer.h"

#include <algorithm>

#include "model/extension.h"

namespace oodb {

namespace {

/// Heights of all actions: a childless action has height 0; otherwise
/// 1 + max over children. Virtual duplicates are ignored (they only
/// exist post-extension, and extended systems are not layered anyway).
std::vector<size_t> ActionHeights(const TransactionSystem& ts) {
  std::vector<size_t> height(ts.action_count(), 0);
  // Children always have larger ids than parents: one reverse pass.
  for (uint64_t i = ts.action_count(); i-- > 0;) {
    const ActionRecord& rec = ts.action(ActionId(i));
    size_t h = 0;
    for (ActionId c : rec.children) {
      if (ts.action(c).is_virtual) continue;
      h = std::max(h, height[c.value] + 1);
    }
    height[i] = h;
  }
  return height;
}

}  // namespace

Result<LayerAssignment> MultiLayerChecker::InferLayers(
    const TransactionSystem& ts) {
  std::vector<size_t> height = ActionHeights(ts);
  LayerAssignment assignment;

  // Every object's actions must share one height (= the object's layer).
  for (ObjectId o : ts.Objects()) {
    const ObjectRecord& rec = ts.object(o);
    if (rec.is_virtual) {
      return Status::InvalidArgument(
          "system contains virtual objects (post-extension systems are "
          "not layered)");
    }
    bool first = true;
    size_t layer = 0;
    for (ActionId a : rec.actions) {
      if (ts.action(a).is_virtual) continue;
      size_t h = height[a.value];
      if (first) {
        layer = h;
        first = false;
      } else if (h != layer) {
        return Status::InvalidArgument(
            "object " + rec.name + " is reached at different depths (" +
            std::to_string(layer) + " vs " + std::to_string(h) +
            "): not layered");
      }
    }
    if (first) continue;  // object never accessed; layer irrelevant
    assignment.object_layer[o.value] = layer;
    assignment.num_layers = std::max(assignment.num_layers, layer + 1);
  }

  // Every call must descend exactly one layer, and top-level
  // transactions must sit uniformly above the top layer.
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    const ActionRecord& rec = ts.action(ActionId(i));
    if (rec.is_virtual) continue;
    for (ActionId c : rec.children) {
      if (ts.action(c).is_virtual) continue;
      if (height[i] != height[c.value] + 1) {
        return Status::InvalidArgument(
            "call from " + ts.Describe(ActionId(i)) + " to " +
            ts.Describe(c) + " skips layers: not layered");
      }
    }
    if (!rec.parent.valid() && !rec.children.empty() &&
        height[i] != assignment.num_layers) {
      return Status::InvalidArgument(
          "top-level transaction " + rec.label +
          " does not sit directly above the object layers: not layered");
    }
  }
  return assignment;
}

MultiLayerResult MultiLayerChecker::Check(const TransactionSystem& ts) {
  MultiLayerResult result;
  if (SystemExtender::NeedsExtension(ts)) {
    result.not_layered_reason =
        "a transaction calls an action on an object it already accessed "
        "(the Def 5 situation): not layered";
    return result;
  }
  Result<LayerAssignment> layers = InferLayers(ts);
  if (!layers.ok()) {
    result.not_layered_reason = layers.status().message();
    return result;
  }
  result.layered = true;
  result.layers = *layers;

  DependencyEngine engine(ts);
  Status st = engine.Compute();
  if (!st.ok()) {
    result.not_layered_reason = st.ToString();
    result.layered = false;
    return result;
  }

  // Level L's conflict graph (over layer-(L+1) operations) is the union
  // of the transaction dependency relations of all layer-L objects.
  result.level_graphs.resize(result.layers.num_layers);
  for (ObjectId o : ts.Objects()) {
    auto it = result.layers.object_layer.find(o.value);
    if (it == result.layers.object_layer.end()) continue;
    result.level_graphs[it->second].UnionWith(
        engine.ForObject(o).txn_deps);
  }

  result.serializable = true;
  for (size_t level = 0; level < result.level_graphs.size(); ++level) {
    if (result.level_graphs[level].HasCycle()) {
      result.serializable = false;
      result.failing_level = level;
      break;
    }
  }
  return result;
}

}  // namespace oodb
