// Printers rendering executions and dependency relations the way the
// paper draws them: the call trees of Figs 4/5/7 and the per-object
// dependency table of Fig 8.

#pragma once

#include <string>

#include "model/transaction_system.h"
#include "schedule/dependency_engine.h"

namespace oodb {

class SchedulePrinter {
 public:
  /// ASCII rendering of one oo-transaction's call tree (Fig 5 style):
  ///   T1
  ///   +- BpTree.insert(DBS)
  ///   |  +- Leaf11.insert(DBS)
  ///   |  |  +- Page4712.read()
  ///   ...
  static std::string TransactionTree(const TransactionSystem& ts,
                                     ActionId root);

  /// All top-level transactions' trees.
  static std::string AllTrees(const TransactionSystem& ts);

  /// The Fig 8 table: one row per object, listing the dependency
  /// relations of its object schedule. Virtual objects are included with
  /// their primed names.
  static std::string DependencyTable(const TransactionSystem& ts,
                                     const DependencyEngine& engine);

  /// Graphviz rendering of the call trees: one cluster per top-level
  /// transaction, solid arcs for calls.
  static std::string CallForestDot(const TransactionSystem& ts);

  /// Graphviz rendering of the computed dependencies: solid edges for
  /// action dependencies, dashed for transaction dependencies, dotted
  /// for added (Def 15) dependencies.
  static std::string DependencyDot(const TransactionSystem& ts,
                                   const DependencyEngine& engine);
};

}  // namespace oodb
