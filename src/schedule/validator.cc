#include "schedule/validator.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "model/extension.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace oodb {

namespace {

std::string RenderCycle(const TransactionSystem& ts,
                        const std::vector<Digraph::NodeId>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out += " -> ";
    out += ts.Describe(ActionId(cycle[i]));
  }
  return out;
}

/// Builds the witness for one offending cycle: one edge per hop, each
/// classified into the relation it lives in (`relation_of`) and — when
/// provenance was recorded — expanded down to its primitive conflict.
Witness MakeCycleWitness(
    Witness::Kind kind, ObjectId object,
    const std::vector<Digraph::NodeId>& cycle,
    const std::function<std::pair<DepRelation, ObjectId>(
        ActionId, ActionId)>& relation_of,
    const ProvenanceStore* prov) {
  Witness w;
  w.kind = kind;
  w.object = object;
  w.cycle.reserve(cycle.size());
  for (Digraph::NodeId n : cycle) w.cycle.push_back(ActionId(n));
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    Witness::Edge edge;
    edge.from = ActionId(cycle[i]);
    edge.to = ActionId(cycle[i + 1]);
    auto [relation, at] = relation_of(edge.from, edge.to);
    edge.relation = relation;
    if (prov != nullptr) {
      edge.chain = prov->Chain(relation, at, edge.from, edge.to);
    }
    w.edges.push_back(std::move(edge));
  }
  return w;
}

/// The precedence path behind one MustPrecede(a, b) == true verdict:
/// the chain of ordered siblings (branch of a -> ... -> branch of b) in
/// the lowest common action set. Mirrors
/// TransactionSystem::MustPrecede, with BFS parent tracking.
std::vector<ActionId> MustPrecedeTrace(const TransactionSystem& ts,
                                       ActionId a, ActionId b) {
  auto chain = [&ts](ActionId x) {
    std::vector<ActionId> c;
    for (ActionId cur = x; cur.valid(); cur = ts.action(cur).parent) {
      c.push_back(cur);
    }
    return c;
  };
  std::vector<ActionId> ca = chain(a), cb = chain(b);
  if (ca.back() != cb.back()) return {};
  size_t ia = ca.size(), ib = cb.size();
  while (ia > 0 && ib > 0 && ca[ia - 1] == cb[ib - 1]) {
    --ia;
    --ib;
  }
  if (ia == 0 || ib == 0) return {};
  ActionId branch_a = ca[ia - 1];
  ActionId branch_b = cb[ib - 1];
  ActionId common_parent = ts.action(branch_a).parent;
  const auto& edges = ts.action(common_parent).child_precedence;
  std::deque<ActionId> frontier{branch_a};
  std::unordered_map<uint64_t, uint64_t> parent{{branch_a.value, branch_a.value}};
  while (!frontier.empty()) {
    ActionId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [from, to] : edges) {
      if (from != cur || parent.count(to.value)) continue;
      parent[to.value] = cur.value;
      if (to == branch_b) {
        std::vector<ActionId> path{to};
        ActionId p = cur;
        for (;;) {
          path.push_back(p);
          if (p == branch_a) break;
          p = ActionId(parent[p.value]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(to);
    }
  }
  return {};
}

void CheckConformance(const TransactionSystem& ts, ValidationReport* report) {
  // Def 7: the execution must respect the (inherited) precedence
  // relation. For every pair of executed primitive actions of one
  // top-level transaction: MustPrecede(a, b) => timestamp(a) < t(b).
  // Tops iterate in sorted id order so diagnostics (and witnesses) are
  // byte-stable.
  std::map<uint64_t, std::vector<ActionId>> prims_by_top;
  for (ObjectId o : ts.Objects()) {
    for (ActionId a : ts.ActionsOn(o)) {
      if (ts.action(a).is_virtual) continue;
      if (!ts.IsPrimitive(a) || ts.action(a).timestamp == 0) continue;
      prims_by_top[ts.action(a).top_level.value].push_back(a);
    }
  }
  for (const auto& [top, prims] : prims_by_top) {
    (void)top;
    for (size_t i = 0; i < prims.size(); ++i) {
      for (size_t j = 0; j < prims.size(); ++j) {
        if (i == j) continue;
        if (ts.MustPrecede(prims[i], prims[j]) &&
            ts.action(prims[i]).timestamp > ts.action(prims[j]).timestamp) {
          report->conform = false;
          report->diagnostics.push_back(
              "conformance violation: " + ts.Describe(prims[i]) +
              " must precede " + ts.Describe(prims[j]) +
              " but executed after it");
          Witness w;
          w.kind = Witness::Kind::kConformance;
          w.cycle = {prims[i], prims[j]};
          w.precedence_path = MustPrecedeTrace(ts, prims[i], prims[j]);
          report->witnesses.push_back(std::move(w));
        }
      }
    }
  }
}

/// Linear-time Def 7 screen used by the pooled path. MustPrecede pairs
/// are exactly the primitive pairs whose branches at some common action
/// set are connected by the precedence relation, so conformance holds
/// iff no precedence chain c1 ->* c2 has a primitive under c1 executing
/// after a primitive under c2. Aggregating each subtree's executed
/// timestamps reduces that to one min/max comparison per reachable
/// branch pair — no quadratic MustPrecede probing. Exact for the
/// verdict; when it trips, the caller reruns CheckConformance for the
/// identical per-pair diagnostics.
bool ConformanceHolds(const TransactionSystem& ts) {
  const size_t n = ts.action_count();
  // Min/max timestamp of the executed, non-virtual primitives in each
  // action's subtree; 0 = none. Children are created after their parent
  // (Call requires the parent to exist), so one descending pass folds
  // bottom-up.
  std::vector<uint64_t> lo(n, 0), hi(n, 0);
  for (size_t i = n; i-- > 0;) {
    const ActionRecord& rec = ts.action(ActionId(i));
    uint64_t l = 0, h = 0;
    if (!rec.is_virtual && rec.timestamp != 0 && ts.IsPrimitive(ActionId(i))) {
      l = h = rec.timestamp;
    }
    for (ActionId c : rec.children) {
      if (lo[c.value] == 0) continue;
      if (l == 0 || lo[c.value] < l) l = lo[c.value];
      if (hi[c.value] > h) h = hi[c.value];
    }
    lo[i] = l;
    hi[i] = h;
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& edges = ts.action(ActionId(i)).child_precedence;
    if (edges.empty()) continue;
    std::unordered_map<uint64_t, std::vector<uint64_t>> succ;
    for (const auto& [from, to] : edges) {
      succ[from.value].push_back(to.value);
    }
    for (const auto& [from, direct] : succ) {
      if (hi[from] == 0) continue;
      // DFS over the action set's precedence DAG from `from`.
      std::unordered_set<uint64_t> visited{from};
      std::vector<uint64_t> stack(direct.begin(), direct.end());
      while (!stack.empty()) {
        uint64_t cur = stack.back();
        stack.pop_back();
        if (!visited.insert(cur).second) continue;
        if (lo[cur] != 0 && hi[from] > lo[cur]) return false;
        auto it = succ.find(cur);
        if (it != succ.end()) {
          stack.insert(stack.end(), it->second.begin(), it->second.end());
        }
      }
    }
  }
  return true;
}

}  // namespace

std::string ValidationReport::Summary() const {
  std::ostringstream os;
  os << "oo-serializable=" << (oo_serializable ? "yes" : "no")
     << " conventional=" << (conventionally_serializable ? "yes" : "no")
     << " conform=" << (conform ? "yes" : "no")
     << " | prim-conflicts=" << stats.primitive_conflicts
     << " inherited=" << stats.inherited_txn_deps
     << " stopped=" << stats.stopped_inheritance
     << " added=" << stats.added_deps
     << " unordered=" << stats.unordered_conflicts;
  if (!diagnostics.empty()) {
    os << "\n";
    for (const std::string& d : diagnostics) os << "  ! " << d << "\n";
  }
  return os.str();
}

ValidationReport Validator::Validate(TransactionSystem* ts,
                                     const ValidationOptions& options) {
  ValidationReport report;

  if (options.apply_extension) {
    report.extension = SystemExtender::Extend(ts, options.tracer);
  }
  report.extension.PublishTo(options.metrics);

  DependencyOptions dep_options;
  dep_options.metrics = options.metrics;
  dep_options.record_provenance = options.record_provenance;
  if (options.num_threads != 1) {
    dep_options.mode = DependencyOptions::Mode::kIndexed;
    dep_options.num_threads = options.num_threads;
  }
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads != 1) {
    size_t threads = options.num_threads == 0
                         ? std::max<size_t>(
                               1, std::thread::hardware_concurrency())
                         : options.num_threads;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  }

  DependencyEngine engine(*ts, dep_options);
  Status st = engine.Compute();
  if (!st.ok()) {
    report.oo_serializable = false;
    report.diagnostics.push_back(st.ToString());
    return report;
  }
  report.stats = engine.stats();

  // Per-object Def 13 and Def 16(ii). Objects are independent; with a
  // pool the checks fan out, and the per-object diagnostics and
  // witnesses are merged in object order so the report stays
  // deterministic. Failed verdicts render the BFS *shortest* cycle —
  // the minimal explanation, and byte-stable unlike whichever back edge
  // a DFS happens to close first.
  const std::vector<ObjectSchedule>& schedules = engine.schedules();
  const ProvenanceStore* prov = engine.provenance();
  std::vector<std::vector<std::string>> object_diags(schedules.size());
  std::vector<std::vector<Witness>> object_wits(schedules.size());
  std::vector<uint64_t> object_extract_ns(schedules.size(), 0);
  std::vector<uint8_t> object_ok(schedules.size(), 1);
  auto check_txn_deps = [&](size_t i) {
    const ObjectSchedule& sch = schedules[i];
    if (!sch.txn_deps.HasCycle()) return;
    Stopwatch sw;
    auto cycle = sch.txn_deps.FindShortestCycle();
    object_ok[i] = 0;
    object_diags[i].push_back(
        "object " + ts->object(sch.object).name +
        ": transaction dependency cycle (Def 13 i): " +
        RenderCycle(*ts, *cycle));
    object_wits[i].push_back(MakeCycleWitness(
        Witness::Kind::kTxnCycle, sch.object, *cycle,
        [&](ActionId, ActionId) {
          return std::make_pair(DepRelation::kTxn, sch.object);
        },
        prov));
    object_extract_ns[i] += sw.ElapsedNanos();
  };
  auto check_action_deps = [&](size_t i) {
    const ObjectSchedule& sch = schedules[i];
    Stopwatch sw;
    if (auto cycle = sch.action_deps.FindShortestCycle()) {
      object_ok[i] = 0;
      object_diags[i].push_back(
          "object " + ts->object(sch.object).name +
          ": contradicting action dependencies (Def 13 ii): " +
          RenderCycle(*ts, *cycle));
      object_wits[i].push_back(MakeCycleWitness(
          Witness::Kind::kActionCycle, sch.object, *cycle,
          [&](ActionId, ActionId) {
            return std::make_pair(DepRelation::kAction, sch.object);
          },
          prov));
    }
    if (sch.added_deps.EdgeCount() != 0 &&
        sch.action_deps.HasCycleWith(sch.added_deps)) {
      object_ok[i] = 0;
      auto cycle = sch.action_deps.FindShortestCycleWith(sch.added_deps);
      object_diags[i].push_back(
          "object " + ts->object(sch.object).name +
          ": added-dependency contradiction (Def 16 ii): " +
          RenderCycle(*ts, *cycle));
      object_wits[i].push_back(MakeCycleWitness(
          Witness::Kind::kAddedCycle, sch.object, *cycle,
          [&](ActionId from, ActionId to) {
            DepRelation rel =
                sch.action_deps.HasEdge(from.value, to.value)
                    ? DepRelation::kAction
                    : DepRelation::kAdded;
            return std::make_pair(rel, sch.object);
          },
          prov));
    }
    object_extract_ns[i] += sw.ElapsedNanos();
  };
  auto check_object = [&](size_t i) {
    check_txn_deps(i);
    check_action_deps(i);
  };
  // Same verdicts along a cheaper route for the pooled path: the
  // combined Def 16(ii) traversal (HasCycleWith, no graph copy) also
  // answers Def 13(ii) when acyclic, so the accepting case — the common
  // one — costs a single traversal of the big action relation. The
  // witness-producing shortest-cycle searches only run on rejection.
  auto check_object_fast = [&](size_t i) {
    const ObjectSchedule& sch = schedules[i];
    check_txn_deps(i);
    bool combined_cyclic =
        sch.added_deps.EdgeCount() == 0
            ? sch.action_deps.HasCycle()
            : sch.action_deps.HasCycleWith(sch.added_deps);
    if (combined_cyclic) check_action_deps(i);
  };
  if (pool) {
    pool->ParallelFor(schedules.size(), check_object_fast);
  } else {
    for (size_t i = 0; i < schedules.size(); ++i) check_object(i);
  }
  bool all_ok = true;
  for (size_t i = 0; i < schedules.size(); ++i) {
    if (!object_ok[i]) all_ok = false;
    for (std::string& d : object_diags[i]) {
      report.diagnostics.push_back(std::move(d));
    }
    for (Witness& w : object_wits[i]) {
      report.witnesses.push_back(std::move(w));
    }
  }
  report.oo_serializable = all_ok;

  if (options.check_global) {
    Digraph global;
    for (const ObjectSchedule& sch : engine.schedules()) {
      global.UnionWith(sch.action_deps);
      global.UnionWith(sch.added_deps);
    }
    if (global.HasCycle()) {
      report.globally_acyclic = false;
      auto cycle = global.FindShortestCycle();
      if (all_ok) {
        report.diagnostics.push_back(
            "global dependency cycle spanning 3+ objects (stronger-than-"
            "Def-16 check): " +
            RenderCycle(*ts, *cycle));
      }
      // A global edge can live in several objects' relations; resolve
      // to the first object (in id order) that holds it, preferring the
      // action relation — deterministic, and exactly where provenance
      // was recorded.
      report.witnesses.push_back(MakeCycleWitness(
          Witness::Kind::kGlobalCycle, ObjectId(), *cycle,
          [&](ActionId from, ActionId to) {
            for (const ObjectSchedule& sch : engine.schedules()) {
              if (sch.action_deps.HasEdge(from.value, to.value)) {
                return std::make_pair(DepRelation::kAction, sch.object);
              }
            }
            for (const ObjectSchedule& sch : engine.schedules()) {
              if (sch.added_deps.HasEdge(from.value, to.value)) {
                return std::make_pair(DepRelation::kAdded, sch.object);
              }
            }
            return std::make_pair(DepRelation::kAction, ObjectId());
          },
          prov));
    }
  }

  if (options.check_conformance) {
    // The screen is exact for the verdict, so the quadratic per-pair
    // scan only runs when there are diagnostics to produce.
    if (!pool || !ConformanceHolds(*ts)) CheckConformance(*ts, &report);
  }

  if (options.check_conventional) {
    report.conventional = ConventionalChecker::Check(*ts, options.num_threads);
    report.conventionally_serializable = report.conventional.serializable;
  }

  if (options.metrics != nullptr) {
    options.metrics->SetGauge("validate.oo_serializable",
                              report.oo_serializable ? 1 : 0);
    options.metrics->SetGauge("validate.conventional",
                              report.conventionally_serializable ? 1 : 0);
    options.metrics->SetGauge("validate.conform", report.conform ? 1 : 0);
  }

  if (report.oo_serializable) {
    Digraph order;
    for (ActionId t : ts->TopLevel()) order.AddNode(t.value);
    order.UnionWith(engine.TopLevelOrder());
    if (auto topo = order.TopologicalOrder()) {
      report.serialization_order.reserve(topo->size());
      for (Digraph::NodeId n : *topo) {
        report.serialization_order.push_back(ActionId(n));
      }
    }
  }

  if (options.metrics != nullptr) {
    MetricsRegistry* m = options.metrics;
    m->SetGauge("explain.witnesses",
                static_cast<int64_t>(report.witnesses.size()));
    for (const Witness& w : report.witnesses) {
      // Cycle witnesses: edge count; conformance: the violating pair
      // counts as one edge.
      uint64_t length = w.cycle.empty() ? 0 : w.cycle.size() - 1;
      m->GetHistogram("explain.witness_length")->Observe(length);
    }
    m->SetGauge("explain.provenance_edges",
                prov != nullptr ? static_cast<int64_t>(prov->EdgeCount())
                                : 0);
    uint64_t extract_total = 0;
    for (uint64_t ns : object_extract_ns) extract_total += ns;
    m->GetHistogram("explain.extract_ns")->Observe(extract_total);
  }

  if (options.record_provenance) {
    // Hand the evidence to the report so explanations (obs/explain.h)
    // outlive this engine.
    report.provenance = engine.TakeProvenance();
    report.schedules = engine.TakeSchedules();
  }
  return report;
}

}  // namespace oodb
