#include "schedule/validator.h"

#include <sstream>

#include "model/extension.h"

namespace oodb {

namespace {

std::string RenderCycle(const TransactionSystem& ts,
                        const std::vector<Digraph::NodeId>& cycle) {
  std::string out;
  for (size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) out += " -> ";
    out += ts.Describe(ActionId(cycle[i]));
  }
  return out;
}

void CheckConformance(const TransactionSystem& ts, ValidationReport* report) {
  // Def 7: the execution must respect the (inherited) precedence
  // relation. For every pair of executed primitive actions of one
  // top-level transaction: MustPrecede(a, b) => timestamp(a) < t(b).
  std::unordered_map<uint64_t, std::vector<ActionId>> prims_by_top;
  for (ObjectId o : ts.Objects()) {
    for (ActionId a : ts.ActionsOn(o)) {
      if (ts.action(a).is_virtual) continue;
      if (!ts.IsPrimitive(a) || ts.action(a).timestamp == 0) continue;
      prims_by_top[ts.action(a).top_level.value].push_back(a);
    }
  }
  for (const auto& [top, prims] : prims_by_top) {
    (void)top;
    for (size_t i = 0; i < prims.size(); ++i) {
      for (size_t j = 0; j < prims.size(); ++j) {
        if (i == j) continue;
        if (ts.MustPrecede(prims[i], prims[j]) &&
            ts.action(prims[i]).timestamp > ts.action(prims[j]).timestamp) {
          report->conform = false;
          report->diagnostics.push_back(
              "conformance violation: " + ts.Describe(prims[i]) +
              " must precede " + ts.Describe(prims[j]) +
              " but executed after it");
        }
      }
    }
  }
}

}  // namespace

std::string ValidationReport::Summary() const {
  std::ostringstream os;
  os << "oo-serializable=" << (oo_serializable ? "yes" : "no")
     << " conventional=" << (conventionally_serializable ? "yes" : "no")
     << " conform=" << (conform ? "yes" : "no")
     << " | prim-conflicts=" << stats.primitive_conflicts
     << " inherited=" << stats.inherited_txn_deps
     << " stopped=" << stats.stopped_inheritance
     << " added=" << stats.added_deps
     << " unordered=" << stats.unordered_conflicts;
  if (!diagnostics.empty()) {
    os << "\n";
    for (const std::string& d : diagnostics) os << "  ! " << d << "\n";
  }
  return os.str();
}

ValidationReport Validator::Validate(TransactionSystem* ts,
                                     const ValidationOptions& options) {
  ValidationReport report;

  if (options.apply_extension) {
    report.extension = SystemExtender::Extend(ts);
  }

  DependencyEngine engine(*ts);
  Status st = engine.Compute();
  if (!st.ok()) {
    report.oo_serializable = false;
    report.diagnostics.push_back(st.ToString());
    return report;
  }
  report.stats = engine.stats();

  // Per-object Def 13 and Def 16(ii).
  bool all_ok = true;
  for (const ObjectSchedule& sch : engine.schedules()) {
    if (auto cycle = sch.txn_deps.FindCycle()) {
      all_ok = false;
      report.diagnostics.push_back(
          "object " + ts->object(sch.object).name +
          ": transaction dependency cycle (Def 13 i): " +
          RenderCycle(*ts, *cycle));
    }
    if (auto cycle = sch.action_deps.FindCycle()) {
      all_ok = false;
      report.diagnostics.push_back(
          "object " + ts->object(sch.object).name +
          ": contradicting action dependencies (Def 13 ii): " +
          RenderCycle(*ts, *cycle));
    }
    if (!sch.AddedAcyclic()) {
      all_ok = false;
      Digraph combined = sch.action_deps;
      combined.UnionWith(sch.added_deps);
      report.diagnostics.push_back(
          "object " + ts->object(sch.object).name +
          ": added-dependency contradiction (Def 16 ii): " +
          RenderCycle(*ts, *combined.FindCycle()));
    }
  }
  report.oo_serializable = all_ok;

  if (options.check_global) {
    Digraph global;
    for (const ObjectSchedule& sch : engine.schedules()) {
      global.UnionWith(sch.action_deps);
      global.UnionWith(sch.added_deps);
    }
    report.globally_acyclic = !global.HasCycle();
    if (!report.globally_acyclic && all_ok) {
      report.diagnostics.push_back(
          "global dependency cycle spanning 3+ objects (stronger-than-"
          "Def-16 check): " +
          RenderCycle(*ts, *global.FindCycle()));
    }
  }

  if (options.check_conformance) {
    CheckConformance(*ts, &report);
  }

  if (options.check_conventional) {
    report.conventional = ConventionalChecker::Check(*ts);
    report.conventionally_serializable = report.conventional.serializable;
  }

  if (report.oo_serializable) {
    Digraph order;
    for (ActionId t : ts->TopLevel()) order.AddNode(t.value);
    order.UnionWith(engine.TopLevelOrder());
    if (auto topo = order.TopologicalOrder()) {
      report.serialization_order.reserve(topo->size());
      for (Digraph::NodeId n : *topo) {
        report.serialization_order.push_back(ActionId(n));
      }
    }
  }
  return report;
}

}  // namespace oodb
