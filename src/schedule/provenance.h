// Provenance: why does this dependency edge exist?
//
// The dependency engine derives every edge by one of four rules:
//   * Axiom 1  — two conflicting primitive actions, ordered by their
//     execution timestamps (the bootstrap);
//   * Def 10   — a conflicting, dependent action pair inherits its
//     direction to the calling actions as a transaction dependency;
//   * Def 11   — a transaction dependency recorded at some object is
//     placed as an action dependency at the object where both endpoints
//     are actions;
//   * Def 15   — when the endpoints live on different objects, the
//     transaction dependency is recorded redundantly at both as an
//     *added* action dependency.
//
// When ValidationOptions::record_provenance is set, the engine records
// the inducing fact for every edge it derives (first derivation wins,
// matching the fixpoint order). Chasing the records — Def 10 up the
// transaction trees, Def 11/15 across objects — expands any derived
// edge down to the primitive conflict pair that started it, including
// every Def 5 virtual-object hop along the way. That chain is what
// turns a bare "cycle of transaction ids" verdict into an explanation.
//
// The store is sharded by object: every engine phase that records
// writes only its own object's shard (cross-object Def 11/15 placement
// happens in the engines' serial merge phases), so recording needs no
// locks even under the pooled indexed engine. With recording off the
// hot path pays one null-pointer test per derived edge.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/ids.h"

namespace oodb {

/// The derivation rule that produced an edge.
enum class DepRule : uint8_t {
  kAxiom1,  ///< primitive conflict ordered by timestamps
  kDef10,   ///< inherited from a dependent, conflicting action pair
  kDef11,   ///< placement of a transaction dependency (same object)
  kDef15,   ///< added cross-object record of a transaction dependency
};

const char* DepRuleName(DepRule rule);

/// Which of an object schedule's three relations an edge belongs to.
enum class DepRelation : uint8_t {
  kAction,  ///< action dependency relation (Def 11)
  kTxn,     ///< transaction dependency relation (Def 10)
  kAdded,   ///< added action dependency relation (Def 15)
};

const char* DepRelationName(DepRelation relation);

/// The inducing fact behind one edge. For kAxiom1 the cause pair is the
/// edge itself (the ordered primitives); for kDef10 it is the dependent
/// action pair whose direction was inherited; for kDef11/kDef15 it is
/// the transaction dependency being placed, with `object` naming the
/// object where that dependency was recorded.
struct EdgeProvenance {
  DepRule rule = DepRule::kAxiom1;
  ObjectId object;
  ActionId cause_from, cause_to;
};

/// One link of an expanded derivation chain: the edge being explained,
/// where it lives, and the fact that induced it.
struct ProvenanceStep {
  DepRule rule = DepRule::kAxiom1;
  DepRelation relation = DepRelation::kAction;
  ObjectId object;              ///< object whose relation holds the edge
  ActionId from, to;            ///< the explained edge
  ObjectId cause_object;        ///< where the inducing fact lives
  ActionId cause_from, cause_to;
};

/// Records one EdgeProvenance per derived edge, sharded by the object
/// whose relation received the edge. First writer wins: an edge that is
/// re-derivable keeps its original (fixpoint-order) explanation.
class ProvenanceStore {
 public:
  /// `num_objects` and `num_actions` fix the shard count and the edge
  /// key packing; both are final once the Def 5 extension has run.
  ProvenanceStore(size_t num_objects, size_t num_actions);

  void Record(DepRelation relation, ObjectId at, ActionId from, ActionId to,
              EdgeProvenance provenance);

  /// The recorded provenance of the edge, or null when the edge was
  /// never derived (or recording was off while it was).
  const EdgeProvenance* Find(DepRelation relation, ObjectId at,
                             ActionId from, ActionId to) const;

  /// Expands the edge down to its primitive conflict: the first step
  /// explains (from, to) itself, each following step explains that
  /// step's inducing fact, and the last step is the Axiom 1 record —
  /// unless the chain dead-ends on an unrecorded edge, in which case it
  /// stops early. Bounded; derivations are well-founded but the bound
  /// keeps a corrupted store from looping.
  std::vector<ProvenanceStep> Chain(DepRelation relation, ObjectId at,
                                    ActionId from, ActionId to) const;

  /// Total recorded edges, across all shards and relations.
  size_t EdgeCount() const;

 private:
  uint64_t EdgeKey(ActionId from, ActionId to) const {
    return from.value * num_actions_ + to.value;
  }

  struct Shard {
    std::unordered_map<uint64_t, EdgeProvenance> relations[3];
  };
  size_t num_actions_;
  std::vector<Shard> shards_;  // index = ObjectId.value
};

/// The minimal evidence behind one failed verdict: for a cycle verdict
/// the shortest offending cycle, edge by edge, each expanded to its
/// derivation chain (when provenance was recorded); for a Def 7 verdict
/// the violating primitive pair plus the precedence path that orders
/// them.
struct Witness {
  enum class Kind {
    kTxnCycle,     ///< Def 13 (i): transaction dependency cycle
    kActionCycle,  ///< Def 13 (ii): contradicting action dependencies
    kAddedCycle,   ///< Def 16 (ii): contradiction incl. added deps
    kGlobalCycle,  ///< the optional stronger-than-Def-16 global check
    kConformance,  ///< Def 7: execution violates precedence
  };

  struct Edge {
    ActionId from, to;
    DepRelation relation = DepRelation::kAction;
    /// Derivation down to the primitive conflict; empty when provenance
    /// was not recorded.
    std::vector<ProvenanceStep> chain;
  };

  Kind kind;
  /// Object whose relation failed; invalid for kGlobalCycle and
  /// kConformance.
  ObjectId object;
  /// For cycle kinds: the offending cycle, first == last. For
  /// kConformance: {violating_first, violated_second}.
  std::vector<ActionId> cycle;
  std::vector<Edge> edges;
  /// For kConformance: the precedence path (ordered siblings of one
  /// action set) that forces cycle[0] before cycle[1].
  std::vector<ActionId> precedence_path;
};

const char* WitnessKindName(Witness::Kind kind);

}  // namespace oodb
