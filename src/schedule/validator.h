// Validator: the end-to-end oo-serializability check for a recorded
// execution (Defs 13 and 16), with the conventional baseline and the
// Def 7 conformance check alongside.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/extension.h"
#include "model/transaction_system.h"
#include "schedule/conventional.h"
#include "schedule/dependency_engine.h"

namespace oodb {

/// Options controlling a validation run.
struct ValidationOptions {
  /// Apply the Def 5 extension before computing dependencies. Required
  /// whenever a transaction and a called action access the same object
  /// (e.g. B-link rearrangement). Leave on unless the caller extended
  /// the system already.
  bool apply_extension = true;

  /// Check Def 7 conformance: the execution order of primitive actions
  /// must respect the (inherited) intra-transaction precedence relation.
  bool check_conformance = true;

  /// Also run the conventional (flat page-level) serializability check
  /// for comparison.
  bool check_conventional = true;

  /// Additionally require global acyclicity of the union of all
  /// dependency relations across objects. This is strictly stronger than
  /// the paper's distributed condition (Def 16 checks each object's
  /// relation separately, which cannot see cycles threading through
  /// three or more objects); see EXPERIMENTS.md for the discussion.
  bool check_global = false;

  /// Worker threads for the analysis pipeline. 1 (the default) runs the
  /// original serial reference engine unchanged. Any other value
  /// selects the indexed engine — memoized conflict pairs, worklist
  /// fixpoint, per-object stages fanned out over that many threads
  /// (0 = hardware concurrency) — which produces identical reports.
  size_t num_threads = 1;

  /// When set, the run publishes into the registry: the engine's dep.*
  /// family (stage timings, worklist, memo, final stats), the ext.*
  /// extension gauges, the validate.* verdict gauges (1 = holds), and
  /// the explain.* witness family (witness count and lengths,
  /// provenance edges, extraction time).
  MetricsRegistry* metrics = nullptr;
  /// When set, the Def 5 extension records its "extension.split"
  /// instants here.
  Tracer* tracer = nullptr;

  /// Record edge provenance during the dependency computation and keep
  /// the computed schedules on the report, so every witness edge can be
  /// expanded down to its primitive conflict (obs/explain.h renders
  /// them). Off by default: the hot path then pays one null test per
  /// derived edge and the report carries no relations.
  bool record_provenance = false;
};

/// Everything a validation run learned about one execution.
struct ValidationReport {
  /// Def 16 verdict (per-object Def 13 + added-dependency acyclicity).
  bool oo_serializable = false;
  /// Conventional conflict serializability of the primitive layer.
  bool conventionally_serializable = false;
  /// Def 7 conformance.
  bool conform = true;
  /// Verdict of the optional strictly-global acyclicity check.
  bool globally_acyclic = true;

  DependencyStats stats;
  ConventionalResult conventional;
  ExtensionStats extension;

  /// Object names that failed Def 13 (i) / (ii) or Def 16 (ii), with the
  /// offending cycle rendered, plus conformance violations. Cycles are
  /// minimal (BFS shortest) and byte-stable across runs.
  std::vector<std::string> diagnostics;

  /// One witness per failed Def 13 / Def 16 / Def 7 verdict: the
  /// shortest offending cycle (or violating pair), with each edge's
  /// derivation chain attached when `record_provenance` was on.
  std::vector<Witness> witnesses;

  /// The recorded edge provenance; null unless
  /// ValidationOptions::record_provenance was set.
  std::shared_ptr<const ProvenanceStore> provenance;

  /// The computed object schedules (Def 6 relations, Def 15 added
  /// relations); kept only when `record_provenance` was set, so the
  /// explainer can render and cross-reference them.
  std::vector<ObjectSchedule> schedules;

  /// One serial order of the top-level transactions equivalent to the
  /// execution (empty when not oo-serializable).
  std::vector<ActionId> serialization_order;

  std::string Summary() const;
};

/// Runs the full pipeline: extension (Def 5) -> dependency fixpoint
/// (Defs 10/11/15) -> per-object checks (Def 13) -> system check
/// (Def 16) -> baseline and conformance.
class Validator {
 public:
  /// Validates in place; `ts` is mutated by the extension step.
  static ValidationReport Validate(TransactionSystem* ts,
                                   const ValidationOptions& options = {});
};

}  // namespace oodb
