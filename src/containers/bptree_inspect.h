// Structural invariant checking for the B+ tree (test / debugging
// support). Walks the raw object states — outside any transaction — and
// verifies the B-link invariants that concurrent splits must preserve:
//
//   * routing pages are sorted and carry the low sentinel;
//   * every key stored in a leaf is below the leaf's high key;
//   * the leaf chain (B-links) is acyclic, left-to-right ordered by
//     high key, and covers every leaf reachable through routing;
//   * the union of leaf contents equals the logical contents.
//
// Call only while no transactions are running.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "cc/database.h"

namespace oodb {

struct BpTreeInspection {
  bool ok = true;
  std::vector<std::string> problems;

  size_t depth = 0;           ///< routing depth root..leaf
  size_t node_count = 0;      ///< inner nodes reachable via routing
  size_t leaf_count = 0;      ///< leaves on the chain
  size_t chain_only_leaves = 0;  ///< reachable via B-link but not routing
  std::map<std::string, std::string> contents;  ///< key -> value

  std::string Summary() const;
};

/// Inspects the tree rooted at `tree` (created by BpTree::Create).
BpTreeInspection InspectBpTree(Database* db, ObjectId tree);

}  // namespace oodb
