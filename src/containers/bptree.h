// A B+ tree built from encapsulated objects, following section 2 of the
// paper: a BpTree object routes through Node objects into Leaf objects
// whose keys live on Page objects; every hop is a message, so the
// concurrency control sees the full call tree.
//
// Design points taken from the paper:
//   * keyed operations commute on distinct keys at the tree, node, and
//     leaf levels, while the underlying page operations conflict — the
//     Example 1 situation ("operations on these keys will often conflict
//     at the page level but commute at the node level");
//   * structural changes run as subtransactions called from the insert
//     itself: a full leaf calls split() on itself, a full node calls
//     split() on itself from insertSep() — the Def 5 virtual-object case
//     ("the rearrangement of the father(s) may be implemented as a
//     single subtransaction, called from the insert subtransaction");
//   * lock coupling is replaced by B-links [15]: after a split, the old
//     leaf/node keeps a link to the new sibling and a high key, and
//     operations that overshoot forward themselves along the link.
//
// Deletion does not rebalance (erase leaves sparse pages); this matches
// common practice and keeps splits the only structural change.

#pragma once

#include <string>

#include "cc/database.h"
#include "storage/page.h"

namespace oodb {

/// State of the BpTree root object.
struct BpTreeState : public ObjectState {
  ObjectId root;          ///< current root (Leaf or Node object)
  size_t leaf_capacity;   ///< max entries per leaf page
  size_t fanout;          ///< max routing entries per node page
};

/// State of an inner node: routing entries live on `page` as
/// separator -> child-object-id; "" is the low sentinel.
struct NodeState : public ObjectState {
  ObjectId page;
  ObjectId next;          ///< B-link right sibling (invalid = none)
  std::string high_key;   ///< "" = +infinity
  size_t fanout;
};

/// State of a leaf: data entries live on `page`.
struct LeafState : public ObjectState {
  ObjectId page;
  ObjectId next;          ///< B-link right sibling (invalid = none)
  std::string high_key;   ///< "" = +infinity
  size_t capacity;
};

/// Object types with the keyed commutativity of Example 1.
const ObjectType* BpTreeObjectType();
const ObjectType* NodeObjectType();
const ObjectType* LeafObjectType();

/// B+ tree public interface: type registration and instance creation.
class BpTree {
 public:
  /// Registers all tree/node/leaf methods (page methods must also be
  /// registered; see RegisterPageMethods).
  static void RegisterMethods(Database* db);

  /// Creates an empty tree whose root is a single leaf.
  static ObjectId Create(Database* db, const std::string& name,
                         size_t leaf_capacity, size_t fanout);

  // Invocation builders for the public tree methods.
  static Invocation Insert(const std::string& key, const std::string& value) {
    return Invocation("insert", {Value(key), Value(value)});
  }
  static Invocation Search(const std::string& key) {
    return Invocation("search", {Value(key)});
  }
  static Invocation Erase(const std::string& key) {
    return Invocation("erase", {Value(key)});
  }
  /// Range scan over [lo, hi] (inclusive). The scan's semantic lock
  /// conflicts exactly with mutations of keys inside the range —
  /// predicate-style phantom protection.
  static Invocation Scan(const std::string& lo, const std::string& hi) {
    return Invocation("scan", {Value(lo), Value(hi)});
  }
};

}  // namespace oodb
