#include "containers/bptree.h"

#include <atomic>

#include "containers/codec.h"
#include "containers/page_ops.h"
#include "model/type_registry.h"

namespace oodb {

namespace {

std::atomic<uint64_t> g_name_counter{0};

std::string FreshName(const char* prefix) {
  return std::string(prefix) + std::to_string(++g_name_counter);
}

/// Keyed commutativity shared by tree, node, and leaf: operations on
/// distinct keys commute; same-key pairs conflict unless both read.
/// Range scans conflict exactly with mutations of keys inside their
/// range — predicate locking against phantoms, in commutativity form.
std::unique_ptr<PredicateCommutativity> KeyedSpec() {
  auto spec = std::make_unique<PredicateCommutativity>();
  auto diff = PredicateCommutativity::DifferentParam(0);
  spec->SetPredicate("insert", "insert", diff);
  spec->SetPredicate("insert", "search", diff);
  spec->SetPredicate("insert", "erase", diff);
  spec->SetPredicate("erase", "erase", diff);
  spec->SetPredicate("erase", "search", diff);
  spec->SetCommutes("search", "search");
  // Proved by the inference engine's deep-observer rule: search and
  // scan transitively only observe (Page.read / Page.scan at the
  // bottom), so any interleaving is order-free regardless of keys.
  spec->SetCommutes("scan", "search");
  // scan(lo, hi) commutes with a keyed mutation iff the key lies
  // outside [lo, hi] (the registration order fixes a = scan).
  auto outside_range = [](const Invocation& scan, const Invocation& keyed) {
    if (scan.params.size() < 2 || keyed.params.empty()) return false;
    const std::string& lo = scan.params[0].AsString();
    const std::string& hi = scan.params[1].AsString();
    const std::string& key = keyed.params[0].AsString();
    return key < lo || key > hi;
  };
  spec->SetPredicate("scan", "insert", outside_range);
  spec->SetPredicate("scan", "erase", outside_range);
  spec->SetCommutes("scan", "scan");
  spec->SetCommutes("scan", "search");
  // split / insertSep / growRoot stay unregistered: they conflict with
  // everything (structural changes serialize per object).
  return spec;
}

struct LeafSnapshot {
  ObjectId page, next;
  std::string high_key;
  size_t capacity;
};

LeafSnapshot SnapLeaf(MethodContext& ctx) {
  return ctx.WithState<LeafState>([](LeafState* s) {
    return LeafSnapshot{s->page, s->next, s->high_key, s->capacity};
  });
}

struct NodeSnapshot {
  ObjectId page, next;
  std::string high_key;
  size_t fanout;
};

NodeSnapshot SnapNode(MethodContext& ctx) {
  return ctx.WithState<NodeState>([](NodeState* s) {
    return NodeSnapshot{s->page, s->next, s->high_key, s->fanout};
  });
}

/// True when `key` falls beyond this node/leaf after a split.
bool Overshoots(const std::string& key, const std::string& high_key) {
  return !high_key.empty() && key >= high_key;
}

constexpr int kMaxSplitRetries = 4;

// ---------------------------------------------------------------------
// Leaf methods
// ---------------------------------------------------------------------

Status LeafInsert(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("leaf insert needs key, value");
  }
  const std::string key = params[0].AsString();
  InsertOutcome outcome;
  for (int attempt = 0; attempt < kMaxSplitRetries; ++attempt) {
    LeafSnapshot snap = SnapLeaf(ctx);
    if (Overshoots(key, snap.high_key)) {
      // B-link forward. One split separator can ride each result
      // upward: prefer our own (earlier in this call), else relay the
      // forwarded leaf's, so chained splits eventually get posted to
      // the parent instead of lingering as chain-only leaves.
      Value fwd;
      OODB_RETURN_IF_ERROR(
          ctx.Call(snap.next, Invocation("insert", params), &fwd));
      InsertOutcome inner = InsertOutcome::Decode(fwd);
      outcome.had_old = inner.had_old;
      outcome.old_value = inner.old_value;
      if (!outcome.split && inner.split) {
        outcome.split = true;
        outcome.split_sep = inner.split_sep;
        outcome.split_child = inner.split_child;
      }
      *result = outcome.Encode();
      return Status::OK();
    }
    Value old;
    OODB_RETURN_IF_ERROR(
        ctx.Call(snap.page, Invocation("read", {params[0]}), &old));
    Status wr = ctx.Call(snap.page, Invocation("write", params));
    if (wr.ok()) {
      outcome.had_old = !old.IsNone();
      outcome.old_value = old.AsString();
      if (outcome.had_old) {
        ctx.SetCompensation(
            Invocation("insert", {params[0], Value(outcome.old_value)}));
      } else {
        ctx.SetCompensation(Invocation("erase", {params[0]}));
      }
      *result = outcome.Encode();
      return Status::OK();
    }
    if (wr.code() != StatusCode::kCapacity) return wr;
    // Full: split ourselves (a subtransaction on the same object — the
    // paper's rearrange case) and retry.
    Value split_result;
    OODB_RETURN_IF_ERROR(
        ctx.Call(ctx.self(), Invocation("split"), &split_result));
    InsertOutcome split = InsertOutcome::Decode(split_result);
    if (split.split && !outcome.split) {
      outcome.split = true;
      outcome.split_sep = split.split_sep;
      outcome.split_child = split.split_child;
    }
  }
  return Status::Capacity("leaf keeps filling up during insert of '" +
                          key + "'");
}

Status LeafSplit(MethodContext& ctx, const ValueList&, Value* result) {
  InsertOutcome outcome;
  LeafSnapshot snap = SnapLeaf(ctx);
  Value count;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("count"), &count));
  if (static_cast<size_t>(count.AsInt()) < snap.capacity) {
    *result = outcome.Encode();  // someone else already made room
    return Status::OK();
  }
  Value scan;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("scan"), &scan));
  std::vector<std::string> fields = SplitFields(scan.AsString());
  size_t entries = fields.size() / 2;
  size_t mid = entries / 2;
  const std::string sep = fields[2 * mid];

  // Build the right sibling: fresh page + leaf, inheriting our link.
  ObjectId new_page = CreatePage(ctx.db(), FreshName("LeafPage"),
                                 snap.capacity);
  auto leaf_state = std::make_unique<LeafState>();
  leaf_state->page = new_page;
  leaf_state->next = snap.next;
  leaf_state->high_key = snap.high_key;
  leaf_state->capacity = snap.capacity;
  ObjectId new_leaf = ctx.CreateObject(LeafObjectType(), FreshName("Leaf"),
                                       std::move(leaf_state));
  for (size_t i = mid; i < entries; ++i) {
    OODB_RETURN_IF_ERROR(ctx.Call(
        new_page, Invocation("write", {Value(fields[2 * i]),
                                       Value(fields[2 * i + 1])})));
  }
  // Publish the B-link before removing moved keys, so overshooting
  // operations always find their data on one side or the other.
  ctx.WithState<LeafState>([&](LeafState* s) {
    s->next = new_leaf;
    s->high_key = sep;
    return 0;
  });
  for (size_t i = mid; i < entries; ++i) {
    OODB_RETURN_IF_ERROR(
        ctx.Call(snap.page, Invocation("erase", {Value(fields[2 * i])})));
  }
  outcome.split = true;
  outcome.split_sep = sep;
  outcome.split_child = new_leaf.value;
  *result = outcome.Encode();
  // No compensation: splits are content-neutral reorganizations.
  return Status::OK();
}

Status LeafSearch(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  LeafSnapshot snap = SnapLeaf(ctx);
  if (Overshoots(params[0].AsString(), snap.high_key)) {
    return ctx.Call(snap.next, Invocation("search", params), result);
  }
  return ctx.Call(snap.page, Invocation("read", {params[0]}), result);
}

Status LeafErase(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  LeafSnapshot snap = SnapLeaf(ctx);
  if (Overshoots(params[0].AsString(), snap.high_key)) {
    return ctx.Call(snap.next, Invocation("erase", params), result);
  }
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.page, Invocation("erase", {params[0]}), &old));
  if (!old.IsNone()) {
    ctx.SetCompensation(Invocation("insert", {params[0], old}));
  }
  *result = old;
  return Status::OK();
}

Status LeafScan(MethodContext& ctx, const ValueList& params,
                Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("scan needs lo, hi");
  }
  const std::string lo = params[0].AsString();
  const std::string hi = params[1].AsString();
  LeafSnapshot snap = SnapLeaf(ctx);
  if (Overshoots(lo, snap.high_key)) {
    return ctx.Call(snap.next, Invocation("scan", params), result);
  }
  Value page_scan;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("scan"), &page_scan));
  std::vector<std::string> fields = SplitFields(page_scan.AsString());
  std::vector<std::string> out;
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    if (fields[i] >= lo && fields[i] <= hi) {
      out.push_back(fields[i]);
      out.push_back(fields[i + 1]);
    }
  }
  // Continue along the B-link while the next leaf can hold in-range
  // keys (its lowest key is our high key).
  if (!snap.high_key.empty() && snap.high_key <= hi && snap.next.valid()) {
    Value rest;
    OODB_RETURN_IF_ERROR(ctx.Call(
        snap.next,
        Invocation("scan", {Value(snap.high_key), Value(hi)}), &rest));
    std::vector<std::string> rest_fields = SplitFields(rest.AsString());
    out.insert(out.end(), rest_fields.begin(), rest_fields.end());
  }
  *result = Value(JoinFields(out));
  return Status::OK();
}

// ---------------------------------------------------------------------
// Node methods
// ---------------------------------------------------------------------

Result<ObjectId> RouteChild(MethodContext& ctx, ObjectId page,
                            const Value& key) {
  Value child;
  Status st = ctx.Call(page, Invocation("routeLE", {key}), &child);
  if (!st.ok()) return st;
  if (child.IsNone()) {
    return Status::Internal("node page missing the low sentinel");
  }
  return ObjectId(std::stoull(child.AsString()));
}

Status NodeInsert(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("node insert needs key, value");
  }
  const std::string key = params[0].AsString();
  NodeSnapshot snap = SnapNode(ctx);
  if (Overshoots(key, snap.high_key)) {
    return ctx.Call(snap.next, Invocation("insert", params), result);
  }
  OODB_ASSIGN_OR_RETURN(ObjectId child,
                        RouteChild(ctx, snap.page, params[0]));
  Value down;
  OODB_RETURN_IF_ERROR(ctx.Call(child, Invocation("insert", params), &down));
  InsertOutcome outcome = InsertOutcome::Decode(down);
  if (outcome.split) {
    // The child split: record the new separator in ourselves — a call
    // on our own object, serialized by the structural lock.
    Value sep_result;
    OODB_RETURN_IF_ERROR(ctx.Call(
        ctx.self(),
        Invocation("insertSep",
                   {Value(outcome.split_sep),
                    Value(std::to_string(outcome.split_child))}),
        &sep_result));
    InsertOutcome own = InsertOutcome::Decode(sep_result);
    outcome.split = own.split;
    outcome.split_sep = own.split_sep;
    outcome.split_child = own.split_child;
  }
  if (outcome.had_old) {
    ctx.SetCompensation(
        Invocation("insert", {params[0], Value(outcome.old_value)}));
  } else {
    ctx.SetCompensation(Invocation("erase", {params[0]}));
  }
  *result = outcome.Encode();
  return Status::OK();
}

Status NodeSplit(MethodContext& ctx, const ValueList&, Value* result);

Status NodeInsertSep(MethodContext& ctx, const ValueList& params,
                     Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("insertSep needs separator, child");
  }
  const std::string sep = params[0].AsString();
  InsertOutcome outcome;
  for (int attempt = 0; attempt < kMaxSplitRetries; ++attempt) {
    NodeSnapshot snap = SnapNode(ctx);
    if (Overshoots(sep, snap.high_key)) {
      Value fwd;
      OODB_RETURN_IF_ERROR(
          ctx.Call(snap.next, Invocation("insertSep", params), &fwd));
      // Relay the forwarded node's split (or our own earlier one) so
      // the caller can post it one level up.
      InsertOutcome inner = InsertOutcome::Decode(fwd);
      if (!outcome.split && inner.split) outcome = inner;
      *result = outcome.Encode();
      return Status::OK();
    }
    Status wr = ctx.Call(snap.page, Invocation("write", params));
    if (wr.ok()) {
      *result = outcome.Encode();
      return Status::OK();
    }
    if (wr.code() != StatusCode::kCapacity) return wr;
    Value split_result;
    OODB_RETURN_IF_ERROR(
        ctx.Call(ctx.self(), Invocation("split"), &split_result));
    InsertOutcome split = InsertOutcome::Decode(split_result);
    if (split.split && !outcome.split) {
      outcome.split = true;
      outcome.split_sep = split.split_sep;
      outcome.split_child = split.split_child;
    }
  }
  return Status::Capacity("node keeps filling up");
}

Status NodeSplit(MethodContext& ctx, const ValueList&, Value* result) {
  InsertOutcome outcome;
  NodeSnapshot snap = SnapNode(ctx);
  Value count;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("count"), &count));
  if (static_cast<size_t>(count.AsInt()) < snap.fanout) {
    *result = outcome.Encode();
    return Status::OK();
  }
  Value scan;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("scan"), &scan));
  std::vector<std::string> fields = SplitFields(scan.AsString());
  size_t entries = fields.size() / 2;
  size_t mid = entries / 2;
  if (mid == 0) return Status::Internal("node split with < 2 entries");
  const std::string sep = fields[2 * mid];

  ObjectId new_page =
      CreatePage(ctx.db(), FreshName("NodePage"), snap.fanout);
  auto node_state = std::make_unique<NodeState>();
  node_state->page = new_page;
  node_state->next = snap.next;
  node_state->high_key = snap.high_key;
  node_state->fanout = snap.fanout;
  ObjectId new_node = ctx.CreateObject(NodeObjectType(), FreshName("Node"),
                                       std::move(node_state));
  for (size_t i = mid; i < entries; ++i) {
    OODB_RETURN_IF_ERROR(ctx.Call(
        new_page, Invocation("write", {Value(fields[2 * i]),
                                       Value(fields[2 * i + 1])})));
  }
  ctx.WithState<NodeState>([&](NodeState* s) {
    s->next = new_node;
    s->high_key = sep;
    return 0;
  });
  for (size_t i = mid; i < entries; ++i) {
    OODB_RETURN_IF_ERROR(
        ctx.Call(snap.page, Invocation("erase", {Value(fields[2 * i])})));
  }
  outcome.split = true;
  outcome.split_sep = sep;
  outcome.split_child = new_node.value;
  *result = outcome.Encode();
  return Status::OK();
}

Status NodeSearch(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  NodeSnapshot snap = SnapNode(ctx);
  if (Overshoots(params[0].AsString(), snap.high_key)) {
    return ctx.Call(snap.next, Invocation("search", params), result);
  }
  OODB_ASSIGN_OR_RETURN(ObjectId child,
                        RouteChild(ctx, snap.page, params[0]));
  return ctx.Call(child, Invocation("search", params), result);
}

Status NodeScan(MethodContext& ctx, const ValueList& params,
                Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("scan needs lo, hi");
  }
  NodeSnapshot snap = SnapNode(ctx);
  if (Overshoots(params[0].AsString(), snap.high_key)) {
    return ctx.Call(snap.next, Invocation("scan", params), result);
  }
  // Descend toward the leaf holding lo; the leaf-level B-link chain
  // carries the scan rightward across leaves (and across our own node
  // boundary, so no second descent is needed).
  OODB_ASSIGN_OR_RETURN(ObjectId child,
                        RouteChild(ctx, snap.page, params[0]));
  return ctx.Call(child, Invocation("scan", params), result);
}

Status NodeErase(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  NodeSnapshot snap = SnapNode(ctx);
  if (Overshoots(params[0].AsString(), snap.high_key)) {
    return ctx.Call(snap.next, Invocation("erase", params), result);
  }
  OODB_ASSIGN_OR_RETURN(ObjectId child,
                        RouteChild(ctx, snap.page, params[0]));
  Value old;
  OODB_RETURN_IF_ERROR(ctx.Call(child, Invocation("erase", params), &old));
  if (!old.IsNone()) {
    ctx.SetCompensation(Invocation("insert", {params[0], old}));
  }
  *result = old;
  return Status::OK();
}

// ---------------------------------------------------------------------
// Tree methods
// ---------------------------------------------------------------------

Status TreeInsert(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("tree insert needs key, value");
  }
  ObjectId root = ctx.WithState<BpTreeState>(
      [](BpTreeState* s) { return s->root; });
  Value down;
  OODB_RETURN_IF_ERROR(ctx.Call(root, Invocation("insert", params), &down));
  InsertOutcome outcome = InsertOutcome::Decode(down);
  if (outcome.split) {
    // Grow a new root above the old one.
    size_t fanout = ctx.WithState<BpTreeState>(
        [](BpTreeState* s) { return s->fanout; });
    ObjectId new_page = CreatePage(ctx.db(), FreshName("NodePage"), fanout);
    auto node_state = std::make_unique<NodeState>();
    node_state->page = new_page;
    node_state->fanout = fanout;
    ObjectId new_root = ctx.CreateObject(
        NodeObjectType(), FreshName("Node"), std::move(node_state));
    OODB_RETURN_IF_ERROR(ctx.Call(
        new_page, Invocation("write", {Value(""),
                                       Value(std::to_string(root.value))})));
    OODB_RETURN_IF_ERROR(ctx.Call(
        new_page,
        Invocation("write",
                   {Value(outcome.split_sep),
                    Value(std::to_string(outcome.split_child))})));
    bool installed = ctx.WithState<BpTreeState>([&](BpTreeState* s) {
      if (s->root == root) {
        s->root = new_root;
        return true;
      }
      return false;
    });
    if (!installed) {
      // A concurrent insert grew the root first; hand our separator to
      // the current root instead.
      ObjectId current = ctx.WithState<BpTreeState>(
          [](BpTreeState* s) { return s->root; });
      OODB_RETURN_IF_ERROR(ctx.Call(
          current,
          Invocation("insertSep",
                     {Value(outcome.split_sep),
                      Value(std::to_string(outcome.split_child))})));
    }
  }
  if (outcome.had_old) {
    ctx.SetCompensation(
        Invocation("insert", {params[0], Value(outcome.old_value)}));
  } else {
    ctx.SetCompensation(Invocation("erase", {params[0]}));
  }
  *result = Value(outcome.had_old ? 0 : 1);  // 1 = newly inserted
  return Status::OK();
}

Status TreeSearch(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  ObjectId root = ctx.WithState<BpTreeState>(
      [](BpTreeState* s) { return s->root; });
  return ctx.Call(root, Invocation("search", params), result);
}

Status TreeScan(MethodContext& ctx, const ValueList& params,
                Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("scan needs lo, hi");
  }
  ObjectId root = ctx.WithState<BpTreeState>(
      [](BpTreeState* s) { return s->root; });
  return ctx.Call(root, Invocation("scan", params), result);
}

Status TreeErase(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  ObjectId root = ctx.WithState<BpTreeState>(
      [](BpTreeState* s) { return s->root; });
  Value old;
  OODB_RETURN_IF_ERROR(ctx.Call(root, Invocation("erase", params), &old));
  if (!old.IsNone()) {
    ctx.SetCompensation(Invocation("insert", {params[0], old}));
  }
  *result = old;
  return Status::OK();
}

}  // namespace

const ObjectType* BpTreeObjectType() {
  static const ObjectType* type =
      new ObjectType("BpTree", KeyedSpec(), /*primitive=*/false);
  return type;
}

const ObjectType* NodeObjectType() {
  static const ObjectType* type =
      new ObjectType("Node", KeyedSpec(), /*primitive=*/false);
  return type;
}

const ObjectType* LeafObjectType() {
  static const ObjectType* type =
      new ObjectType("Leaf", KeyedSpec(), /*primitive=*/false);
  return type;
}

void BpTree::RegisterMethods(Database* db) {
  TypeRegistry::Global().Register(BpTreeObjectType());
  TypeRegistry::Global().Register(NodeObjectType());
  TypeRegistry::Global().Register(LeafObjectType());
  db->Register(LeafObjectType(), "insert", LeafInsert);
  db->Register(LeafObjectType(), "split", LeafSplit);
  db->Register(LeafObjectType(), "search", LeafSearch);
  db->Register(LeafObjectType(), "erase", LeafErase);
  db->Register(LeafObjectType(), "scan", LeafScan);
  db->Register(NodeObjectType(), "insert", NodeInsert);
  db->Register(NodeObjectType(), "insertSep", NodeInsertSep);
  db->Register(NodeObjectType(), "split", NodeSplit);
  db->Register(NodeObjectType(), "search", NodeSearch);
  db->Register(NodeObjectType(), "erase", NodeErase);
  db->Register(NodeObjectType(), "scan", NodeScan);
  db->Register(BpTreeObjectType(), "insert", TreeInsert);
  db->Register(BpTreeObjectType(), "search", TreeSearch);
  db->Register(BpTreeObjectType(), "erase", TreeErase);
  db->Register(BpTreeObjectType(), "scan", TreeScan);

  // Schema traits. The self-typed targets (Leaf.insert -> Leaf.insert
  // via the B-link, Leaf.insert -> Leaf.split on overflow, Node.insert
  // -> Node.insertSep after a child split) are the Def 5 virtual-object
  // sites of section 2; oodb_lint reports them as such.
  const std::vector<ValueList> keyed2 = {{Value("k1"), Value("v1")},
                                         {Value("k2"), Value("v2")}};
  const std::vector<ValueList> keyed1 = {{Value("k1")}, {Value("k2")}};
  const std::vector<ValueList> ranges = {{Value("a"), Value("m")},
                                         {Value("n"), Value("z")}};
  // Undo traits: inserts compensate with erase (or insert of the old
  // value), erases with insert; erase of an absent key is a no-op. The
  // structural methods — split, insertSep — reorganize pages without
  // changing the tree's abstract contents, so they are undo_free: open
  // nesting lets a split survive the abort of the insert that caused it.
  db->DeclareTraits(LeafObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"Leaf", "insert"},
                               {"Leaf", "split"},
                               {"Page", "read"},
                               {"Page", "write"}},
                     .samples = keyed2,
                     .compensations = {"insert", "erase"}});
  db->DeclareTraits(LeafObjectType(), "split",
                    {.observer = false,
                     .calls = {{"Page", "count"},
                               {"Page", "scan"},
                               {"Page", "write"},
                               {"Page", "erase"}},
                     .samples = {{}},
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(LeafObjectType(), "search",
                    {.observer = true,
                     .calls = {{"Leaf", "search"}, {"Page", "read"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(LeafObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"Leaf", "erase"}, {"Page", "erase"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(LeafObjectType(), "scan",
                    {.observer = true,
                     .calls = {{"Leaf", "scan"}, {"Page", "scan"}},
                     .samples = ranges,
                     .compensations = {}});
  db->DeclareTraits(NodeObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"Leaf", "insert"},
                               {"Node", "insert"},
                               {"Node", "insertSep"},
                               {"Page", "routeLE"}},
                     .samples = keyed2,
                     .compensations = {"insert", "erase"}});
  db->DeclareTraits(NodeObjectType(), "insertSep",
                    {.observer = false,
                     .calls = {{"Node", "insertSep"},
                               {"Node", "split"},
                               {"Page", "write"}},
                     .samples = keyed2,
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(NodeObjectType(), "split",
                    {.observer = false,
                     .calls = {{"Page", "count"},
                               {"Page", "scan"},
                               {"Page", "write"},
                               {"Page", "erase"}},
                     .samples = {{}},
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(NodeObjectType(), "search",
                    {.observer = true,
                     .calls = {{"Leaf", "search"},
                               {"Node", "search"},
                               {"Page", "routeLE"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(NodeObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"Leaf", "erase"},
                               {"Node", "erase"},
                               {"Page", "routeLE"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(NodeObjectType(), "scan",
                    {.observer = true,
                     .calls = {{"Leaf", "scan"},
                               {"Node", "scan"},
                               {"Page", "routeLE"}},
                     .samples = ranges,
                     .compensations = {}});
  db->DeclareTraits(BpTreeObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"Leaf", "insert"},
                               {"Node", "insert"},
                               {"Node", "insertSep"},
                               {"Page", "write"}},
                     .samples = keyed2,
                     .compensations = {"insert", "erase"}});
  db->DeclareTraits(BpTreeObjectType(), "search",
                    {.observer = true,
                     .calls = {{"Leaf", "search"}, {"Node", "search"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(BpTreeObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"Leaf", "erase"}, {"Node", "erase"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(BpTreeObjectType(), "scan",
                    {.observer = true,
                     .calls = {{"Leaf", "scan"}, {"Node", "scan"}},
                     .samples = ranges,
                     .compensations = {}});
}

ObjectId BpTree::Create(Database* db, const std::string& name,
                        size_t leaf_capacity, size_t fanout) {
  ObjectId page = CreatePage(db, name + ".LeafPage0", leaf_capacity);
  auto leaf_state = std::make_unique<LeafState>();
  leaf_state->page = page;
  leaf_state->capacity = leaf_capacity;
  ObjectId leaf = db->CreateObject(LeafObjectType(), name + ".Leaf0",
                                   std::move(leaf_state));
  auto tree_state = std::make_unique<BpTreeState>();
  tree_state->root = leaf;
  tree_state->leaf_capacity = leaf_capacity;
  tree_state->fanout = fanout;
  return db->CreateObject(BpTreeObjectType(), name, std::move(tree_state));
}

}  // namespace oodb
