// Directory ADT (Weihl's canonical example [22], also Spector/Schwartz
// [18]): a keyed map whose operations commute on distinct keys. Unlike
// the B+ tree it is a single primitive object — useful when a benchmark
// wants semantic concurrency without structural depth.

#pragma once

#include <map>
#include <string>

#include "cc/database.h"

namespace oodb {

struct DirectoryState : public ObjectState {
  std::map<std::string, std::string> entries;
};

/// insert/remove/lookup/update commute across distinct keys;
/// lookup Θ lookup always.
const ObjectType* DirectoryType();

/// Registers:
///   insert(k, v) -> 1 if new, 0 if overwritten
///   remove(k) -> old | none
///   lookup(k) -> v | none
///   update(k, v) -> old | NotFound error when absent
void RegisterDirectoryMethods(Database* db);

ObjectId CreateDirectory(Database* db, std::string name);

}  // namespace oodb
