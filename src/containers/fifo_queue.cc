#include "containers/fifo_queue.h"

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <vector>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* FifoQueueType() {
  static const ObjectType* type = [] {
    // Tightened to match what the inference engine proves (the earlier
    // blanket enq Θ enq was refuted by both-orders probing: two
    // enqueues of different values leave observably different FIFO
    // orders). Equal-value pairs of one mutator still commute, the two
    // ends are independent, and a cancel only interacts with operations
    // on the same value.
    auto spec = std::make_unique<PredicateCommutativity>();
    spec->SetPredicate("enq", "enq",
                       PredicateCommutativity::SameParam(0));
    spec->SetPredicate("pushFront", "pushFront",
                       PredicateCommutativity::SameParam(0));
    spec->SetCommutes("enq", "pushFront");
    spec->SetCommutes("cancel", "cancel");
    spec->SetCommutes("size", "size");
    spec->SetPredicate("cancel", "enq",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetPredicate("cancel", "pushFront",
                       PredicateCommutativity::DifferentParam(0));
    return new ObjectType("FifoQueue", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

void RegisterQueueMethods(Database* db) {
  TypeRegistry::Global().Register(FifoQueueType());
  db->Register(FifoQueueType(), "enq",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("enq needs a value");
                 }
                 ctx.state<QueueState>()->items.push_back(
                     params[0].AsString());
                 ctx.SetCompensation(Invocation("cancel", {params[0]}));
                 *result = Value();
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "deq",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 auto* q = ctx.state<QueueState>();
                 if (q->items.empty()) {
                   *result = Value();
                   return Status::OK();
                 }
                 std::string front = q->items.front();
                 q->items.pop_front();
                 ctx.SetCompensation(
                     Invocation("pushFront", {Value(front)}));
                 *result = Value(front);
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "size",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 *result = Value(static_cast<int64_t>(
                     ctx.state<QueueState>()->items.size()));
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "cancel",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("cancel needs a value");
                 }
                 auto* q = ctx.state<QueueState>();
                 // Remove the most recent occurrence: compensating the
                 // latest enq of this value.
                 auto it = std::find(q->items.rbegin(), q->items.rend(),
                                     params[0].AsString());
                 if (it != q->items.rend()) {
                   q->items.erase(std::next(it).base());
                 }
                 *result = Value();
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "pushFront",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("pushFront needs a value");
                 }
                 ctx.state<QueueState>()->items.push_front(
                     params[0].AsString());
                 *result = Value();
                 return Status::OK();
               });

  // Schema traits: the queue is primitive; size is the only observer.
  // cancel and pushFront exist to compensate enq and deq; undo actions
  // are not themselves undone.
  db->DeclareTraits(FifoQueueType(), "enq",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {"cancel"}});
  db->DeclareTraits(FifoQueueType(), "deq",
                    {.observer = false,
                     .calls = {},
                     .samples = {{}},
                     .compensations = {"pushFront"},
                     .undo_free = true});
  db->DeclareTraits(FifoQueueType(), "size",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});
  db->DeclareTraits(FifoQueueType(), "cancel",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {}});
  db->DeclareTraits(FifoQueueType(), "pushFront",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {}});

  // Probe hooks for the inference engine. The states put every sample
  // value (and its corpus mutation) at the queue head somewhere, so
  // head-sensitive pairs (deq/cancel, deq/deq) diverge instead of
  // probing vacuously equivalent.
  auto make = [](std::initializer_list<const char*> items) {
    return [items = std::vector<std::string>(items.begin(), items.end())] {
      auto state = std::make_unique<QueueState>();
      state->items.assign(items.begin(), items.end());
      return std::unique_ptr<ObjectState>(std::move(state));
    };
  };
  db->DeclareProbe(
      FifoQueueType(),
      {.states = {{"empty", make({})},
                  {"single", make({"x"})},
                  {"front-y", make({"y", "x"})},
                  {"front-xm", make({"x~", "y~", "x"})},
                  {"front-ym", make({"y~", "x"})}},
       .fingerprint = [](const ObjectState& raw) {
         const auto& q = static_cast<const QueueState&>(raw);
         std::string out = "[";
         for (size_t i = 0; i < q.items.size(); ++i) {
           if (i > 0) out += ",";
           out += q.items[i];
         }
         return out + "]";
       }});
}

ObjectId CreateQueue(Database* db, std::string name) {
  return db->CreateObject(FifoQueueType(), std::move(name),
                          std::make_unique<QueueState>());
}

}  // namespace oodb
