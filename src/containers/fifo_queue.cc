#include "containers/fifo_queue.h"

#include <algorithm>
#include <memory>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* FifoQueueType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("enq", "enq");
    spec->SetCommutes("size", "size");
    return new ObjectType("FifoQueue", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

void RegisterQueueMethods(Database* db) {
  TypeRegistry::Global().Register(FifoQueueType());
  db->Register(FifoQueueType(), "enq",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("enq needs a value");
                 }
                 ctx.state<QueueState>()->items.push_back(
                     params[0].AsString());
                 ctx.SetCompensation(Invocation("cancel", {params[0]}));
                 *result = Value();
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "deq",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 auto* q = ctx.state<QueueState>();
                 if (q->items.empty()) {
                   *result = Value();
                   return Status::OK();
                 }
                 std::string front = q->items.front();
                 q->items.pop_front();
                 ctx.SetCompensation(
                     Invocation("pushFront", {Value(front)}));
                 *result = Value(front);
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "size",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 *result = Value(static_cast<int64_t>(
                     ctx.state<QueueState>()->items.size()));
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "cancel",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("cancel needs a value");
                 }
                 auto* q = ctx.state<QueueState>();
                 // Remove the most recent occurrence: compensating the
                 // latest enq of this value.
                 auto it = std::find(q->items.rbegin(), q->items.rend(),
                                     params[0].AsString());
                 if (it != q->items.rend()) {
                   q->items.erase(std::next(it).base());
                 }
                 *result = Value();
                 return Status::OK();
               });

  db->Register(FifoQueueType(), "pushFront",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("pushFront needs a value");
                 }
                 ctx.state<QueueState>()->items.push_front(
                     params[0].AsString());
                 *result = Value();
                 return Status::OK();
               });

  // Schema traits: the queue is primitive; size is the only observer.
  // cancel and pushFront exist to compensate enq and deq; undo actions
  // are not themselves undone.
  db->DeclareTraits(FifoQueueType(), "enq",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {"cancel"}});
  db->DeclareTraits(FifoQueueType(), "deq",
                    {.observer = false,
                     .calls = {},
                     .samples = {{}},
                     .compensations = {"pushFront"},
                     .undo_free = true});
  db->DeclareTraits(FifoQueueType(), "size",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});
  db->DeclareTraits(FifoQueueType(), "cancel",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {}});
  db->DeclareTraits(FifoQueueType(), "pushFront",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("x")}, {Value("y")}},
                     .compensations = {}});
}

ObjectId CreateQueue(Database* db, std::string name) {
  return db->CreateObject(FifoQueueType(), std::move(name),
                          std::make_unique<QueueState>());
}

}  // namespace oodb
