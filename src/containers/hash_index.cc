#include "containers/hash_index.h"

#include <atomic>

#include "containers/codec.h"
#include "containers/page_ops.h"
#include "model/type_registry.h"

namespace oodb {

namespace {

std::atomic<uint64_t> g_hash_counter{0};

uint64_t MaskOf(size_t depth) {
  return depth >= 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);
}

std::unique_ptr<PredicateCommutativity> HashKeyedSpec() {
  auto spec = std::make_unique<PredicateCommutativity>();
  auto diff = PredicateCommutativity::DifferentParam(0);
  spec->SetPredicate("insert", "insert", diff);
  spec->SetPredicate("insert", "search", diff);
  spec->SetPredicate("insert", "erase", diff);
  spec->SetPredicate("erase", "erase", diff);
  spec->SetPredicate("erase", "search", diff);
  spec->SetCommutes("search", "search");
  // Proved by the inference engine's deep-observer rule: info and
  // search transitively only observe, so they commute with each other
  // (and info with itself) on any keys.
  spec->SetCommutes("info", "info");
  spec->SetCommutes("info", "search");
  // freeze / stamp / moveTo stay unregistered: structural operations
  // conflict with everything on their bucket.
  return spec;
}

struct BucketSnapshot {
  ObjectId page;
  uint64_t pattern;
  size_t local_depth;
  size_t capacity;
};

BucketSnapshot SnapBucket(MethodContext& ctx) {
  return ctx.WithState<BucketState>([](BucketState* s) {
    return BucketSnapshot{s->page, s->pattern, s->local_depth,
                          s->capacity};
  });
}

/// Ownership check: every keyed bucket operation verifies the key still
/// belongs here; a stale route (concurrent split) is reported as
/// kConflict and retried by the index with a fresh directory.
Status VerifyOwnership(const BucketSnapshot& snap, const std::string& key) {
  if ((HashKey(key) & MaskOf(snap.local_depth)) != snap.pattern) {
    return Status::Conflict("stale route for key '" + key + "'");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Bucket methods
// ---------------------------------------------------------------------

Status BucketInsert(MethodContext& ctx, const ValueList& params,
                    Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("insert needs key, value");
  }
  BucketSnapshot snap = SnapBucket(ctx);
  OODB_RETURN_IF_ERROR(VerifyOwnership(snap, params[0].AsString()));
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.page, Invocation("read", {params[0]}), &old));
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("write", params)));
  if (old.IsNone()) {
    ctx.SetCompensation(Invocation("erase", {params[0]}));
  } else {
    ctx.SetCompensation(Invocation("insert", {params[0], old}));
  }
  *result = old;
  return Status::OK();
}

Status BucketSearch(MethodContext& ctx, const ValueList& params,
                    Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  BucketSnapshot snap = SnapBucket(ctx);
  OODB_RETURN_IF_ERROR(VerifyOwnership(snap, params[0].AsString()));
  return ctx.Call(snap.page, Invocation("read", {params[0]}), result);
}

Status BucketErase(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  BucketSnapshot snap = SnapBucket(ctx);
  OODB_RETURN_IF_ERROR(VerifyOwnership(snap, params[0].AsString()));
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.page, Invocation("erase", {params[0]}), &old));
  if (!old.IsNone()) {
    ctx.SetCompensation(Invocation("insert", {params[0], old}));
  }
  *result = old;
  return Status::OK();
}

Status BucketFreeze(MethodContext&, const ValueList&, Value* result) {
  // The body is empty: the value of freeze() is its lock, which
  // conflicts with every bucket operation and is held (via pass-up)
  // until the splitting index operation completes.
  *result = Value();
  return Status::OK();
}

Status BucketInfo(MethodContext& ctx, const ValueList&, Value* result) {
  BucketSnapshot snap = SnapBucket(ctx);
  *result = Value(JoinFields({std::to_string(snap.page.value),
                              std::to_string(snap.pattern),
                              std::to_string(snap.local_depth),
                              std::to_string(snap.capacity)}));
  return Status::OK();
}

/// moveTo(target_page, sibling_pattern, new_depth): relocates every key
/// whose hash matches the sibling pattern at the new depth. Copy first,
/// erase after — readers racing the directory repoint find their key on
/// one side or the other.
Status BucketMoveTo(MethodContext& ctx, const ValueList& params,
                    Value* result) {
  if (params.size() < 3) {
    return Status::InvalidArgument(
        "moveTo needs target page, pattern, depth");
  }
  ObjectId target(uint64_t(params[0].AsInt()));
  uint64_t sibling_pattern = uint64_t(params[1].AsInt());
  size_t new_depth = size_t(params[2].AsInt());
  BucketSnapshot snap = SnapBucket(ctx);

  Value scan;
  OODB_RETURN_IF_ERROR(ctx.Call(snap.page, Invocation("scan"), &scan));
  std::vector<std::string> fields = SplitFields(scan.AsString());
  std::vector<std::string> moved;
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    if ((HashKey(fields[i]) & MaskOf(new_depth)) == sibling_pattern) {
      OODB_RETURN_IF_ERROR(ctx.Call(
          target,
          Invocation("write", {Value(fields[i]), Value(fields[i + 1])})));
      moved.push_back(fields[i]);
    }
  }
  for (const std::string& key : moved) {
    OODB_RETURN_IF_ERROR(
        ctx.Call(snap.page, Invocation("erase", {Value(key)})));
  }
  *result = Value(int64_t(moved.size()));
  // Structural: content-neutral, no compensation.
  return Status::OK();
}

Status BucketStamp(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("stamp needs pattern, depth");
  }
  ctx.WithState<BucketState>([&](BucketState* s) {
    s->pattern = uint64_t(params[0].AsInt());
    s->local_depth = size_t(params[1].AsInt());
    return 0;
  });
  *result = Value();
  return Status::OK();
}

// ---------------------------------------------------------------------
// Index methods
// ---------------------------------------------------------------------

struct IndexSnapshot {
  ObjectId bucket;
  uint64_t version;
};

IndexSnapshot RouteBucket(MethodContext& ctx, const std::string& key) {
  return ctx.WithState<HashIndexState>([&](HashIndexState* s) {
    size_t slot = size_t(HashKey(key) & MaskOf(s->global_depth));
    return IndexSnapshot{s->directory[slot], s->version};
  });
}

/// Splits `bucket`; called while holding the index-level keyed lock of
/// the triggering insert. Freeze serializes concurrent splitters.
Status SplitBucket(MethodContext& ctx, ObjectId bucket) {
  OODB_RETURN_IF_ERROR(ctx.Call(bucket, Invocation("freeze")));

  Value info;
  OODB_RETURN_IF_ERROR(ctx.Call(bucket, Invocation("info"), &info));
  std::vector<std::string> fields = SplitFields(info.AsString());
  if (fields.size() != 4) return Status::Internal("bad bucket info");
  ObjectId bucket_page(std::stoull(fields[0]));
  uint64_t pattern = std::stoull(fields[1]);
  size_t local_depth = std::stoull(fields[2]);
  size_t capacity = std::stoull(fields[3]);

  // A concurrent splitter may have beaten us between our Capacity error
  // and the freeze: if the bucket has room again, skip the split and
  // let the insert retry.
  Value count;
  OODB_RETURN_IF_ERROR(ctx.Call(bucket_page, Invocation("count"), &count));
  if (size_t(count.AsInt()) < capacity) return Status::OK();

  size_t new_depth = local_depth + 1;
  uint64_t sibling_pattern = pattern | (uint64_t{1} << local_depth);

  // Grow the directory first when the bucket is at max depth.
  ctx.WithState<HashIndexState>([&](HashIndexState* s) {
    if (local_depth == s->global_depth) {
      size_t old_size = s->directory.size();
      s->directory.resize(old_size * 2);
      for (size_t i = 0; i < old_size; ++i) {
        s->directory[old_size + i] = s->directory[i];
      }
      ++s->global_depth;
      ++s->version;
    }
    return 0;
  });

  // Build the sibling.
  ObjectId new_page =
      CreatePage(ctx.db(), "BucketPage" + std::to_string(++g_hash_counter),
                 capacity);
  auto bucket_state = std::make_unique<BucketState>();
  bucket_state->page = new_page;
  bucket_state->pattern = sibling_pattern;
  bucket_state->local_depth = new_depth;
  bucket_state->capacity = capacity;
  ObjectId sibling = ctx.CreateObject(
      BucketObjectType(), "Bucket" + std::to_string(++g_hash_counter),
      std::move(bucket_state));

  // Relocate, deepen the old stamp, then repoint the directory.
  OODB_RETURN_IF_ERROR(ctx.Call(
      bucket,
      Invocation("moveTo", {Value(int64_t(new_page.value)),
                            Value(int64_t(sibling_pattern)),
                            Value(int64_t(new_depth))})));
  OODB_RETURN_IF_ERROR(ctx.Call(
      bucket, Invocation("stamp", {Value(int64_t(pattern)),
                                   Value(int64_t(new_depth))})));
  ctx.WithState<HashIndexState>([&](HashIndexState* s) {
    for (size_t i = 0; i < s->directory.size(); ++i) {
      if (s->directory[i] == bucket &&
          (uint64_t(i) & MaskOf(new_depth)) == sibling_pattern) {
        s->directory[i] = sibling;
      }
    }
    ++s->version;
    return 0;
  });
  return Status::OK();
}

constexpr int kMaxRouteRetries = 12;

Status IndexInsert(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("insert needs key, value");
  }
  const std::string key = params[0].AsString();
  for (int attempt = 0; attempt < kMaxRouteRetries; ++attempt) {
    IndexSnapshot snap = RouteBucket(ctx, key);
    Value old;
    Status st = ctx.Call(snap.bucket, Invocation("insert", params), &old);
    if (st.ok()) {
      if (old.IsNone()) {
        ctx.SetCompensation(Invocation("erase", {params[0]}));
      } else {
        ctx.SetCompensation(Invocation("insert", {params[0], old}));
      }
      *result = old;
      return Status::OK();
    }
    if (st.IsConflict()) continue;  // stale route: re-read the directory
    if (st.code() == StatusCode::kCapacity) {
      OODB_RETURN_IF_ERROR(SplitBucket(ctx, snap.bucket));
      continue;
    }
    return st;
  }
  return Status::Capacity("hash bucket keeps overflowing for '" + key +
                          "'");
}

Status IndexSearch(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  const std::string key = params[0].AsString();
  for (int attempt = 0; attempt < kMaxRouteRetries; ++attempt) {
    IndexSnapshot snap = RouteBucket(ctx, key);
    Status st = ctx.Call(snap.bucket, Invocation("search", params), result);
    if (!st.IsConflict()) return st;
  }
  return Status::Conflict("directory kept moving under search");
}

Status IndexErase(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  const std::string key = params[0].AsString();
  for (int attempt = 0; attempt < kMaxRouteRetries; ++attempt) {
    IndexSnapshot snap = RouteBucket(ctx, key);
    Value old;
    Status st = ctx.Call(snap.bucket, Invocation("erase", params), &old);
    if (st.IsConflict()) continue;
    if (!st.ok()) return st;
    if (!old.IsNone()) {
      ctx.SetCompensation(Invocation("insert", {params[0], old}));
    }
    *result = old;
    return Status::OK();
  }
  return Status::Conflict("directory kept moving under erase");
}

}  // namespace

uint64_t HashKey(const std::string& key) {
  uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

const ObjectType* HashIndexObjectType() {
  static const ObjectType* type =
      new ObjectType("HashIndex", HashKeyedSpec());
  return type;
}

const ObjectType* BucketObjectType() {
  static const ObjectType* type =
      new ObjectType("Bucket", HashKeyedSpec());
  return type;
}

void HashIndex::RegisterMethods(Database* db) {
  TypeRegistry::Global().Register(HashIndexObjectType());
  TypeRegistry::Global().Register(BucketObjectType());
  db->Register(BucketObjectType(), "insert", BucketInsert);
  db->Register(BucketObjectType(), "search", BucketSearch);
  db->Register(BucketObjectType(), "erase", BucketErase);
  db->Register(BucketObjectType(), "freeze", BucketFreeze);
  db->Register(BucketObjectType(), "info", BucketInfo);
  db->Register(BucketObjectType(), "moveTo", BucketMoveTo);
  db->Register(BucketObjectType(), "stamp", BucketStamp);
  db->Register(HashIndexObjectType(), "insert", IndexInsert);
  db->Register(HashIndexObjectType(), "search", IndexSearch);
  db->Register(HashIndexObjectType(), "erase", IndexErase);

  // Schema traits. HashIndex.insert reaches the whole split machinery
  // (freeze/info/moveTo/stamp plus the sibling page's count) when a
  // bucket overflows.
  const std::vector<ValueList> keyed2 = {{Value("k1"), Value("v1")},
                                         {Value("k2"), Value("v2")}};
  const std::vector<ValueList> keyed1 = {{Value("k1")}, {Value("k2")}};
  // Undo traits: inserts and erases compensate each other; erase of an
  // absent key is a no-op. freeze's body is empty (its value is its
  // lock) and moveTo/stamp are split machinery — none of the three
  // changes the index's abstract contents, so they are undo_free.
  db->DeclareTraits(BucketObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"Page", "read"}, {"Page", "write"}},
                     .samples = keyed2,
                     .compensations = {"erase", "insert"}});
  db->DeclareTraits(BucketObjectType(), "search",
                    {.observer = true,
                     .calls = {{"Page", "read"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(BucketObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"Page", "erase"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(BucketObjectType(), "freeze",
                    {.observer = false,
                     .calls = {},
                     .samples = {{}},
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(BucketObjectType(), "info",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});
  db->DeclareTraits(BucketObjectType(), "moveTo",
                    {.observer = false,
                     .calls = {{"Page", "scan"},
                               {"Page", "write"},
                               {"Page", "erase"}},
                     .samples = {{Value(1), Value(1), Value(2)},
                                 {Value(2), Value(3), Value(2)}},
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(BucketObjectType(), "stamp",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value(1), Value(2)},
                                 {Value(3), Value(2)}},
                     .compensations = {},
                     .undo_free = true});
  db->DeclareTraits(HashIndexObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"Bucket", "insert"},
                               {"Bucket", "freeze"},
                               {"Bucket", "info"},
                               {"Bucket", "moveTo"},
                               {"Bucket", "stamp"},
                               {"Page", "count"}},
                     .samples = keyed2,
                     .compensations = {"erase", "insert"}});
  db->DeclareTraits(HashIndexObjectType(), "search",
                    {.observer = true,
                     .calls = {{"Bucket", "search"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(HashIndexObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"Bucket", "erase"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
}

ObjectId HashIndex::Create(Database* db, const std::string& name,
                           size_t bucket_capacity) {
  ObjectId page =
      CreatePage(db, name + ".BucketPage0", bucket_capacity);
  auto bucket_state = std::make_unique<BucketState>();
  bucket_state->page = page;
  bucket_state->capacity = bucket_capacity;
  ObjectId bucket = db->CreateObject(BucketObjectType(), name + ".Bucket0",
                                     std::move(bucket_state));
  auto index_state = std::make_unique<HashIndexState>();
  index_state->directory.push_back(bucket);
  index_state->bucket_capacity = bucket_capacity;
  return db->CreateObject(HashIndexObjectType(), name,
                          std::move(index_state));
}

}  // namespace oodb
