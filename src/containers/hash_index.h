// Extendible hash index over page-backed buckets: a second index
// structure under the same semantic concurrency control, showing that
// the framework is not B-tree-specific ("applications may be complex
// similar to index structures", section 2).
//
// Structure: a directory of 2^global_depth slots mapping hash prefixes
// to Bucket objects; each bucket owns a page and a (pattern, local
// depth) stamp. Inserting into a full bucket splits it: a new bucket
// takes the keys whose next hash bit is 1, the directory is repointed
// (doubling first when local depth == global depth), and the insert
// retries. Splits are serialized per bucket by a freeze() action whose
// lock conflicts with every bucket operation; routing staleness is
// handled optimistically — every bucket operation verifies that the key
// belongs to the bucket's stamped hash pattern and fails with a
// retryable error otherwise.
//
// Commutativity mirrors the B+ tree: keyed operations commute on
// distinct keys at both index and bucket level; structural operations
// conflict with everything on their bucket.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/database.h"
#include "storage/page.h"

namespace oodb {

struct HashIndexState : public ObjectState {
  std::vector<ObjectId> directory;  ///< 2^global_depth bucket slots
  size_t global_depth = 0;
  size_t bucket_capacity = 4;
  uint64_t version = 0;  ///< bumped on every directory change
};

struct BucketState : public ObjectState {
  ObjectId page;
  uint64_t pattern = 0;     ///< low `local_depth` hash bits of all keys
  size_t local_depth = 0;
  size_t capacity = 4;
};

const ObjectType* HashIndexObjectType();
const ObjectType* BucketObjectType();

/// Deterministic 64-bit FNV-1a (stable across platforms, unlike
/// std::hash).
uint64_t HashKey(const std::string& key);

class HashIndex {
 public:
  static void RegisterMethods(Database* db);

  /// Creates an index with one initial bucket (global depth 0).
  static ObjectId Create(Database* db, const std::string& name,
                         size_t bucket_capacity = 8);

  static Invocation Insert(const std::string& key,
                           const std::string& value) {
    return Invocation("insert", {Value(key), Value(value)});
  }
  static Invocation Search(const std::string& key) {
    return Invocation("search", {Value(key)});
  }
  static Invocation Erase(const std::string& key) {
    return Invocation("erase", {Value(key)});
  }
};

}  // namespace oodb
