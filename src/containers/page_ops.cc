#include "containers/page_ops.h"

#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "containers/codec.h"
#include "model/type_registry.h"

namespace oodb {

const ObjectType* PageObjectType() {
  static const ObjectType* type = [] {
    return new ObjectType(
        "Page",
        std::make_unique<ReadWriteCommutativity>(std::set<std::string>{
            "read", "scan", "routeLE", "count", "contains"}),
        /*primitive=*/true);
  }();
  return type;
}

void RegisterPageMethods(Database* db) {
  TypeRegistry::Global().Register(PageObjectType());
  db->Register(PageObjectType(), "read",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("read needs a key");
                 }
                 auto* page = ctx.state<PageState>();
                 Result<std::string> r = page->Read(params[0].AsString());
                 *result = r.ok() ? Value(*r) : Value();
                 return Status::OK();
               });

  db->Register(PageObjectType(), "contains",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("contains needs a key");
                 }
                 auto* page = ctx.state<PageState>();
                 *result =
                     Value(page->Contains(params[0].AsString()) ? 1 : 0);
                 return Status::OK();
               });

  db->Register(PageObjectType(), "write",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.size() < 2) {
                   return Status::InvalidArgument("write needs key, value");
                 }
                 auto* page = ctx.state<PageState>();
                 const std::string key = params[0].AsString();
                 Result<std::string> old = page->Read(key);
                 OODB_RETURN_IF_ERROR(
                     page->Write(key, params[1].AsString()));
                 if (old.ok()) {
                   ctx.SetCompensation(
                       Invocation("write", {Value(key), Value(*old)}));
                 } else {
                   ctx.SetCompensation(Invocation("erase", {Value(key)}));
                 }
                 *result = Value();
                 return Status::OK();
               });

  db->Register(PageObjectType(), "erase",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("erase needs a key");
                 }
                 auto* page = ctx.state<PageState>();
                 const std::string key = params[0].AsString();
                 Result<std::string> old = page->Read(key);
                 if (!old.ok()) {
                   *result = Value();
                   return Status::OK();  // idempotent erase of absent key
                 }
                 OODB_RETURN_IF_ERROR(page->Erase(key));
                 ctx.SetCompensation(
                     Invocation("write", {Value(key), Value(*old)}));
                 *result = Value(*old);
                 return Status::OK();
               });

  db->Register(PageObjectType(), "scan",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 auto* page = ctx.state<PageState>();
                 std::vector<std::string> fields;
                 fields.reserve(page->entries().size() * 2);
                 for (const auto& [k, v] : page->entries()) {
                   fields.push_back(k);
                   fields.push_back(v);
                 }
                 *result = Value(JoinFields(fields));
                 return Status::OK();
               });

  db->Register(PageObjectType(), "routeLE",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("routeLE needs a key");
                 }
                 auto* page = ctx.state<PageState>();
                 const auto& entries = page->entries();
                 auto it = entries.upper_bound(params[0].AsString());
                 if (it == entries.begin()) {
                   *result = Value();
                   return Status::OK();
                 }
                 --it;
                 *result = Value(it->second);
                 return Status::OK();
               });

  db->Register(PageObjectType(), "count",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 *result = Value(
                     static_cast<int64_t>(ctx.state<PageState>()->size()));
                 return Status::OK();
               });

  // Schema traits: the conventional reader/writer classification of the
  // zero layer (pages call nothing — Def 3), plus corpus samples for
  // oodb_lint.
  db->DeclareTraits(PageObjectType(), "read",
                    {.observer = true,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {}});
  db->DeclareTraits(PageObjectType(), "contains",
                    {.observer = true,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {}});
  db->DeclareTraits(PageObjectType(), "write",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1"), Value("v1")},
                                 {Value("k2"), Value("v2")}},
                     .compensations = {"write", "erase"}});
  db->DeclareTraits(PageObjectType(), "erase",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {"write"},
                     .undo_free = true});
  db->DeclareTraits(PageObjectType(), "scan",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});
  db->DeclareTraits(PageObjectType(), "routeLE",
                    {.observer = true,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {}});
  db->DeclareTraits(PageObjectType(), "count",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});

  // Probe hooks. Capacity 8 with at most four live entries keeps every
  // probed write admissible — a near-full page would make write
  // admission order-dependent (kCapacity) and is a documented limit of
  // the probe corpus, not something these states exercise. The hand
  // spec stays the conventional reader/writer zero layer on purpose:
  // the inferred matrix (different-param writes, evidence-table routeLE
  // pairs) is the paper's layered-semantics delta, measured in bench/s2
  // rather than folded back into the shipped spec.
  auto make = [](std::initializer_list<std::pair<const char*, const char*>>
                     entries) {
    return [entries = std::vector<std::pair<std::string, std::string>>(
                entries.begin(), entries.end())] {
      auto state = std::make_unique<PageState>(8);
      for (const auto& [k, v] : entries) {
        (void)state->Write(k, v);
      }
      return std::unique_ptr<ObjectState>(std::move(state));
    };
  };
  db->DeclareProbe(
      PageObjectType(),
      {.states = {{"empty", make({})},
                  {"loaded", make({{"k1", "a1"}, {"k2", "a2"}})},
                  {"loaded-mut", make({{"k1~", "a1~"}, {"k2~", "a2~"}})}},
       .fingerprint = [](const ObjectState& raw) {
         const auto& page = static_cast<const PageState&>(raw);
         std::string out = "{";
         for (const auto& [k, v] : page.entries()) {
           if (out.size() > 1) out += ",";
           out += k + "=" + v;
         }
         return out + "}";
       }});
}

ObjectId CreatePage(Database* db, std::string name, size_t capacity) {
  return db->CreateObject(PageObjectType(), std::move(name),
                          std::make_unique<PageState>(capacity));
}

}  // namespace oodb
