#include "containers/bptree_inspect.h"

#include <set>
#include <sstream>

#include "containers/bptree.h"
#include "storage/page.h"

namespace oodb {

namespace {

bool IsLeaf(Database* db, ObjectId id) {
  return db->ts().object(id).type == LeafObjectType();
}

bool IsNode(Database* db, ObjectId id) {
  return db->ts().object(id).type == NodeObjectType();
}

void Problem(BpTreeInspection* out, const std::string& what) {
  out->ok = false;
  out->problems.push_back(what);
}

/// Collects all leaves reachable through routing pages, checking node
/// invariants on the way. `low_bound` is the smallest key that can be
/// routed into this subtree ("" at the leftmost edge).
void WalkRouting(Database* db, ObjectId id, size_t depth,
                 const std::string& low_bound,
                 std::set<uint64_t>* routed_leaves,
                 BpTreeInspection* out) {
  if (IsLeaf(db, id)) {
    routed_leaves->insert(id.value);
    if (out->depth == 0) {
      out->depth = depth;
    } else if (out->depth != depth) {
      Problem(out, "uneven routing depth at leaf " +
                       db->ts().object(id).name);
    }
    return;
  }
  if (!IsNode(db, id)) {
    Problem(out, "routing reached a non-node, non-leaf object " +
                     db->ts().object(id).name);
    return;
  }
  ++out->node_count;
  auto* node = db->StateOf<NodeState>(id);
  auto* page = db->StateOf<PageState>(node->page);
  if (page->entries().empty()) {
    Problem(out, "node " + db->ts().object(id).name +
                     " has an empty routing page");
    return;
  }
  // routeLE must never miss for any key >= low_bound routed here: the
  // node's first separator must not exceed the low bound. (Only the
  // leftmost node of a level carries the "" sentinel; right siblings
  // start at their split separator.)
  if (page->entries().begin()->first > low_bound) {
    Problem(out, "node " + db->ts().object(id).name + " first separator '" +
                     page->entries().begin()->first +
                     "' exceeds its low bound '" + low_bound + "'");
    return;
  }
  for (auto it = page->entries().begin(); it != page->entries().end();
       ++it) {
    const std::string& sep = it->first;
    if (!node->high_key.empty() && !sep.empty() &&
        sep >= node->high_key) {
      Problem(out, "node " + db->ts().object(id).name + " separator '" +
                       sep + "' is not below its high key '" +
                       node->high_key + "'");
    }
    // The child's low bound is the larger of our bound and its
    // separator.
    const std::string& child_low = sep > low_bound ? sep : low_bound;
    WalkRouting(db, ObjectId(std::stoull(it->second)), depth + 1,
                child_low, routed_leaves, out);
  }
}

}  // namespace

std::string BpTreeInspection::Summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "BROKEN") << ": depth=" << depth
     << " nodes=" << node_count << " leaves=" << leaf_count
     << " chain-only=" << chain_only_leaves
     << " entries=" << contents.size();
  for (const std::string& p : problems) os << "\n  ! " << p;
  return os.str();
}

BpTreeInspection InspectBpTree(Database* db, ObjectId tree) {
  BpTreeInspection out;
  auto* tree_state = db->StateOf<BpTreeState>(tree);
  ObjectId root = tree_state->root;

  // Phase 1: routing walk.
  std::set<uint64_t> routed_leaves;
  WalkRouting(db, root, 1, "", &routed_leaves, &out);

  // Phase 2: find the leftmost leaf (descend first children), then walk
  // the B-link chain.
  ObjectId cur = root;
  while (IsNode(db, cur)) {
    auto* node = db->StateOf<NodeState>(cur);
    auto* page = db->StateOf<PageState>(node->page);
    if (page->entries().empty()) {
      Problem(&out, "empty routing page during leftmost descent");
      return out;
    }
    cur = ObjectId(std::stoull(page->entries().begin()->second));
  }

  std::set<uint64_t> chain_seen;
  std::string last_high;  // previous leaf's high key
  bool first = true;
  while (cur.valid()) {
    if (!IsLeaf(db, cur)) {
      Problem(&out, "leaf chain reached a non-leaf object");
      break;
    }
    if (!chain_seen.insert(cur.value).second) {
      Problem(&out, "cycle in the leaf chain at " +
                        db->ts().object(cur).name);
      break;
    }
    ++out.leaf_count;
    auto* leaf = db->StateOf<LeafState>(cur);
    auto* page = db->StateOf<PageState>(leaf->page);
    for (const auto& [key, value] : page->entries()) {
      if (!leaf->high_key.empty() && key >= leaf->high_key) {
        Problem(&out, "leaf " + db->ts().object(cur).name + " holds '" +
                          key + "' >= its high key '" + leaf->high_key +
                          "'");
      }
      if (!first && !last_high.empty() && key < last_high) {
        Problem(&out, "leaf " + db->ts().object(cur).name + " holds '" +
                          key + "' below the previous leaf's high key '" +
                          last_high + "'");
      }
      if (!out.contents.emplace(key, value).second) {
        Problem(&out, "duplicate key '" + key + "' across leaves");
      }
    }
    if (!leaf->high_key.empty()) last_high = leaf->high_key;
    first = false;
    if (leaf->next.valid() && leaf->high_key.empty()) {
      Problem(&out, "leaf " + db->ts().object(cur).name +
                        " has a B-link but no high key");
    }
    cur = leaf->next;
  }

  // Phase 3: coverage. Every routed leaf must be on the chain; the
  // chain may contain extra leaves (splits whose separators have not
  // been posted yet — legal under B-linking).
  for (uint64_t leaf : routed_leaves) {
    if (chain_seen.count(leaf) == 0) {
      Problem(&out, "leaf " + db->ts().object(ObjectId(leaf)).name +
                        " is routed to but not on the chain");
    }
  }
  out.chain_only_leaves = chain_seen.size() >= routed_leaves.size()
                              ? chain_seen.size() - routed_leaves.size()
                              : 0;
  return out;
}

}  // namespace oodb
