// Escrow accounts: the paper cites the escrow method [9, 14, 17] as the
// commutativity definition that "includes parameter values and the
// status of accessed objects". Deposits and withdrawals on an account
// commute as long as every withdrawal is individually admissible; the
// method itself enforces admissibility atomically (under the object
// latch) and fails with kConflict otherwise, so the static commutativity
// declaration stays sound.
//
// Three type variants share the same method implementations but declare
// coarser and coarser semantics — the S4 ablation:
//   * EscrowAccountType   deposit/withdraw/deposit all commute,
//   * NameOnlyAccountType only deposit/deposit commutes (no parameter
//                         or state reasoning),
//   * RWAccountType       every mutator pair conflicts (read/write).

#pragma once

#include <cstdint>

#include "cc/database.h"

namespace oodb {

/// Account state: current balance and the floor below which withdrawals
/// are refused.
struct AccountState : public ObjectState {
  int64_t balance = 0;
  int64_t min_balance = 0;
};

const ObjectType* EscrowAccountType();
const ObjectType* NameOnlyAccountType();
const ObjectType* RWAccountType();

/// Registers deposit(amount), withdraw(amount), balance() for `type`
/// (call once per account type variant in use).
void RegisterAccountMethods(Database* db, const ObjectType* type);

/// Creates an account with an initial balance.
ObjectId CreateAccount(Database* db, const ObjectType* type,
                       std::string name, int64_t initial_balance,
                       int64_t min_balance = 0);

}  // namespace oodb
