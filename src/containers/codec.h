// Small codecs for passing structured results through Value (method
// results are single Values; composite outcomes like "inserted, had old
// value X, split at sep S into child C" are encoded as strings).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/value.h"

namespace oodb {

/// Joins fields with the ASCII unit separator (0x1f), which never occurs
/// in test keys/values. Empty vector encodes to "".
std::string JoinFields(const std::vector<std::string>& fields);

/// Inverse of JoinFields. "" decodes to {}.
std::vector<std::string> SplitFields(const std::string& s);

/// Second nesting level: joins two fields with the ASCII record
/// separator (0x1e), safe to embed inside a JoinFields value.
std::string JoinPair(const std::string& a, const std::string& b);

/// Inverse of JoinPair; returns {"", ""} on malformed input.
std::pair<std::string, std::string> SplitPair(const std::string& s);

/// Outcome of an insert along the B+-tree descent.
struct InsertOutcome {
  bool had_old = false;        ///< key existed; old_value holds prior value
  std::string old_value;
  bool split = false;          ///< this level split
  std::string split_sep;       ///< first key of the new right sibling
  uint64_t split_child = 0;    ///< ObjectId value of the new sibling

  Value Encode() const;
  static InsertOutcome Decode(const Value& v);
};

}  // namespace oodb
