#include "containers/directory.h"

#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* DirectoryType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "remove", diff);
    spec->SetPredicate("insert", "lookup", diff);
    spec->SetPredicate("insert", "update", diff);
    spec->SetPredicate("remove", "remove", diff);
    spec->SetPredicate("remove", "lookup", diff);
    spec->SetPredicate("remove", "update", diff);
    spec->SetPredicate("update", "update", diff);
    spec->SetPredicate("update", "lookup", diff);
    spec->SetCommutes("lookup", "lookup");
    return new ObjectType("Directory", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

void RegisterDirectoryMethods(Database* db) {
  TypeRegistry::Global().Register(DirectoryType());
  db->Register(DirectoryType(), "insert",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.size() < 2) {
                   return Status::InvalidArgument("insert needs key, value");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 const std::string key = params[0].AsString();
                 auto it = dir->entries.find(key);
                 if (it != dir->entries.end()) {
                   ctx.SetCompensation(
                       Invocation("insert", {params[0], Value(it->second)}));
                   it->second = params[1].AsString();
                   *result = Value(0);
                 } else {
                   dir->entries.emplace(key, params[1].AsString());
                   ctx.SetCompensation(Invocation("remove", {params[0]}));
                   *result = Value(1);
                 }
                 return Status::OK();
               });

  db->Register(DirectoryType(), "remove",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("remove needs a key");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 if (it == dir->entries.end()) {
                   *result = Value();
                   return Status::OK();
                 }
                 ctx.SetCompensation(
                     Invocation("insert", {params[0], Value(it->second)}));
                 *result = Value(it->second);
                 dir->entries.erase(it);
                 return Status::OK();
               });

  db->Register(DirectoryType(), "lookup",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("lookup needs a key");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 *result = it == dir->entries.end() ? Value()
                                                    : Value(it->second);
                 return Status::OK();
               });

  db->Register(DirectoryType(), "update",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.size() < 2) {
                   return Status::InvalidArgument("update needs key, value");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 if (it == dir->entries.end()) {
                   return Status::NotFound("update of absent key '" +
                                           params[0].AsString() + "'");
                 }
                 ctx.SetCompensation(
                     Invocation("update", {params[0], Value(it->second)}));
                 *result = Value(it->second);
                 it->second = params[1].AsString();
                 return Status::OK();
               });

  // Schema traits: the directory is primitive; lookup is the only
  // observer. remove of an absent key is a no-op, hence undo_free.
  db->DeclareTraits(DirectoryType(), "insert",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1"), Value("v1")},
                                 {Value("k2"), Value("v2")}},
                     .compensations = {"remove", "insert"}});
  db->DeclareTraits(DirectoryType(), "remove",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(DirectoryType(), "lookup",
                    {.observer = true,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {}});
  db->DeclareTraits(DirectoryType(), "update",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1"), Value("v1")},
                                 {Value("k2"), Value("v2")}},
                     .compensations = {"update"}});

  // Probe hooks. "loaded-mut" holds the corpus-mutated keys so
  // same-key probes on k1~/k2~ hit present entries too; the stored
  // values (a1, a2) deliberately differ from every sample value, so an
  // update/write of a sample value is always an observable change.
  auto make = [](std::initializer_list<std::pair<const char*, const char*>>
                     entries) {
    return [entries = std::vector<std::pair<std::string, std::string>>(
                entries.begin(), entries.end())] {
      auto state = std::make_unique<DirectoryState>();
      for (const auto& [k, v] : entries) state->entries.emplace(k, v);
      return std::unique_ptr<ObjectState>(std::move(state));
    };
  };
  db->DeclareProbe(
      DirectoryType(),
      {.states = {{"empty", make({})},
                  {"loaded", make({{"k1", "a1"}, {"k2", "a2"}})},
                  {"loaded-mut", make({{"k1~", "a1~"}, {"k2~", "a2~"}})}},
       .fingerprint = [](const ObjectState& raw) {
         const auto& dir = static_cast<const DirectoryState&>(raw);
         std::string out = "{";
         for (const auto& [k, v] : dir.entries) {
           if (out.size() > 1) out += ",";
           out += k + "=" + v;
         }
         return out + "}";
       }});
}

ObjectId CreateDirectory(Database* db, std::string name) {
  return db->CreateObject(DirectoryType(), std::move(name),
                          std::make_unique<DirectoryState>());
}

}  // namespace oodb
