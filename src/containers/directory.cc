#include "containers/directory.h"

#include <memory>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* DirectoryType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "remove", diff);
    spec->SetPredicate("insert", "lookup", diff);
    spec->SetPredicate("insert", "update", diff);
    spec->SetPredicate("remove", "remove", diff);
    spec->SetPredicate("remove", "lookup", diff);
    spec->SetPredicate("remove", "update", diff);
    spec->SetPredicate("update", "update", diff);
    spec->SetPredicate("update", "lookup", diff);
    spec->SetCommutes("lookup", "lookup");
    return new ObjectType("Directory", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

void RegisterDirectoryMethods(Database* db) {
  TypeRegistry::Global().Register(DirectoryType());
  db->Register(DirectoryType(), "insert",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.size() < 2) {
                   return Status::InvalidArgument("insert needs key, value");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 const std::string key = params[0].AsString();
                 auto it = dir->entries.find(key);
                 if (it != dir->entries.end()) {
                   ctx.SetCompensation(
                       Invocation("insert", {params[0], Value(it->second)}));
                   it->second = params[1].AsString();
                   *result = Value(0);
                 } else {
                   dir->entries.emplace(key, params[1].AsString());
                   ctx.SetCompensation(Invocation("remove", {params[0]}));
                   *result = Value(1);
                 }
                 return Status::OK();
               });

  db->Register(DirectoryType(), "remove",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("remove needs a key");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 if (it == dir->entries.end()) {
                   *result = Value();
                   return Status::OK();
                 }
                 ctx.SetCompensation(
                     Invocation("insert", {params[0], Value(it->second)}));
                 *result = Value(it->second);
                 dir->entries.erase(it);
                 return Status::OK();
               });

  db->Register(DirectoryType(), "lookup",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty()) {
                   return Status::InvalidArgument("lookup needs a key");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 *result = it == dir->entries.end() ? Value()
                                                    : Value(it->second);
                 return Status::OK();
               });

  db->Register(DirectoryType(), "update",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.size() < 2) {
                   return Status::InvalidArgument("update needs key, value");
                 }
                 auto* dir = ctx.state<DirectoryState>();
                 auto it = dir->entries.find(params[0].AsString());
                 if (it == dir->entries.end()) {
                   return Status::NotFound("update of absent key '" +
                                           params[0].AsString() + "'");
                 }
                 ctx.SetCompensation(
                     Invocation("update", {params[0], Value(it->second)}));
                 *result = Value(it->second);
                 it->second = params[1].AsString();
                 return Status::OK();
               });

  // Schema traits: the directory is primitive; lookup is the only
  // observer. remove of an absent key is a no-op, hence undo_free.
  db->DeclareTraits(DirectoryType(), "insert",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1"), Value("v1")},
                                 {Value("k2"), Value("v2")}},
                     .compensations = {"remove", "insert"}});
  db->DeclareTraits(DirectoryType(), "remove",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(DirectoryType(), "lookup",
                    {.observer = true,
                     .calls = {},
                     .samples = {{Value("k1")}, {Value("k2")}},
                     .compensations = {}});
  db->DeclareTraits(DirectoryType(), "update",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value("k1"), Value("v1")},
                                 {Value("k2"), Value("v2")}},
                     .compensations = {"update"}});
}

ObjectId CreateDirectory(Database* db, std::string name) {
  return db->CreateObject(DirectoryType(), std::move(name),
                          std::make_unique<DirectoryState>());
}

}  // namespace oodb
