#include "containers/persist.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "containers/directory.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "storage/serde.h"

namespace oodb {

namespace {

// --- Directory ---------------------------------------------------------

std::string SerializeDirectory(Database& db, ObjectId id) {
  const DirectoryState* s = db.StateOf<DirectoryState>(id);
  BlobWriter w;
  w.U32(static_cast<uint32_t>(s->entries.size()));
  for (const auto& [k, v] : s->entries) {
    w.Str(k);
    w.Str(v);
  }
  return w.Take();
}

Result<ObjectId> DeserializeDirectory(Database* db, const std::string& name,
                                      const std::string& blob) {
  auto state = std::make_unique<DirectoryState>();
  BlobReader r(blob);
  uint32_t n = 0;
  if (!r.U32(&n)) return Status::Internal("torn directory blob");
  for (uint32_t i = 0; i < n; ++i) {
    std::string k, v;
    if (!r.Str(&k) || !r.Str(&v)) {
      return Status::Internal("torn directory blob entry");
    }
    state->entries.emplace(std::move(k), std::move(v));
  }
  if (!r.Done()) return Status::Internal("trailing directory blob bytes");
  return db->CreateObject(DirectoryType(), name, std::move(state));
}

std::string DumpDirectory(Database& db, ObjectId id) {
  const DirectoryState* s = db.StateOf<DirectoryState>(id);
  std::string out;
  for (const auto& [k, v] : s->entries) {
    out += k + "=" + v + "\n";
  }
  return out;
}

// --- HashIndex ---------------------------------------------------------

std::string SerializeHashIndex(Database& db, ObjectId id) {
  const HashIndexState* s = db.StateOf<HashIndexState>(id);
  // Slots share buckets; write each bucket once, slots as indices.
  std::vector<ObjectId> buckets;
  std::unordered_map<uint64_t, uint32_t> bucket_index;
  for (ObjectId slot : s->directory) {
    if (bucket_index.emplace(slot.value, buckets.size()).second) {
      buckets.push_back(slot);
    }
  }
  BlobWriter w;
  w.U64(s->global_depth);
  w.U64(s->bucket_capacity);
  w.U32(static_cast<uint32_t>(buckets.size()));
  for (ObjectId b : buckets) {
    const BucketState* bs = db.StateOf<BucketState>(b);
    const PageState* ps = db.StateOf<PageState>(bs->page);
    w.U64(bs->pattern);
    w.U64(bs->local_depth);
    w.U64(bs->capacity);
    w.U32(static_cast<uint32_t>(ps->entries().size()));
    for (const auto& [k, v] : ps->entries()) {
      w.Str(k);
      w.Str(v);
    }
  }
  w.U32(static_cast<uint32_t>(s->directory.size()));
  for (ObjectId slot : s->directory) {
    w.U32(bucket_index[slot.value]);
  }
  return w.Take();
}

Result<ObjectId> DeserializeHashIndex(Database* db, const std::string& name,
                                      const std::string& blob) {
  BlobReader r(blob);
  uint64_t global_depth = 0, bucket_capacity = 0;
  uint32_t n_buckets = 0;
  if (!r.U64(&global_depth) || !r.U64(&bucket_capacity) ||
      !r.U32(&n_buckets)) {
    return Status::Internal("torn hash-index blob");
  }
  std::vector<ObjectId> buckets;
  buckets.reserve(n_buckets);
  for (uint32_t i = 0; i < n_buckets; ++i) {
    uint64_t pattern = 0, local_depth = 0, capacity = 0;
    uint32_t n_entries = 0;
    if (!r.U64(&pattern) || !r.U64(&local_depth) || !r.U64(&capacity) ||
        !r.U32(&n_entries)) {
      return Status::Internal("torn hash-index bucket header");
    }
    ObjectId page = CreatePage(
        db, name + ".rp" + std::to_string(i), static_cast<size_t>(capacity));
    PageState* ps = db->StateOf<PageState>(page);
    for (uint32_t e = 0; e < n_entries; ++e) {
      std::string k, v;
      if (!r.Str(&k) || !r.Str(&v)) {
        return Status::Internal("torn hash-index bucket entry");
      }
      OODB_RETURN_IF_ERROR(ps->Write(std::move(k), std::move(v)));
    }
    auto bs = std::make_unique<BucketState>();
    bs->page = page;
    bs->pattern = pattern;
    bs->local_depth = static_cast<size_t>(local_depth);
    bs->capacity = static_cast<size_t>(capacity);
    buckets.push_back(db->CreateObject(
        BucketObjectType(), name + ".rb" + std::to_string(i),
        std::move(bs)));
  }
  uint32_t n_slots = 0;
  if (!r.U32(&n_slots)) return Status::Internal("torn hash-index slots");
  auto state = std::make_unique<HashIndexState>();
  state->global_depth = static_cast<size_t>(global_depth);
  state->bucket_capacity = static_cast<size_t>(bucket_capacity);
  state->directory.reserve(n_slots);
  for (uint32_t i = 0; i < n_slots; ++i) {
    uint32_t idx = 0;
    if (!r.U32(&idx) || idx >= buckets.size()) {
      return Status::Internal("bad hash-index slot index");
    }
    state->directory.push_back(buckets[idx]);
  }
  if (!r.Done()) return Status::Internal("trailing hash-index blob bytes");
  return db->CreateObject(HashIndexObjectType(), name, std::move(state));
}

std::string DumpHashIndex(Database& db, ObjectId id) {
  const HashIndexState* s = db.StateOf<HashIndexState>(id);
  std::map<std::string, std::string> all;
  std::unordered_map<uint64_t, bool> seen;
  for (ObjectId slot : s->directory) {
    if (!seen.emplace(slot.value, true).second) continue;
    const BucketState* bs = db.StateOf<BucketState>(slot);
    const PageState* ps = db.StateOf<PageState>(bs->page);
    for (const auto& [k, v] : ps->entries()) all[k] = v;
  }
  std::string out;
  for (const auto& [k, v] : all) out += k + "=" + v + "\n";
  return out;
}

}  // namespace

RootSerde DirectorySerde() {
  RootSerde serde;
  serde.serialize = SerializeDirectory;
  serde.deserialize = DeserializeDirectory;
  serde.dump = DumpDirectory;
  return serde;
}

RootSerde HashIndexSerde() {
  RootSerde serde;
  serde.serialize = SerializeHashIndex;
  serde.deserialize = DeserializeHashIndex;
  serde.dump = DumpHashIndex;
  return serde;
}

Status RegisterStandardSerdes(StorageEngine* engine) {
  OODB_RETURN_IF_ERROR(engine->RegisterType("directory", DirectorySerde()));
  return engine->RegisterType("hash-index", HashIndexSerde());
}

}  // namespace oodb
