// Page object type and primitive method implementations.
//
// Pages are the zero layer: methods call nothing, execute atomically
// under the object latch, and carry the classical read/write
// commutativity (only readers commute). Mutators register *physical*
// compensations — safe because page locks are still held inside the
// enclosing action's sphere whenever these compensations can run.

#pragma once

#include <string>

#include "cc/database.h"
#include "storage/page.h"

namespace oodb {

/// The primitive Page type. Readers: read, scan, routeLE, count,
/// contains. Writers: write, erase.
const ObjectType* PageObjectType();

/// Registers all page methods on `db`:
///   read(key) -> value | none
///   contains(key) -> 1 | 0
///   write(key, value) -> none            (Capacity when full)
///   erase(key) -> old | none
///   scan() -> "k<US>v<US>k<US>v..."      (all entries, key order)
///   routeLE(key) -> value of greatest stored key <= key | none
///   count() -> number of entries
void RegisterPageMethods(Database* db);

/// Creates a page object with the given capacity.
ObjectId CreatePage(Database* db, std::string name, size_t capacity);

}  // namespace oodb
