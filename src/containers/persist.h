// RootSerde hooks for the persistable container types.
//
// The storage engine moves whole roots between the object store and
// checkpoint blobs through these hooks; it never learns container
// internals. Two levels of fidelity matter here:
//
//   serialize/deserialize  reproduce the *structure* (for the hash
//                          index: bucket layout, depths, page content)
//                          so a restart resumes with the same shape;
//   dump                   renders only the *semantic* content (sorted
//                          key=value lines), because recovery replays
//                          logical operations and is free to rebuild a
//                          different — equally correct — structure.
//                          All equality checks in the crash harness
//                          compare dumps, never structure.

#pragma once

#include <string>

#include "storage/engine.h"

namespace oodb {

/// Serde for Directory roots (tag "directory").
RootSerde DirectorySerde();

/// Serde for HashIndex roots (tag "hash-index"). Deserialization
/// recreates the bucket and page objects (with fresh object ids and
/// names derived from the root name) and rebuilds the directory.
RootSerde HashIndexSerde();

/// Registers both standard serdes on `engine` under their usual tags.
Status RegisterStandardSerdes(StorageEngine* engine);

}  // namespace oodb
