// FIFO queue with Weihl-style semantic commutativity [22]: enqueues
// commute with each other (the order of concurrent enqueuers is not
// observable to either of them), while dequeues conflict with both
// dequeues and enqueues (emptiness and front identity are observable).

#pragma once

#include <deque>
#include <string>

#include "cc/database.h"

namespace oodb {

struct QueueState : public ObjectState {
  std::deque<std::string> items;
};

/// enq Θ enq and size Θ size; everything else conflicts.
const ObjectType* FifoQueueType();

/// Registers:
///   enq(v) -> none
///   deq() -> front value | none when empty
///   size() -> count
///   cancel(v) -> none      (compensation of enq: removes the latest v)
///   pushFront(v) -> none   (compensation of deq)
void RegisterQueueMethods(Database* db);

ObjectId CreateQueue(Database* db, std::string name);

}  // namespace oodb
