// FIFO queue with Weihl-style semantic commutativity [22]: equal-value
// enqueues commute (their order is unobservable), different-value
// enqueues conflict (a later dequeuer observes the FIFO order), and
// dequeues conflict with everything that moves the front. The spec was
// tightened to exactly what the inference engine
// (analysis/commutativity_inference.h) proves from both-orders state
// probing.

#pragma once

#include <deque>
#include <string>

#include "cc/database.h"

namespace oodb {

struct QueueState : public ObjectState {
  std::deque<std::string> items;
};

/// enq Θ enq and pushFront Θ pushFront on equal values; the two ends
/// are independent (enq Θ pushFront); cancel interacts only with its
/// own value; size Θ size; everything else conflicts.
const ObjectType* FifoQueueType();

/// Registers:
///   enq(v) -> none
///   deq() -> front value | none when empty
///   size() -> count
///   cancel(v) -> none      (compensation of enq: removes the latest v)
///   pushFront(v) -> none   (compensation of deq)
void RegisterQueueMethods(Database* db);

ObjectId CreateQueue(Database* db, std::string name);

}  // namespace oodb
