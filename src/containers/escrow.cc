#include "containers/escrow.h"

#include <memory>
#include <set>
#include <string>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* EscrowAccountType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("deposit", "deposit");
    spec->SetCommutes("deposit", "withdraw");
    spec->SetCommutes("withdraw", "withdraw");
    spec->SetCommutes("balance", "balance");
    return new ObjectType("EscrowAccount", std::move(spec),
                          /*primitive=*/true);
  }();
  return type;
}

const ObjectType* NameOnlyAccountType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("deposit", "deposit");
    spec->SetCommutes("balance", "balance");
    return new ObjectType("NameOnlyAccount", std::move(spec),
                          /*primitive=*/true);
  }();
  return type;
}

const ObjectType* RWAccountType() {
  static const ObjectType* type = [] {
    return new ObjectType("RWAccount",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"balance"}),
                          /*primitive=*/true);
  }();
  return type;
}

void RegisterAccountMethods(Database* db, const ObjectType* type) {
  TypeRegistry::Global().Register(type);
  db->Register(type, "deposit",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty() || params[0].AsInt() < 0) {
                   return Status::InvalidArgument(
                       "deposit needs a nonnegative amount");
                 }
                 auto* acct = ctx.state<AccountState>();
                 acct->balance += params[0].AsInt();
                 ctx.SetCompensation(Invocation("withdraw", {params[0]}));
                 // Return the amount, not the balance: a balance return
                 // would leak the other deposits' order and refute the
                 // declared deposit Θ deposit (caught by oodb_infer).
                 *result = params[0];
                 return Status::OK();
               });

  db->Register(type, "withdraw",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty() || params[0].AsInt() < 0) {
                   return Status::InvalidArgument(
                       "withdraw needs a nonnegative amount");
                 }
                 auto* acct = ctx.state<AccountState>();
                 int64_t amount = params[0].AsInt();
                 // The escrow test: admissibility is checked atomically,
                 // so successful withdrawals commute.
                 if (acct->balance - amount < acct->min_balance) {
                   return Status::Conflict("insufficient funds");
                 }
                 acct->balance -= amount;
                 ctx.SetCompensation(Invocation("deposit", {params[0]}));
                 // Amount, not balance — see deposit.
                 *result = params[0];
                 return Status::OK();
               });

  db->Register(type, "balance",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 *result = Value(ctx.state<AccountState>()->balance);
                 return Status::OK();
               });

  // Schema traits: accounts are primitive (Def 3 — no outgoing calls);
  // balance is the only observer.
  db->DeclareTraits(type, "deposit",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value(5)}, {Value(7)}},
                     .compensations = {"withdraw"}});
  db->DeclareTraits(type, "withdraw",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value(5)}, {Value(7)}},
                     .compensations = {"deposit"}});
  db->DeclareTraits(type, "balance",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});

  // Probe hooks: "tight" admits each sample withdrawal alone but not
  // two together, and "floor" admits none — exercising the escrow
  // admission rule (a kConflict refusal is vacuous evidence, not a
  // divergence). All three account variants share these states; the
  // coarser specs (NameOnlyAccount, RWAccount) are deliberate ablations
  // and show up as lost-concurrency notes, not errors.
  auto make = [](int64_t balance, int64_t min_balance) {
    return [balance, min_balance] {
      auto state = std::make_unique<AccountState>();
      state->balance = balance;
      state->min_balance = min_balance;
      return std::unique_ptr<ObjectState>(std::move(state));
    };
  };
  db->DeclareProbe(
      type,
      {.states = {{"ample", make(100, 0)},
                  {"tight", make(10, 0)},
                  {"floor", make(5, 5)}},
       .fingerprint = [](const ObjectState& raw) {
         const auto& acct = static_cast<const AccountState&>(raw);
         return "bal=" + std::to_string(acct.balance) +
                ",min=" + std::to_string(acct.min_balance);
       }});
}

ObjectId CreateAccount(Database* db, const ObjectType* type,
                       std::string name, int64_t initial_balance,
                       int64_t min_balance) {
  auto state = std::make_unique<AccountState>();
  state->balance = initial_balance;
  state->min_balance = min_balance;
  return db->CreateObject(type, std::move(name), std::move(state));
}

}  // namespace oodb
