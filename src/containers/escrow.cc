#include "containers/escrow.h"

#include <memory>
#include <set>

#include "model/type_registry.h"

namespace oodb {

const ObjectType* EscrowAccountType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("deposit", "deposit");
    spec->SetCommutes("deposit", "withdraw");
    spec->SetCommutes("withdraw", "withdraw");
    spec->SetCommutes("balance", "balance");
    return new ObjectType("EscrowAccount", std::move(spec),
                          /*primitive=*/true);
  }();
  return type;
}

const ObjectType* NameOnlyAccountType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("deposit", "deposit");
    spec->SetCommutes("balance", "balance");
    return new ObjectType("NameOnlyAccount", std::move(spec),
                          /*primitive=*/true);
  }();
  return type;
}

const ObjectType* RWAccountType() {
  static const ObjectType* type = [] {
    return new ObjectType("RWAccount",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"balance"}),
                          /*primitive=*/true);
  }();
  return type;
}

void RegisterAccountMethods(Database* db, const ObjectType* type) {
  TypeRegistry::Global().Register(type);
  db->Register(type, "deposit",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty() || params[0].AsInt() < 0) {
                   return Status::InvalidArgument(
                       "deposit needs a nonnegative amount");
                 }
                 auto* acct = ctx.state<AccountState>();
                 acct->balance += params[0].AsInt();
                 ctx.SetCompensation(Invocation("withdraw", {params[0]}));
                 *result = Value(acct->balance);
                 return Status::OK();
               });

  db->Register(type, "withdraw",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 if (params.empty() || params[0].AsInt() < 0) {
                   return Status::InvalidArgument(
                       "withdraw needs a nonnegative amount");
                 }
                 auto* acct = ctx.state<AccountState>();
                 int64_t amount = params[0].AsInt();
                 // The escrow test: admissibility is checked atomically,
                 // so successful withdrawals commute.
                 if (acct->balance - amount < acct->min_balance) {
                   return Status::Conflict("insufficient funds");
                 }
                 acct->balance -= amount;
                 ctx.SetCompensation(Invocation("deposit", {params[0]}));
                 *result = Value(acct->balance);
                 return Status::OK();
               });

  db->Register(type, "balance",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 *result = Value(ctx.state<AccountState>()->balance);
                 return Status::OK();
               });

  // Schema traits: accounts are primitive (Def 3 — no outgoing calls);
  // balance is the only observer.
  db->DeclareTraits(type, "deposit",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value(5)}, {Value(7)}},
                     .compensations = {"withdraw"}});
  db->DeclareTraits(type, "withdraw",
                    {.observer = false,
                     .calls = {},
                     .samples = {{Value(5)}, {Value(7)}},
                     .compensations = {"deposit"}});
  db->DeclareTraits(type, "balance",
                    {.observer = true, .calls = {}, .samples = {{}},
                    .compensations = {}});
}

ObjectId CreateAccount(Database* db, const ObjectType* type,
                       std::string name, int64_t initial_balance,
                       int64_t min_balance) {
  auto state = std::make_unique<AccountState>();
  state->balance = initial_balance;
  state->min_balance = min_balance;
  return db->CreateObject(type, std::move(name), std::move(state));
}

}  // namespace oodb
