#include "containers/codec.h"

namespace oodb {

namespace {
constexpr char kSep = '\x1f';
}

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += kSep;
    out += fields[i];
  }
  return out;
}

std::vector<std::string> SplitFields(const std::string& s) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(kSep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinPair(const std::string& a, const std::string& b) {
  return a + '\x1e' + b;
}

std::pair<std::string, std::string> SplitPair(const std::string& s) {
  size_t pos = s.find('\x1e');
  if (pos == std::string::npos) return {"", ""};
  return {s.substr(0, pos), s.substr(pos + 1)};
}

Value InsertOutcome::Encode() const {
  return Value(JoinFields({had_old ? "1" : "0", old_value,
                           split ? "1" : "0", split_sep,
                           std::to_string(split_child)}));
}

InsertOutcome InsertOutcome::Decode(const Value& v) {
  InsertOutcome out;
  std::vector<std::string> f = SplitFields(v.AsString());
  if (f.size() != 5) return out;
  out.had_old = f[0] == "1";
  out.old_value = f[1];
  out.split = f[2] == "1";
  out.split_sep = f[3];
  out.split_child = std::stoull(f[4]);
  return out;
}

}  // namespace oodb
