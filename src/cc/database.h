// Database: the object store plus the transaction runtime.
//
// A Database owns the objects (encapsulated state + type), the method
// registry, the semantic lock manager, and the TransactionSystem that
// records every execution (the input to the schedule validator). Its
// scheduler mode selects the concurrency control protocol:
//
//   kOpenNested       open nested semantic 2PL — the paper's protocol:
//                     every action locks in commutativity modes; locks
//                     pass up at completion and unwind at commit.
//   kClosedNested     closed nested transactions [12]: same semantic
//                     modes, but nothing releases before top-level
//                     commit — "only top-level-transactions are
//                     isolated from each other".
//   kFlat2PL          conventional strict 2PL at the primitive (page)
//                     layer: the baseline the paper compares against.
//   kObjectExclusive  the section 1 strawman: every touched object is
//                     locked exclusively until commit ("locking the
//                     whole object for the possibly long time a
//                     transaction may last is not acceptable").
//   kNone             no concurrency control (to produce the anomalous
//                     histories the validator must reject).
//
// Aborts (voluntary, deadlock, or failure) are compensation-based, as
// open nesting requires: each completed action registers a compensating
// invocation; abort executes the direct children's compensations in
// reverse completion order as ordinary actions.
//
// Sharding and history modes. With `shards` > 1 the object map and the
// lock table are partitioned by object id: lookups take a per-shard
// shared_mutex in shared mode, and lock traffic stays within its
// stripe (see lock_manager.h). Each action carries the set of stripes
// it may hold locks in as a 64-bit mask, so completion only visits
// those stripes. History recording has two modes: kRecorded appends
// every action to the shared TransactionSystem as it happens (the
// classic, validator-ready path), kEpochBatched appends compact events
// to per-thread buffers that a flusher drains once per epoch
// (AdvanceEpoch) — the throughput path; replay the batches through
// HistoryEpochSink to validate after the fact. Durability and tracing
// read the live TransactionSystem and are unsupported in epoch mode.

#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/durability.h"
#include "cc/epoch_log.h"
#include "cc/lock_manager.h"
#include "cc/method.h"
#include "cc/method_registry.h"
#include "model/transaction_system.h"
#include "obs/metrics.h"
#include "obs/phases.h"
#include "obs/trace.h"
#include "util/histogram.h"

namespace oodb {

class MetricsSampler;

/// Cheap atomic tallies of everything a Database ran. Writers bump them
/// with relaxed atomics on the hot path; readers (benches, harness,
/// monitors) may load at any time.
struct RunCounters {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> deadlocks{0};   ///< deadlock verdicts at top level
  std::atomic<uint64_t> conflicts{0};   ///< lock acquisitions denied
  std::atomic<uint64_t> operations{0};  ///< primitive actions executed
  std::atomic<uint64_t> retries{0};     ///< deadlock-triggered re-runs

  void Reset() {
    committed = aborted = deadlocks = 0;
    conflicts = operations = retries = 0;
  }

  /// Copies the current values onto run.* gauges in `registry`.
  /// Idempotent (gauges are set, not added), so snapshotting twice is
  /// safe; call it whenever a fresh snapshot is about to be exported.
  void PublishTo(MetricsRegistry* registry) const;
};

enum class SchedulerKind {
  kOpenNested,
  kClosedNested,
  kFlat2PL,
  kObjectExclusive,
  kNone,
};

/// Human-readable scheduler name for reports.
const char* SchedulerKindName(SchedulerKind kind);

/// How the execution history is published.
enum class HistoryMode {
  /// Every action is recorded into the shared TransactionSystem as it
  /// happens. The record is the history: validate, print, or trace it
  /// directly. One global mutex per recorded event.
  kRecorded,
  /// Actions append ActionEvents to per-thread buffers; AdvanceEpoch
  /// drains all buffers into one batch per epoch for the attached
  /// EpochSink. Nothing lands in the TransactionSystem during the run
  /// (objects are still registered); durability and tracing are
  /// unsupported. See cc/epoch_log.h.
  kEpochBatched,
};

const char* HistoryModeName(HistoryMode mode);

struct DatabaseOptions {
  SchedulerKind scheduler = SchedulerKind::kOpenNested;
  LockManagerOptions lock_options;
  /// RunTransaction retries after deadlock up to this many times.
  int max_retries = 16;
  /// When nonzero, deadlock-retry backoff is drawn from an Rng seeded
  /// from this value and the transaction name, making retry schedules
  /// reproducible run to run. 0 keeps the per-thread seeding (distinct
  /// every run), which spreads contending threads better.
  uint64_t backoff_seed = 0;
  /// Runtime shards: partitions the object map and (unless
  /// lock_options.shards was set explicitly) the lock table. 1 = the
  /// classic single-shard runtime; 0 = hardware thread count. Capped at
  /// LockManager::kMaxShards.
  size_t shards = 1;
  HistoryMode history = HistoryMode::kRecorded;
};

/// The body of a transaction: issues top-level calls through the
/// context and returns OK to commit or an error to abort.
using TransactionBody = std::function<Status(MethodContext& txn)>;

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- setup ----------------------------------------------------------

  /// Registers the implementation of `method` for `type`, with optional
  /// declared schema traits (observer flag, call targets, parameter
  /// samples — see MethodTraits) for the static analysis passes.
  void Register(const ObjectType* type, const std::string& method,
                MethodImpl impl, MethodTraits traits = {});

  /// Declares schema traits for an already-registered method (keeps the
  /// registration call sites compact when implementations are lambdas).
  void DeclareTraits(const ObjectType* type, const std::string& method,
                     MethodTraits traits);

  /// Declares the probing hooks of `type` for the commutativity
  /// inference engine (state-class generators + fingerprint; primitive
  /// types only — see TypeProbeTraits).
  void DeclareProbe(const ObjectType* type, TypeProbeTraits traits);

  /// Creates an object with the given state. Thread-safe (splits create
  /// objects mid-transaction).
  ObjectId CreateObject(const ObjectType* type, std::string name,
                        std::unique_ptr<ObjectState> state);

  // --- execution -------------------------------------------------------

  /// Runs `body` as a top-level transaction named `name`, committing on
  /// OK. Deadlocks abort (with compensation), back off, and retry up to
  /// max_retries; other errors abort and return. Every attempt —
  /// including aborted ones and their compensations — is recorded in the
  /// transaction system, so validation sees the real history.
  Status RunTransaction(const std::string& name, const TransactionBody& body);

  // --- epoch-batched history -------------------------------------------

  /// In kEpochBatched mode: drains every thread's event buffer into one
  /// batch, hands it to the sink (if any), and returns the batch size.
  /// Call from a flusher thread at the epoch interval, and once after
  /// the last transaction finishes to publish the tail. No-op (returns
  /// 0) in kRecorded mode.
  uint64_t AdvanceEpoch();

  /// Receives each flushed batch (kEpochBatched only). Attach before
  /// traffic; null detaches (batches are then counted and dropped).
  void SetEpochSink(EpochSink* sink) { epoch_sink_ = sink; }

  /// The event log in kEpochBatched mode, null otherwise.
  EpochLog* epoch_log() { return epoch_log_.get(); }

  // --- observability ---------------------------------------------------

  /// Publishes into `metrics` (db.txn.* / db.call.* counters, the lock
  /// manager's db.lock.* family, and per-root-transaction phase.*_ns
  /// latency histograms — see obs/phases.h) and records one span per
  /// action into `tracer` from now on. Either may be null to leave that
  /// side off; calling again with nulls detaches. Attach before running
  /// transactions; attaching is not synchronized against concurrent
  /// ExecuteCall traffic. Tracing requires kRecorded history (spans
  /// read the live record); in epoch mode the tracer is ignored.
  void AttachObservability(MetricsRegistry* metrics, Tracer* tracer);

  /// Registers this runtime's contention probes on `sampler`: per-stripe
  /// lock-table occupancy/wait-depth gauges, waits-for graph size, top-K
  /// hot objects, epoch-pipeline depth, and the run.* counters — all
  /// refreshed on each sampler tick into the registry given to
  /// AttachObservability (which must be the sampler's registry, attached
  /// first). See docs/OBSERVABILITY.md ("Contention snapshots").
  void InstallSamplerProbes(MetricsSampler* sampler);

  // --- durability ------------------------------------------------------

  /// Attaches (or, with null, detaches) the persistence engine. While
  /// attached, every RunTransaction attempt runs under a shared
  /// transaction gate and reports op/commit/abort events to the hook
  /// (see DurabilityHook for the exact ordering contract). Attach while
  /// no transactions run; the runtime does not synchronize the switch.
  /// Requires kRecorded history (the WAL reads the live record);
  /// attaching in epoch mode is rejected with an error log.
  void AttachDurability(DurabilityHook* hook);
  DurabilityHook* durability() const { return durability_; }

  /// Runs `fn` while holding the transaction gate exclusively: no
  /// transaction attempt is in flight during `fn`, and every previously
  /// committed transaction's effects are fully applied. This is the
  /// stop-the-world window a consistent checkpoint needs. Must not be
  /// called from inside a transaction body (it would self-deadlock).
  void QuiesceAndRun(const std::function<void()>& fn);

  // --- introspection ---------------------------------------------------

  /// The recorded execution (for the validator and the printers).
  /// In kEpochBatched mode it holds the objects but no actions.
  TransactionSystem& ts() { return ts_; }
  const TransactionSystem& ts() const { return ts_; }

  LockManager& locks() { return locks_; }
  /// The registered methods and their declared traits (for oodb_lint).
  const MethodRegistry& registry() const { return registry_; }
  RunCounters& counters() { return counters_; }
  const DatabaseOptions& options() const { return options_; }
  /// Resolved runtime shard count (object map stripes).
  size_t shard_count() const { return object_shards_.size(); }

  /// Direct, unsynchronized state peek for tests and for loading data
  /// outside any transaction. Do not use while transactions run.
  template <typename T>
  T* StateOf(ObjectId id) {
    return static_cast<T*>(RuntimeOf(id)->state.get());
  }

 private:
  friend class MethodContext;

  struct RuntimeObject {
    const ObjectType* type;
    std::unique_ptr<ObjectState> state;
    std::mutex latch;
  };

  /// One stripe of the object map. Lookups (the per-call hot path) take
  /// `mu` shared; only CreateObject takes it exclusive.
  struct ObjectShard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<RuntimeObject>> objects;
  };

  RuntimeObject* RuntimeOf(ObjectId id);

  /// Call-tree depth of `action` (0 = top-level). Traced path only.
  uint32_t LevelOf(ActionId action) const;

  /// Records the span of `action` into tracer_. Caller checks tracer_.
  /// `phases`, when non-empty, is a PhasesJson fragment attached to the
  /// span (root-transaction spans only).
  void TraceAction(ActionId action, ActionId parent, ObjectId obj,
                   const std::string& name, uint64_t start,
                   const char* outcome, std::string phases = {});

  /// Records, locks, and executes one call; the heart of the runtime.
  /// `parent_ctx` is the caller's context (the transaction body's for
  /// top-level calls): it supplies the parent action, the cached
  /// top-level id, the ancestor chain for sphere checks, and receives
  /// the child's lock-shard mask at completion. `process` overrides the
  /// inherited intra-transaction process id (0 = inherit); used by
  /// CallParallel. When the call completed on a persistent root and was
  /// logged, `logged_lsn` (if non-null) receives the WAL record's LSN
  /// (0 otherwise).
  Status ExecuteCall(MethodContext* parent_ctx, ObjectId obj,
                     Invocation inv, Value* result, uint32_t process = 0,
                     uint64_t* logged_lsn = nullptr);

  /// Runs the registered compensations of `ctx`'s action's completed
  /// children in reverse completion order (as ordinary actions under
  /// that action).
  void CompensateChildren(MethodContext* ctx);

  struct CompensationEntry {
    ObjectId object;
    Invocation inv;
  };

  /// One stripe of the compensation log, selected by parent action id.
  struct CompStripe {
    std::mutex mu;
    /// parent action -> compensations of its completed children, in
    /// completion order.
    std::unordered_map<uint64_t, std::vector<CompensationEntry>> log;
  };
  static constexpr size_t kCompStripes = 16;
  CompStripe& CompStripeOf(ActionId parent) {
    return comp_stripes_[parent.value & (kCompStripes - 1)];
  }

  DatabaseOptions options_;
  TransactionSystem ts_;
  LockManager locks_;
  MethodRegistry registry_;
  RunCounters counters_;

  /// Object map stripes; unique_ptr keeps each stripe's shared_mutex
  /// off its neighbors' cache lines.
  std::vector<std::unique_ptr<ObjectShard>> object_shards_;

  std::array<CompStripe, kCompStripes> comp_stripes_;

  /// Fresh intra-transaction process ids for CallParallel (Def 9);
  /// process 0 is the default sequential process of every transaction.
  std::atomic<uint32_t> next_process_{1};

  /// Epoch-batched history (null in kRecorded mode). Ids, Axiom 1
  /// timestamps, and completion sequence numbers come from the atomic
  /// counters below instead of the TransactionSystem.
  std::unique_ptr<EpochLog> epoch_log_;
  EpochSink* epoch_sink_ = nullptr;
  std::atomic<uint64_t> next_action_{0};
  std::atomic<uint64_t> next_timestamp_{0};
  std::atomic<uint64_t> next_completion_{0};

  /// Persistence engine, or null for the classic in-memory database.
  /// The WAL-off fast path costs one null test per event.
  DurabilityHook* durability_ = nullptr;
  /// Transaction gate: attempts hold it shared, checkpoints exclusive.
  /// Only taken while durability_ is attached.
  std::shared_mutex txn_gate_;

  /// Observability sinks; all null when detached, so the hot path pays
  /// one predictable branch per event.
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  /// Per-phase latency histograms (null when metrics are detached);
  /// RunTransaction feeds one observation per finished root txn.
  std::unique_ptr<PhaseHistograms> phase_hists_;
  Counter* m_committed_ = nullptr;
  Counter* m_aborted_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_conflicts_ = nullptr;
  Counter* m_operations_ = nullptr;
  Counter* m_epoch_flushes_ = nullptr;
  Counter* m_epoch_events_ = nullptr;
};

}  // namespace oodb
