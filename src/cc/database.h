// Database: the object store plus the transaction runtime.
//
// A Database owns the objects (encapsulated state + type), the method
// registry, the semantic lock manager, and the TransactionSystem that
// records every execution (the input to the schedule validator). Its
// scheduler mode selects the concurrency control protocol:
//
//   kOpenNested       open nested semantic 2PL — the paper's protocol:
//                     every action locks in commutativity modes; locks
//                     pass up at completion and unwind at commit.
//   kClosedNested     closed nested transactions [12]: same semantic
//                     modes, but nothing releases before top-level
//                     commit — "only top-level-transactions are
//                     isolated from each other".
//   kFlat2PL          conventional strict 2PL at the primitive (page)
//                     layer: the baseline the paper compares against.
//   kObjectExclusive  the section 1 strawman: every touched object is
//                     locked exclusively until commit ("locking the
//                     whole object for the possibly long time a
//                     transaction may last is not acceptable").
//   kNone             no concurrency control (to produce the anomalous
//                     histories the validator must reject).
//
// Aborts (voluntary, deadlock, or failure) are compensation-based, as
// open nesting requires: each completed action registers a compensating
// invocation; abort executes the direct children's compensations in
// reverse completion order as ordinary actions.

#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/durability.h"
#include "cc/lock_manager.h"
#include "cc/method.h"
#include "cc/method_registry.h"
#include "model/transaction_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/histogram.h"

namespace oodb {

/// Cheap atomic tallies of everything a Database ran. Writers bump them
/// with relaxed atomics on the hot path; readers (benches, harness,
/// monitors) may load at any time.
struct RunCounters {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> deadlocks{0};   ///< deadlock verdicts at top level
  std::atomic<uint64_t> conflicts{0};   ///< lock acquisitions denied
  std::atomic<uint64_t> operations{0};  ///< primitive actions executed
  std::atomic<uint64_t> retries{0};     ///< deadlock-triggered re-runs

  void Reset() {
    committed = aborted = deadlocks = 0;
    conflicts = operations = retries = 0;
  }

  /// Copies the current values onto run.* gauges in `registry`.
  /// Idempotent (gauges are set, not added), so snapshotting twice is
  /// safe; call it whenever a fresh snapshot is about to be exported.
  void PublishTo(MetricsRegistry* registry) const;
};

enum class SchedulerKind {
  kOpenNested,
  kClosedNested,
  kFlat2PL,
  kObjectExclusive,
  kNone,
};

/// Human-readable scheduler name for reports.
const char* SchedulerKindName(SchedulerKind kind);

struct DatabaseOptions {
  SchedulerKind scheduler = SchedulerKind::kOpenNested;
  LockManagerOptions lock_options;
  /// RunTransaction retries after deadlock up to this many times.
  int max_retries = 16;
  /// When nonzero, deadlock-retry backoff is drawn from an Rng seeded
  /// from this value and the transaction name, making retry schedules
  /// reproducible run to run. 0 keeps the per-thread seeding (distinct
  /// every run), which spreads contending threads better.
  uint64_t backoff_seed = 0;
};

/// The body of a transaction: issues top-level calls through the
/// context and returns OK to commit or an error to abort.
using TransactionBody = std::function<Status(MethodContext& txn)>;

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- setup ----------------------------------------------------------

  /// Registers the implementation of `method` for `type`, with optional
  /// declared schema traits (observer flag, call targets, parameter
  /// samples — see MethodTraits) for the static analysis passes.
  void Register(const ObjectType* type, const std::string& method,
                MethodImpl impl, MethodTraits traits = {});

  /// Declares schema traits for an already-registered method (keeps the
  /// registration call sites compact when implementations are lambdas).
  void DeclareTraits(const ObjectType* type, const std::string& method,
                     MethodTraits traits);

  /// Creates an object with the given state. Thread-safe (splits create
  /// objects mid-transaction).
  ObjectId CreateObject(const ObjectType* type, std::string name,
                        std::unique_ptr<ObjectState> state);

  // --- execution -------------------------------------------------------

  /// Runs `body` as a top-level transaction named `name`, committing on
  /// OK. Deadlocks abort (with compensation), back off, and retry up to
  /// max_retries; other errors abort and return. Every attempt —
  /// including aborted ones and their compensations — is recorded in the
  /// transaction system, so validation sees the real history.
  Status RunTransaction(const std::string& name, const TransactionBody& body);

  // --- observability ---------------------------------------------------

  /// Publishes into `metrics` (db.txn.* / db.call.* counters, plus the
  /// lock manager's db.lock.* family) and records one span per action
  /// into `tracer` from now on. Either may be null to leave that side
  /// off; calling again with nulls detaches. Attach before running
  /// transactions; attaching is not synchronized against concurrent
  /// ExecuteCall traffic.
  void AttachObservability(MetricsRegistry* metrics, Tracer* tracer);

  // --- durability ------------------------------------------------------

  /// Attaches (or, with null, detaches) the persistence engine. While
  /// attached, every RunTransaction attempt runs under a shared
  /// transaction gate and reports op/commit/abort events to the hook
  /// (see DurabilityHook for the exact ordering contract). Attach while
  /// no transactions run; the runtime does not synchronize the switch.
  void AttachDurability(DurabilityHook* hook) { durability_ = hook; }
  DurabilityHook* durability() const { return durability_; }

  /// Runs `fn` while holding the transaction gate exclusively: no
  /// transaction attempt is in flight during `fn`, and every previously
  /// committed transaction's effects are fully applied. This is the
  /// stop-the-world window a consistent checkpoint needs. Must not be
  /// called from inside a transaction body (it would self-deadlock).
  void QuiesceAndRun(const std::function<void()>& fn);

  // --- introspection ---------------------------------------------------

  /// The recorded execution (for the validator and the printers).
  TransactionSystem& ts() { return ts_; }
  const TransactionSystem& ts() const { return ts_; }

  LockManager& locks() { return locks_; }
  /// The registered methods and their declared traits (for oodb_lint).
  const MethodRegistry& registry() const { return registry_; }
  RunCounters& counters() { return counters_; }
  const DatabaseOptions& options() const { return options_; }

  /// Direct, unsynchronized state peek for tests and for loading data
  /// outside any transaction. Do not use while transactions run.
  template <typename T>
  T* StateOf(ObjectId id) {
    return static_cast<T*>(RuntimeOf(id)->state.get());
  }

 private:
  friend class MethodContext;

  struct RuntimeObject {
    const ObjectType* type;
    std::unique_ptr<ObjectState> state;
    std::mutex latch;
  };

  RuntimeObject* RuntimeOf(ObjectId id);

  /// Call-tree depth of `action` (0 = top-level). Traced path only.
  uint32_t LevelOf(ActionId action) const;

  /// Records the span of `action` into tracer_. Caller checks tracer_.
  void TraceAction(ActionId action, ActionId parent, ObjectId obj,
                   const std::string& name, uint64_t start,
                   const char* outcome);

  /// Records, locks, and executes one call; the heart of the runtime.
  /// `process` overrides the inherited intra-transaction process id
  /// (0 = inherit); used by CallParallel. When the call completed on a
  /// persistent root and was logged, `logged_lsn` (if non-null)
  /// receives the WAL record's LSN (0 otherwise).
  Status ExecuteCall(ActionId parent, ObjectId obj, Invocation inv,
                     Value* result, uint32_t process = 0,
                     uint64_t* logged_lsn = nullptr);

  /// Runs the registered compensations of `action`'s completed children
  /// in reverse completion order (as ordinary actions under `action`).
  void CompensateChildren(ActionId action);

  struct CompensationEntry {
    ObjectId object;
    Invocation inv;
  };

  DatabaseOptions options_;
  TransactionSystem ts_;
  LockManager locks_;
  MethodRegistry registry_;
  RunCounters counters_;

  std::mutex objects_mutex_;
  std::unordered_map<uint64_t, std::unique_ptr<RuntimeObject>> objects_;

  std::mutex comp_mutex_;
  /// parent action -> compensations of its completed children, in
  /// completion order.
  std::unordered_map<uint64_t, std::vector<CompensationEntry>> comp_log_;

  /// Fresh intra-transaction process ids for CallParallel (Def 9);
  /// process 0 is the default sequential process of every transaction.
  std::atomic<uint32_t> next_process_{1};

  /// Persistence engine, or null for the classic in-memory database.
  /// The WAL-off fast path costs one null test per event.
  DurabilityHook* durability_ = nullptr;
  /// Transaction gate: attempts hold it shared, checkpoints exclusive.
  /// Only taken while durability_ is attached.
  std::shared_mutex txn_gate_;

  /// Observability sinks; all null when detached, so the hot path pays
  /// one predictable branch per event.
  Tracer* tracer_ = nullptr;
  Counter* m_committed_ = nullptr;
  Counter* m_aborted_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_conflicts_ = nullptr;
  Counter* m_operations_ = nullptr;
};

}  // namespace oodb
