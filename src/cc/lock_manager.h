// LockManager: semantic locking for open nested transactions.
//
// This is the runtime protocol that *produces* oo-serializable schedules
// (the paper defines the correctness criterion and names locking as the
// protocol family; the concrete rules follow the multi-level transaction
// literature it builds on [1, 3, 11, 23, 24], generalized to arbitrary
// call trees):
//
//   * When an action a starts on object O it acquires a lock in mode
//     "invocation of a". Compatibility is the commutativity
//     specification of O's type (Def 9): two locks are compatible iff
//     their invocations commute.
//   * Locks held anywhere inside the requester's own call sphere (the
//     lock's current holder is the requester or one of its ancestors)
//     are always compatible: a transaction never blocks on itself.
//   * When a completes, the locks its children passed up to it are
//     released (their effects are now covered by a's own semantic lock),
//     and a's own lock passes up to a's parent, which retains it until
//     it completes in turn. At top-level commit everything unwinds.
//   * Aborts run compensating actions under the normal protocol, then
//     release like a commit.
//
// Two degenerate modes support the baselines: holding every lock
// directly at the top level until commit (flat two-phase locking — with
// page read/write modes this is the conventional scheduler; with
// exclusive whole-object locks it is the section 1 strawman).
//
// Deadlocks are detected on a waits-for graph over top-level
// transactions; the requester that would close a cycle receives
// kDeadlock and is expected to abort. Intra-transaction waits
// (parallel sibling processes) are exempt from detection and resolved
// by lock pass-up, with a timeout as the safety net.
//
// Sharding. The lock table is partitioned into `shards` stripes by a
// hash of the object id: each stripe has its own latch, wait condvar,
// lock lists, and held-by index, so acquires and releases on objects in
// different stripes never contend and a release only wakes the waiters
// of its own stripe (with one stripe, every release wakes every waiter
// — the classic thundering herd this partitioning exists to kill).
// Only the waits-for graph stays global (deadlock cycles thread through
// objects in arbitrary stripes); it lives behind its own mutex and is
// touched only on the blocked path. shards=1 (the default) reproduces
// the pre-sharding runtime exactly.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "model/transaction_system.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace oodb {

/// How a lock's compatibility is decided.
enum class LockSemantics {
  kCommutativity,  ///< the object type's commutativity spec (Def 9)
  kExclusive,      ///< conflicts with everything outside the sphere
};

/// How deadlocks are handled.
enum class DeadlockPolicy {
  /// Detection: build the waits-for graph; the requester that would
  /// close a cycle receives kDeadlock (the default).
  kDetect,
  /// Avoidance (wait-die): a requester may wait only for *younger*
  /// top-level transactions (larger ids); one blocked by an older
  /// transaction dies immediately. Deadlock-free by construction; more
  /// aborts under contention. (Retried transactions get fresh, younger
  /// ids here, so the classical no-starvation argument is weakened —
  /// see the S7 bench.)
  kWaitDie,
};

const char* DeadlockPolicyName(DeadlockPolicy policy);

struct LockManagerOptions {
  /// Upper bound on one Acquire call; expiring counts as deadlock (the
  /// safety net for undetected intra-transaction deadlocks).
  std::chrono::milliseconds wait_timeout{2000};
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
  /// Lock-table stripes. 1 (the default) is the original single-table
  /// runtime; 0 resolves to the hardware thread count. Capped at
  /// kMaxShards so callers can carry shard sets as 64-bit masks.
  size_t shards = 1;
};

/// The requester's call sphere as a flat id array: the acquiring action
/// first, then its ancestors up to the top-level transaction. When the
/// runtime passes one, sphere membership is a linear scan over ids the
/// requesting thread owns — no walk of the shared TransactionSystem on
/// the hot path. Optional: without it the manager walks `ts` as before.
struct SphereChain {
  const ActionId* ids = nullptr;
  size_t len = 0;
};

/// Per-shard tallies, read without any shard latch (relaxed atomics
/// snapshotted into plain integers). The throughput driver reports
/// these per stripe so hot-stripe imbalance is visible.
struct LockShardStats {
  uint64_t acquires = 0;
  uint64_t waits = 0;
  uint64_t deadlocks = 0;
  uint64_t wait_ns = 0;  ///< total blocked time observed in this shard
};

/// Thread-safe semantic lock table for one Database.
class LockManager {
 public:
  /// Callers carry the shards an action holds locks in as a 64-bit
  /// mask, so shard counts are capped here.
  static constexpr size_t kMaxShards = 64;
  /// The "visit every shard" mask for callers that do not track one.
  static constexpr uint64_t kAllShards = ~uint64_t{0};

  /// `ts` provides the call-tree ancestry; it must outlive the manager.
  LockManager(const TransactionSystem* ts, LockManagerOptions options = {});

  /// Acquires a lock on `obj` in mode `inv` for `action` (with top-level
  /// transaction `top`). Blocks while incompatible locks exist. When
  /// `hold_at_top` is true the lock is immediately anchored at the
  /// top-level transaction (flat 2PL / strawman modes). `chain`, when
  /// provided, replaces the TransactionSystem ancestry walk for sphere
  /// checks (it must list `action` and its ancestors).
  ///
  /// Returns OK, or kDeadlock when waiting would close a waits-for cycle
  /// or exceed the timeout.
  Status Acquire(ObjectId obj, const ObjectType* type, const Invocation& inv,
                 ActionId action, ActionId top,
                 LockSemantics semantics = LockSemantics::kCommutativity,
                 bool hold_at_top = false,
                 const SphereChain* chain = nullptr);

  /// Lock pass-up at completion of `action`: locks passed up by its
  /// children are released; its own lock transfers to `parent`. An
  /// invalid `parent` (top-level) releases everything it holds.
  ///
  /// With `release_children` false (closed nested transactions [12]),
  /// nothing is released early: every lock the action holds — its own
  /// and the ones inherited from completed children — transfers to the
  /// parent and is only released at top-level completion. "By the use
  /// of conventional transactions and closed nested transactions only
  /// top-level-transactions are isolated from each other."
  ///
  /// `shard_mask` limits the shards visited; pass a superset of the
  /// shards `action` may hold locks in (kAllShards always works).
  void OnActionComplete(ActionId action, ActionId parent,
                        bool release_children = true,
                        uint64_t shard_mask = kAllShards);

  /// Releases every lock currently held by `holder` (top-level
  /// commit/abort, or cleanup of a failed action). Locks owned deeper
  /// but already passed up to `holder` are released too. `shard_mask`
  /// as in OnActionComplete.
  void ReleaseAllHeldBy(ActionId holder, uint64_t shard_mask = kAllShards);

  /// Releases the locks `owner` acquired that now sit with `holder`
  /// (pre-passed-up acquires cleaning up after a failed action). No-op
  /// when `owner` holds nothing under `holder`.
  void ReleaseOwned(ActionId owner, ActionId holder,
                    uint64_t shard_mask = kAllShards);

  /// Number of locks currently in the table (for tests).
  size_t LockCount() const;

  /// Stripe geometry: the shard of `obj`, and how many there are. The
  /// runtime uses ShardOf to maintain per-action shard masks.
  size_t ShardOf(ObjectId obj) const {
    // Fibonacci mix: consecutive ids (the common allocation pattern)
    // must spread across stripes.
    return static_cast<size_t>((obj.value * 0x9E3779B97F4A7C15ULL) >> 40) %
           shards_.size();
  }
  size_t shard_count() const { return shards_.size(); }
  /// Mask bit for `obj`'s shard.
  uint64_t ShardBit(ObjectId obj) const {
    return uint64_t{1} << ShardOf(obj);
  }

  /// Per-shard counters since construction, index = shard.
  std::vector<LockShardStats> PerShardStats() const;

  /// Publishes into `registry` from now on: db.lock.acquires/waits/
  /// deadlocks counters and the db.lock.wait_ns histogram (wait time per
  /// blocked Acquire, including the waits that end in a deadlock
  /// verdict). Pass nullptr to detach. Attach before traffic; not
  /// synchronized against concurrent Acquire calls.
  void AttachMetrics(MetricsRegistry* registry);

  /// Observability counters. Safe to read concurrently with running
  /// transactions (the counters are atomic; writers update them under
  /// the shard latches, monitors read them lock-free).
  uint64_t wait_count() const {
    return waits_.load(std::memory_order_relaxed);
  }
  uint64_t deadlock_count() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }

  /// Per-object contention: (object, waits observed on it), sorted by
  /// waits descending, at most `top_n` rows. For hotspot reports.
  std::vector<std::pair<ObjectId, uint64_t>> HottestObjects(
      size_t top_n = 10) const;

  /// Instantaneous per-stripe state for contention heatmaps: locks in
  /// the stripe's table, threads blocked in its wait loop, plus the
  /// cumulative waits/wait_ns tallies. Reads the per-stripe atomic
  /// tallies only — O(shards), no latch, no table scan — so a 10 ms
  /// sampler tick costs the workload nothing. The rows are mutually
  /// staggered relaxed reads (bounded staleness, no global pause — the
  /// property the MetricsSampler is built around).
  struct StripeOccupancy {
    size_t held = 0;     ///< locks currently in the stripe's table
    size_t waiters = 0;  ///< threads blocked in the stripe's wait loop
    uint64_t waits = 0;  ///< cumulative blocked Acquires
    uint64_t wait_ns = 0;  ///< cumulative blocked time
  };
  std::vector<StripeOccupancy> Occupancy() const;

  /// Current waits-for graph size (blocked top-level transactions and
  /// the edges among them). Non-blocking: returns false (outputs
  /// untouched) when the graph latch is contended, so a sampler probe
  /// keeps its previous values instead of stalling behind a deadlock
  /// check.
  bool WaitsForSize(size_t* nodes, size_t* edges) const;

 private:
  struct Lock {
    ObjectId object;
    const ObjectType* type;
    Invocation inv;
    ActionId owner;    ///< action that acquired it (never changes)
    ActionId holder;   ///< current holder; moves up the tree
    ActionId top;      ///< owner's top-level transaction (never changes)
    LockSemantics semantics;
  };

  /// One lock-table stripe. All non-atomic fields are guarded by `mu`.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable released;
    std::unordered_map<ObjectId, std::list<Lock>> table;
    /// holder action id -> locks it currently holds in this shard.
    std::unordered_map<uint64_t, std::vector<Lock*>> held_by;
    /// waits observed per object (keyed by ObjectId value).
    std::unordered_map<uint64_t, uint64_t> waits_per_object;
    /// Threads currently blocked in this shard's wait loop. Guarded by
    /// `mu`; releases skip the notify when nobody is waiting.
    size_t waiters = 0;
    /// Mirror of `waiters` readable without `mu` (Occupancy probes).
    std::atomic<size_t> waiters_now{0};
    /// Locks currently in `table`, maintained at grant/erase so probes
    /// never scan the table.
    std::atomic<size_t> held_now{0};

    std::atomic<uint64_t> acquires{0};
    std::atomic<uint64_t> waits{0};
    std::atomic<uint64_t> deadlocks{0};
    std::atomic<uint64_t> wait_ns{0};
  };

  /// True iff `holder` is `action` or one of its call ancestors.
  bool InSphere(ActionId holder, ActionId action,
                const SphereChain* chain) const;

  /// True iff the requesting lock mode is compatible with `lock`.
  bool Compatible(const Lock& lock, const ObjectType* type,
                  const Invocation& inv, ActionId action,
                  LockSemantics semantics, const SphereChain* chain) const;

  /// Collects the top-level transactions of all incompatible holders.
  /// Requires the shard's mu held.
  std::vector<uint64_t> Blockers(const Shard& shard, ObjectId obj,
                                 const ObjectType* type,
                                 const Invocation& inv, ActionId action,
                                 LockSemantics semantics,
                                 const SphereChain* chain) const;

  /// True iff adding requester->blockers edges would close a cycle in
  /// the waits-for graph. Requires graph_mu_ held.
  bool WouldDeadlock(uint64_t requester_top,
                     const std::vector<uint64_t>& blocker_tops) const;

  /// Drops requester's waits-for edges (under graph_mu_).
  void EraseWaitEdges(uint64_t requester_top);

  void MoveHolder(Shard* shard, Lock* lock, ActionId new_holder);
  void EraseLock(Shard* shard, Lock* lock);

  const TransactionSystem* ts_;
  LockManagerOptions options_;

  /// Stripes; unique_ptr keeps each shard's latch and condvar off its
  /// neighbors' cache lines.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Waits-for edges among top-level transactions (by ActionId value).
  /// Global — deadlock cycles cross stripes. Lock order: a shard's mu
  /// may be held when taking graph_mu_, never the reverse.
  mutable std::mutex graph_mu_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> waits_for_;

  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> deadlocks_{0};

  /// Cached registry metrics; all null when detached (the fast path
  /// then costs one predictable branch per event).
  Counter* m_acquires_ = nullptr;
  Counter* m_waits_ = nullptr;
  Counter* m_deadlocks_ = nullptr;
  HistogramMetric* m_wait_ns_ = nullptr;
};

}  // namespace oodb
