#include "cc/lock_manager.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "obs/phases.h"

namespace oodb {

const char* DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
  }
  return "?";
}

namespace {

size_t ResolveShards(size_t requested) {
  size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return std::min(n, LockManager::kMaxShards);
}

}  // namespace

LockManager::LockManager(const TransactionSystem* ts,
                         LockManagerOptions options)
    : ts_(ts), options_(options) {
  size_t n = ResolveShards(options.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

void LockManager::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_acquires_ = m_waits_ = m_deadlocks_ = nullptr;
    m_wait_ns_ = nullptr;
    return;
  }
  m_acquires_ = registry->GetCounter("db.lock.acquires");
  m_waits_ = registry->GetCounter("db.lock.waits");
  m_deadlocks_ = registry->GetCounter("db.lock.deadlocks");
  m_wait_ns_ = registry->GetHistogram("db.lock.wait_ns");
}

bool LockManager::InSphere(ActionId holder, ActionId action,
                           const SphereChain* chain) const {
  if (chain != nullptr) {
    for (size_t i = 0; i < chain->len; ++i) {
      if (chain->ids[i] == holder) return true;
    }
    return false;
  }
  ActionId cur = action;
  while (cur.valid()) {
    if (cur == holder) return true;
    cur = ts_->action(cur).parent;
  }
  return false;
}

bool LockManager::Compatible(const Lock& lock, const ObjectType* type,
                             const Invocation& inv, ActionId action,
                             LockSemantics semantics,
                             const SphereChain* chain) const {
  if (InSphere(lock.holder, action, chain)) return true;
  if (lock.semantics == LockSemantics::kExclusive ||
      semantics == LockSemantics::kExclusive) {
    return false;
  }
  return type->Commutes(lock.inv, inv);
}

std::vector<uint64_t> LockManager::Blockers(const Shard& shard, ObjectId obj,
                                            const ObjectType* type,
                                            const Invocation& inv,
                                            ActionId action,
                                            LockSemantics semantics,
                                            const SphereChain* chain) const {
  std::vector<uint64_t> blockers;
  auto it = shard.table.find(obj);
  if (it == shard.table.end()) return blockers;
  for (const Lock& lock : it->second) {
    if (!Compatible(lock, type, inv, action, semantics, chain)) {
      // The holder moves only within the owner's call tree, so its
      // top-level transaction is the one recorded at acquire time.
      blockers.push_back(lock.top.value);
    }
  }
  return blockers;
}

bool LockManager::WouldDeadlock(
    uint64_t requester_top, const std::vector<uint64_t>& blocker_tops) const {
  // Cycle iff requester_top is reachable from any blocker through the
  // waits-for edges (the requester is about to add edges to all
  // blockers). Intra-transaction waits (blocker == requester) are not
  // deadlocks: lock pass-up resolves them.
  std::deque<uint64_t> frontier;
  std::unordered_set<uint64_t> visited;
  for (uint64_t b : blocker_tops) {
    if (b == requester_top) continue;
    if (visited.insert(b).second) frontier.push_back(b);
  }
  while (!frontier.empty()) {
    uint64_t t = frontier.front();
    frontier.pop_front();
    if (t == requester_top) return true;
    auto it = waits_for_.find(t);
    if (it == waits_for_.end()) continue;
    for (uint64_t next : it->second) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

void LockManager::EraseWaitEdges(uint64_t requester_top) {
  std::lock_guard<std::mutex> guard(graph_mu_);
  waits_for_.erase(requester_top);
}

Status LockManager::Acquire(ObjectId obj, const ObjectType* type,
                            const Invocation& inv, ActionId action,
                            ActionId top, LockSemantics semantics,
                            bool hold_at_top, const SphereChain* chain) {
  Shard& shard = *shards_[ShardOf(obj)];
  shard.acquires.fetch_add(1, std::memory_order_relaxed);
  if (m_acquires_) m_acquires_->Increment();
  std::unique_lock<std::mutex> lock(shard.mu);
  auto deadline = std::chrono::steady_clock::now() + options_.wait_timeout;
  bool waited = false;
  std::chrono::steady_clock::time_point wait_start;
  // Wait time per blocked Acquire, clock read only on the cold path.
  // Waits that end in a deadlock verdict count too: the victim's wait
  // is exactly the latency its transaction lost before the retry.
  auto observe_wait = [&] {
    if (!waited) return;
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    shard.wait_ns.fetch_add(ns, std::memory_order_relaxed);
    if (m_wait_ns_ != nullptr) m_wait_ns_->Observe(ns);
    // Bill the blocked time to the requesting root transaction's phase
    // ledger (no-op unless the Database installed one — obs/phases.h).
    PhaseAccumulator::AddCurrent(Phase::kLockWait, ns);
  };
  for (;;) {
    std::vector<uint64_t> blockers =
        Blockers(shard, obj, type, inv, action, semantics, chain);
    if (blockers.empty()) break;
    if (!waited) {
      waits_.fetch_add(1, std::memory_order_relaxed);
      shard.waits.fetch_add(1, std::memory_order_relaxed);
      ++shard.waits_per_object[obj.value];
      waited = true;
      if (m_waits_) m_waits_->Increment();
      wait_start = std::chrono::steady_clock::now();
    }
    if (options_.deadlock_policy == DeadlockPolicy::kWaitDie) {
      // Wait only for younger transactions; die when an older one
      // blocks us. Intra-transaction waits are always allowed.
      for (uint64_t blocker : blockers) {
        if (blocker < top.value) {
          deadlocks_.fetch_add(1, std::memory_order_relaxed);
          shard.deadlocks.fetch_add(1, std::memory_order_relaxed);
          if (m_deadlocks_) m_deadlocks_->Increment();
          EraseWaitEdges(top.value);
          observe_wait();
          return Status::Deadlock(
              "wait-die: blocked by older transaction on " +
              ts_->object(obj).name);
        }
      }
      std::lock_guard<std::mutex> graph(graph_mu_);
      auto& edges = waits_for_[top.value];
      edges.clear();
      edges.insert(blockers.begin(), blockers.end());
    } else {
      // Detection: check and (re)publish this requester's edges in one
      // graph critical section. The shard latch is held across it; the
      // lock order (shard mu, then graph_mu_) is fixed everywhere.
      std::unique_lock<std::mutex> graph(graph_mu_);
      if (WouldDeadlock(top.value, blockers)) {
        waits_for_.erase(top.value);
        graph.unlock();
        deadlocks_.fetch_add(1, std::memory_order_relaxed);
        shard.deadlocks.fetch_add(1, std::memory_order_relaxed);
        if (m_deadlocks_) m_deadlocks_->Increment();
        observe_wait();
        return Status::Deadlock("waits-for cycle on " +
                                ts_->object(obj).name);
      }
      auto& edges = waits_for_[top.value];
      edges.clear();
      edges.insert(blockers.begin(), blockers.end());
    }
    ++shard.waiters;
    shard.waiters_now.store(shard.waiters, std::memory_order_relaxed);
    std::cv_status cv = shard.released.wait_until(lock, deadline);
    --shard.waiters;
    shard.waiters_now.store(shard.waiters, std::memory_order_relaxed);
    if (cv == std::cv_status::timeout) {
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      shard.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (m_deadlocks_) m_deadlocks_->Increment();
      EraseWaitEdges(top.value);
      observe_wait();
      return Status::Deadlock("lock wait timeout on " +
                              ts_->object(obj).name);
    }
  }
  if (waited) {
    EraseWaitEdges(top.value);
    observe_wait();
  }

  ActionId holder = hold_at_top ? top : action;
  auto& locks = shard.table[obj];
  locks.push_back(Lock{obj, type, inv, action, holder, top, semantics});
  shard.held_by[holder.value].push_back(&locks.back());
  shard.held_now.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void LockManager::MoveHolder(Shard* shard, Lock* lock, ActionId new_holder) {
  auto& old_list = shard->held_by[lock->holder.value];
  old_list.erase(std::remove(old_list.begin(), old_list.end(), lock),
                 old_list.end());
  if (old_list.empty()) shard->held_by.erase(lock->holder.value);
  lock->holder = new_holder;
  shard->held_by[new_holder.value].push_back(lock);
}

void LockManager::EraseLock(Shard* shard, Lock* lock) {
  auto& holder_list = shard->held_by[lock->holder.value];
  holder_list.erase(
      std::remove(holder_list.begin(), holder_list.end(), lock),
      holder_list.end());
  if (holder_list.empty()) shard->held_by.erase(lock->holder.value);
  auto& locks = shard->table[lock->object];
  for (auto it = locks.begin(); it != locks.end(); ++it) {
    if (&*it == lock) {
      locks.erase(it);
      shard->held_now.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
  }
}

void LockManager::OnActionComplete(ActionId action, ActionId parent,
                                   bool release_children,
                                   uint64_t shard_mask) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((shard_mask & (uint64_t{1} << s)) == 0) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> guard(shard.mu);
    auto it = shard.held_by.find(action.value);
    if (it == shard.held_by.end()) continue;
    // Copy: EraseLock/MoveHolder mutate held_by.
    std::vector<Lock*> held = it->second;
    for (Lock* lock : held) {
      if (!parent.valid()) {
        // Top-level completion unwinds everything in both disciplines.
        EraseLock(&shard, lock);
      } else if (lock->owner == action || !release_children) {
        // The action's own semantic lock passes up to the caller; under
        // closed nesting the children's locks ride along instead of
        // being released.
        MoveHolder(&shard, lock, parent);
      } else {
        // Open nesting: locks passed up by (now completed) children are
        // released — the action's semantic footprint covers them.
        EraseLock(&shard, lock);
      }
    }
    // Pass-ups can unblock intra-transaction waiters and erases anyone;
    // waiters in *other* stripes cannot be watching these locks, so the
    // wake stays stripe-local. Skipped entirely when nobody waits.
    if (shard.waiters > 0) shard.released.notify_all();
  }
}

void LockManager::ReleaseAllHeldBy(ActionId holder, uint64_t shard_mask) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((shard_mask & (uint64_t{1} << s)) == 0) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> guard(shard.mu);
    auto it = shard.held_by.find(holder.value);
    if (it == shard.held_by.end()) continue;
    std::vector<Lock*> held = it->second;
    for (Lock* lock : held) EraseLock(&shard, lock);
    if (shard.waiters > 0) shard.released.notify_all();
  }
}

void LockManager::ReleaseOwned(ActionId owner, ActionId holder,
                               uint64_t shard_mask) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if ((shard_mask & (uint64_t{1} << s)) == 0) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> guard(shard.mu);
    auto it = shard.held_by.find(holder.value);
    if (it == shard.held_by.end()) continue;
    std::vector<Lock*> owned;
    for (Lock* lock : it->second) {
      if (lock->owner == owner) owned.push_back(lock);
    }
    if (owned.empty()) continue;
    for (Lock* lock : owned) EraseLock(&shard, lock);
    if (shard.waiters > 0) shard.released.notify_all();
  }
}

std::vector<LockShardStats> LockManager::PerShardStats() const {
  std::vector<LockShardStats> out(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    out[s].acquires = shard.acquires.load(std::memory_order_relaxed);
    out[s].waits = shard.waits.load(std::memory_order_relaxed);
    out[s].deadlocks = shard.deadlocks.load(std::memory_order_relaxed);
    out[s].wait_ns = shard.wait_ns.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::pair<ObjectId, uint64_t>> LockManager::HottestObjects(
    size_t top_n) const {
  std::vector<std::pair<ObjectId, uint64_t>> rows;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    // try_lock: a contended stripe just keeps its rows out of this
    // report — a monitoring read must not slow the Acquire path.
    std::unique_lock<std::mutex> guard(shard.mu, std::try_to_lock);
    if (!guard.owns_lock()) continue;
    rows.reserve(rows.size() + shard.waits_per_object.size());
    for (const auto& [obj, waits] : shard.waits_per_object) {
      rows.push_back({ObjectId(obj), waits});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::vector<LockManager::StripeOccupancy> LockManager::Occupancy() const {
  // Tallies only — no latch, no table scan. A sampler ticking every
  // 10 ms must not contend with the workload's Acquire path.
  std::vector<StripeOccupancy> out(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    out[s].held = shard.held_now.load(std::memory_order_relaxed);
    out[s].waiters = shard.waiters_now.load(std::memory_order_relaxed);
    out[s].waits = shard.waits.load(std::memory_order_relaxed);
    out[s].wait_ns = shard.wait_ns.load(std::memory_order_relaxed);
  }
  return out;
}

bool LockManager::WaitsForSize(size_t* nodes, size_t* edges) const {
  // try_lock, not lock: the caller is a sampler probe, and blocking
  // behind a deadlock-check BFS would charge the workload's contention
  // to the sampler. On failure the caller keeps its previous values —
  // bounded staleness, by design.
  std::unique_lock<std::mutex> guard(graph_mu_, std::try_to_lock);
  if (!guard.owns_lock()) return false;
  *nodes = waits_for_.size();
  size_t e = 0;
  for (const auto& [from, to] : waits_for_) {
    (void)from;
    e += to.size();
  }
  *edges = e;
  return true;
}

size_t LockManager::LockCount() const {
  size_t n = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> guard(shard.mu);
    for (const auto& [obj, locks] : shard.table) {
      (void)obj;
      n += locks.size();
    }
  }
  return n;
}

}  // namespace oodb
