#include "cc/lock_manager.h"

#include <algorithm>
#include <deque>

namespace oodb {

const char* DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
  }
  return "?";
}

LockManager::LockManager(const TransactionSystem* ts,
                         LockManagerOptions options)
    : ts_(ts), options_(options) {}

void LockManager::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_acquires_ = m_waits_ = m_deadlocks_ = nullptr;
    m_wait_ns_ = nullptr;
    return;
  }
  m_acquires_ = registry->GetCounter("db.lock.acquires");
  m_waits_ = registry->GetCounter("db.lock.waits");
  m_deadlocks_ = registry->GetCounter("db.lock.deadlocks");
  m_wait_ns_ = registry->GetHistogram("db.lock.wait_ns");
}

bool LockManager::InSphere(ActionId holder, ActionId action) const {
  ActionId cur = action;
  while (cur.valid()) {
    if (cur == holder) return true;
    cur = ts_->action(cur).parent;
  }
  return false;
}

bool LockManager::Compatible(const Lock& lock, const ObjectType* type,
                             const Invocation& inv, ActionId action,
                             LockSemantics semantics) const {
  if (InSphere(lock.holder, action)) return true;
  if (lock.semantics == LockSemantics::kExclusive ||
      semantics == LockSemantics::kExclusive) {
    return false;
  }
  return type->Commutes(lock.inv, inv);
}

std::vector<uint64_t> LockManager::Blockers(ObjectId obj,
                                            const ObjectType* type,
                                            const Invocation& inv,
                                            ActionId action,
                                            LockSemantics semantics) const {
  std::vector<uint64_t> blockers;
  auto it = table_.find(obj);
  if (it == table_.end()) return blockers;
  for (const Lock& lock : it->second) {
    if (!Compatible(lock, type, inv, action, semantics)) {
      uint64_t holder_top = ts_->TopLevelOf(lock.holder).value;
      blockers.push_back(holder_top);
    }
  }
  return blockers;
}

bool LockManager::WouldDeadlock(
    uint64_t requester_top, const std::vector<uint64_t>& blocker_tops) const {
  // Cycle iff requester_top is reachable from any blocker through the
  // waits-for edges (the requester is about to add edges to all
  // blockers). Intra-transaction waits (blocker == requester) are not
  // deadlocks: lock pass-up resolves them.
  std::deque<uint64_t> frontier;
  std::unordered_set<uint64_t> visited;
  for (uint64_t b : blocker_tops) {
    if (b == requester_top) continue;
    if (visited.insert(b).second) frontier.push_back(b);
  }
  while (!frontier.empty()) {
    uint64_t t = frontier.front();
    frontier.pop_front();
    if (t == requester_top) return true;
    auto it = waits_for_.find(t);
    if (it == waits_for_.end()) continue;
    for (uint64_t next : it->second) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

Status LockManager::Acquire(ObjectId obj, const ObjectType* type,
                            const Invocation& inv, ActionId action,
                            ActionId top, LockSemantics semantics,
                            bool hold_at_top) {
  if (m_acquires_) m_acquires_->Increment();
  std::unique_lock<std::mutex> lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() + options_.wait_timeout;
  bool waited = false;
  std::chrono::steady_clock::time_point wait_start;
  // Wait time per blocked Acquire, clock read only on the cold path.
  // Waits that end in a deadlock verdict count too: the victim's wait
  // is exactly the latency its transaction lost before the retry.
  auto observe_wait = [&] {
    if (waited && m_wait_ns_ != nullptr) {
      m_wait_ns_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count()));
    }
  };
  for (;;) {
    std::vector<uint64_t> blockers =
        Blockers(obj, type, inv, action, semantics);
    if (blockers.empty()) break;
    if (!waited) {
      ++waits_;
      ++waits_per_object_[obj.value];
      waited = true;
      if (m_waits_) m_waits_->Increment();
      if (m_wait_ns_) wait_start = std::chrono::steady_clock::now();
    }
    if (options_.deadlock_policy == DeadlockPolicy::kWaitDie) {
      // Wait only for younger transactions; die when an older one
      // blocks us. Intra-transaction waits are always allowed.
      for (uint64_t blocker : blockers) {
        if (blocker < top.value) {
          ++deadlocks_;
          if (m_deadlocks_) m_deadlocks_->Increment();
          waits_for_.erase(top.value);
          observe_wait();
          return Status::Deadlock(
              "wait-die: blocked by older transaction on " +
              ts_->object(obj).name);
        }
      }
    } else if (WouldDeadlock(top.value, blockers)) {
      ++deadlocks_;
      if (m_deadlocks_) m_deadlocks_->Increment();
      waits_for_.erase(top.value);
      observe_wait();
      return Status::Deadlock("waits-for cycle on " +
                              ts_->object(obj).name);
    }
    auto& edges = waits_for_[top.value];
    edges.clear();
    edges.insert(blockers.begin(), blockers.end());
    if (released_.wait_until(lock, deadline) == std::cv_status::timeout) {
      ++deadlocks_;
      if (m_deadlocks_) m_deadlocks_->Increment();
      waits_for_.erase(top.value);
      observe_wait();
      return Status::Deadlock("lock wait timeout on " +
                              ts_->object(obj).name);
    }
  }
  waits_for_.erase(top.value);
  observe_wait();

  ActionId holder = hold_at_top ? top : action;
  auto& locks = table_[obj];
  locks.push_back(Lock{obj, type, inv, action, holder, top, semantics});
  held_by_[holder.value].push_back(&locks.back());
  return Status::OK();
}

void LockManager::MoveHolder(Lock* lock, ActionId new_holder) {
  auto& old_list = held_by_[lock->holder.value];
  old_list.erase(std::remove(old_list.begin(), old_list.end(), lock),
                 old_list.end());
  if (old_list.empty()) held_by_.erase(lock->holder.value);
  lock->holder = new_holder;
  held_by_[new_holder.value].push_back(lock);
}

void LockManager::EraseLock(Lock* lock) {
  auto& holder_list = held_by_[lock->holder.value];
  holder_list.erase(
      std::remove(holder_list.begin(), holder_list.end(), lock),
      holder_list.end());
  if (holder_list.empty()) held_by_.erase(lock->holder.value);
  auto& locks = table_[lock->object];
  for (auto it = locks.begin(); it != locks.end(); ++it) {
    if (&*it == lock) {
      locks.erase(it);
      break;
    }
  }
}

void LockManager::OnActionComplete(ActionId action, ActionId parent,
                                   bool release_children) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = held_by_.find(action.value);
  if (it == held_by_.end()) return;
  // Copy: EraseLock/MoveHolder mutate held_by_.
  std::vector<Lock*> held = it->second;
  for (Lock* lock : held) {
    if (!parent.valid()) {
      // Top-level completion unwinds everything in both disciplines.
      EraseLock(lock);
    } else if (lock->owner == action || !release_children) {
      // The action's own semantic lock passes up to the caller; under
      // closed nesting the children's locks ride along instead of
      // being released.
      MoveHolder(lock, parent);
    } else {
      // Open nesting: locks passed up by (now completed) children are
      // released — the action's semantic footprint covers them.
      EraseLock(lock);
    }
  }
  released_.notify_all();
}

void LockManager::ReleaseAllHeldBy(ActionId holder) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = held_by_.find(holder.value);
  if (it == held_by_.end()) return;
  std::vector<Lock*> held = it->second;
  for (Lock* lock : held) EraseLock(lock);
  released_.notify_all();
}

std::vector<std::pair<ObjectId, uint64_t>> LockManager::HottestObjects(
    size_t top_n) const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::pair<ObjectId, uint64_t>> rows;
  rows.reserve(waits_per_object_.size());
  for (const auto& [obj, waits] : waits_per_object_) {
    rows.push_back({ObjectId(obj), waits});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

size_t LockManager::LockCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t n = 0;
  for (const auto& [obj, locks] : table_) {
    (void)obj;
    n += locks.size();
  }
  return n;
}

}  // namespace oodb
