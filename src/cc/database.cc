#include "cc/database.h"

#include <chrono>
#include <thread>

#include "util/logging.h"
#include "util/random.h"

namespace oodb {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kOpenNested:
      return "open-nested";
    case SchedulerKind::kClosedNested:
      return "closed-nested";
    case SchedulerKind::kFlat2PL:
      return "flat-2pl";
    case SchedulerKind::kObjectExclusive:
      return "object-exclusive";
    case SchedulerKind::kNone:
      return "none";
  }
  return "?";
}

namespace {

/// Span outcome vocabulary: "ok" / "commit" plus kebab-case error
/// codes. Part of the stable trace schema (docs/OBSERVABILITY.md).
const char* TraceOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kAborted:
      return "abort";
    case StatusCode::kNotSerializable:
      return "not-serializable";
    case StatusCode::kCapacity:
      return "capacity";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnsupported:
      return "unsupported";
  }
  return "?";
}

}  // namespace

void RunCounters::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("run.committed",
                     static_cast<int64_t>(committed.load()));
  registry->SetGauge("run.aborted", static_cast<int64_t>(aborted.load()));
  registry->SetGauge("run.deadlocks",
                     static_cast<int64_t>(deadlocks.load()));
  registry->SetGauge("run.conflicts",
                     static_cast<int64_t>(conflicts.load()));
  registry->SetGauge("run.operations",
                     static_cast<int64_t>(operations.load()));
  registry->SetGauge("run.retries", static_cast<int64_t>(retries.load()));
}

Database::Database(DatabaseOptions options)
    : options_(options), locks_(&ts_, options.lock_options) {}

void Database::AttachObservability(MetricsRegistry* metrics,
                                   Tracer* tracer) {
  locks_.AttachMetrics(metrics);
  tracer_ = tracer;
  if (metrics == nullptr) {
    m_committed_ = m_aborted_ = m_deadlocks_ = nullptr;
    m_retries_ = m_conflicts_ = m_operations_ = nullptr;
    return;
  }
  m_committed_ = metrics->GetCounter("db.txn.committed");
  m_aborted_ = metrics->GetCounter("db.txn.aborted");
  m_deadlocks_ = metrics->GetCounter("db.txn.deadlocks");
  m_retries_ = metrics->GetCounter("db.txn.retries");
  m_conflicts_ = metrics->GetCounter("db.call.conflicts");
  m_operations_ = metrics->GetCounter("db.call.operations");
}

uint32_t Database::LevelOf(ActionId action) const {
  uint32_t level = 0;
  ActionId cur = ts_.action(action).parent;
  while (cur.valid()) {
    ++level;
    cur = ts_.action(cur).parent;
  }
  return level;
}

void Database::TraceAction(ActionId action, ActionId parent, ObjectId obj,
                           const std::string& name, uint64_t start,
                           const char* outcome) {
  TraceSpan span;
  span.id = action.value;
  span.parent = parent.value;
  span.name = name;
  span.object = obj.value;
  span.txn = ts_.TopLevelOf(action).value;
  span.level = LevelOf(action);
  span.tid = tracer_->ThreadId();
  span.start = start;
  span.end = tracer_->NowNs();
  span.outcome = outcome;
  tracer_->RecordSpan(std::move(span));
}

void Database::Register(const ObjectType* type, const std::string& method,
                        MethodImpl impl, MethodTraits traits) {
  registry_.Register(type, method, std::move(impl), std::move(traits));
}

void Database::DeclareTraits(const ObjectType* type,
                             const std::string& method,
                             MethodTraits traits) {
  registry_.SetTraits(type, method, std::move(traits));
}

ObjectId Database::CreateObject(const ObjectType* type, std::string name,
                                std::unique_ptr<ObjectState> state) {
  ObjectId id = ts_.AddObject(type, std::move(name));
  auto runtime = std::make_unique<RuntimeObject>();
  runtime->type = type;
  runtime->state = std::move(state);
  std::lock_guard<std::mutex> guard(objects_mutex_);
  objects_[id.value] = std::move(runtime);
  return id;
}

Database::RuntimeObject* Database::RuntimeOf(ObjectId id) {
  std::lock_guard<std::mutex> guard(objects_mutex_);
  auto it = objects_.find(id.value);
  return it == objects_.end() ? nullptr : it->second.get();
}

Status MethodContext::Call(ObjectId obj, Invocation inv, Value* result) {
  Value scratch;
  uint64_t lsn = 0;
  Status st = db_->ExecuteCall(action_, obj, std::move(inv),
                               result ? result : &scratch,
                               /*process=*/0, &lsn);
  if (lsn != 0) last_lsn_ = lsn;
  return st;
}

Status MethodContext::CallParallel(const std::vector<ParallelCall>& calls,
                                   std::vector<Value>* results) {
  if (results != nullptr) {
    results->assign(calls.size(), Value());
  }
  std::vector<Status> statuses(calls.size());
  std::vector<std::thread> branches;
  branches.reserve(calls.size());
  for (size_t i = 0; i < calls.size(); ++i) {
    branches.emplace_back([this, &calls, &statuses, results, i] {
      Value scratch;
      uint32_t process =
          db_->next_process_.fetch_add(1, std::memory_order_relaxed);
      statuses[i] = db_->ExecuteCall(
          action_, calls[i].object, calls[i].inv,
          results ? &(*results)[i] : &scratch, process);
    });
  }
  for (auto& b : branches) b.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

ObjectId MethodContext::CreateObject(const ObjectType* type,
                                     std::string name,
                                     std::unique_ptr<ObjectState> state) {
  return db_->CreateObject(type, std::move(name), std::move(state));
}

void MethodContext::SetCompensation(Invocation inv) {
  compensation_ = std::move(inv);
}

Status Database::ExecuteCall(ActionId parent, ObjectId obj, Invocation inv,
                             Value* result, uint32_t process,
                             uint64_t* logged_lsn) {
  if (logged_lsn != nullptr) *logged_lsn = 0;
  RuntimeObject* runtime = RuntimeOf(obj);
  if (runtime == nullptr) {
    return Status::NotFound("no object with id " +
                            std::to_string(obj.value));
  }
  const MethodImpl* impl = registry_.Find(runtime->type, inv.method);
  if (impl == nullptr) {
    return Status::Unsupported("no method '" + inv.method + "' on type " +
                               runtime->type->name());
  }
  // Def 3: primitive actions call no other action. (The parent is the
  // top-level action when `parent`'s object is the system object.)
  if (ts_.action(parent).object.valid() &&
      !ts_.action(parent).object.IsSystem() &&
      ts_.object(ts_.action(parent).object).type->primitive()) {
    return Status::Internal(
        "primitive method attempted to call " + inv.method +
        " (Def 3: primitive actions call no other action)");
  }

  // Record the call (Def 2) before locking: lock ancestry needs it.
  // Parallel branches run in their own process (Def 9) with no
  // precedence edge from earlier siblings.
  ActionId action =
      ts_.Call(parent, obj, inv, /*sequential=*/process == 0);
  if (process != 0) ts_.SetProcess(action, process);
  ActionId top = ts_.TopLevelOf(action);

  // Span start precedes the lock acquire so lock waits show up inside
  // the action's span, where they are spent.
  const bool traced = tracer_ != nullptr;
  const uint64_t span_start = traced ? tracer_->NowNs() : 0;
  std::string span_name;
  if (traced) span_name = ts_.object(obj).name + "." + inv.method;

  // Acquire per the scheduler mode.
  Status lock_status;
  switch (options_.scheduler) {
    case SchedulerKind::kOpenNested:
    case SchedulerKind::kClosedNested:
      lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                   LockSemantics::kCommutativity,
                                   /*hold_at_top=*/false);
      break;
    case SchedulerKind::kFlat2PL:
      // Only the primitive layer is locked; composite calls pass
      // through (the conventional system does not know them).
      if (runtime->type->primitive()) {
        lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                     LockSemantics::kCommutativity,
                                     /*hold_at_top=*/true);
      }
      break;
    case SchedulerKind::kObjectExclusive:
      lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                   LockSemantics::kExclusive,
                                   /*hold_at_top=*/true);
      break;
    case SchedulerKind::kNone:
      break;
  }
  if (!lock_status.ok()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    if (m_conflicts_) m_conflicts_->Increment();
    if (traced) {
      TraceAction(action, parent, obj, span_name, span_start,
                  TraceOutcome(lock_status));
    }
    return lock_status;
  }

  MethodContext ctx(this, action, obj, runtime->state.get(),
                    &runtime->latch);
  Status body_status;
  if (runtime->type->primitive()) {
    // Primitive action: atomic under the object latch, with the Axiom 1
    // timestamp taken inside the critical section so the recorded order
    // is the real conflict order.
    std::lock_guard<std::mutex> latch(runtime->latch);
    body_status = (*impl)(ctx, inv.params, result);
    if (body_status.ok()) {
      ts_.SetTimestamp(action, ts_.NextTimestamp());
    }
    counters_.operations.fetch_add(1, std::memory_order_relaxed);
    if (m_operations_) m_operations_->Increment();
  } else {
    body_status = (*impl)(ctx, inv.params, result);
  }

  if (!body_status.ok()) {
    // The action failed: undo its completed children (in reverse), then
    // drop everything it holds. The caller decides whether the error is
    // recoverable (e.g. Capacity -> split) or aborts further up.
    CompensateChildren(action);
    locks_.ReleaseAllHeldBy(action);
    {
      std::lock_guard<std::mutex> guard(comp_mutex_);
      comp_log_.erase(action.value);
    }
    // Span ends after compensation, so the compensating children's
    // spans nest inside the failed action's.
    if (traced) {
      TraceAction(action, parent, obj, span_name, span_start,
                  TraceOutcome(body_status));
    }
    return body_status;
  }

  ts_.MarkCompleted(action);
  // Log completed mutating actions on persistent roots *before* the
  // lock passes up: the action still holds its semantic lock here, so
  // for any pair of conflicting root operations the WAL append order is
  // the lock serialization order — recovery's redo-in-LSN-order then
  // repeats history faithfully. Observers that registered no
  // compensation are not logged (nothing to redo or undo).
  if (durability_ != nullptr && durability_->IsPersistent(obj)) {
    const MethodTraits* traits = registry_.Traits(runtime->type, inv.method);
    const bool observer = traits != nullptr && traits->observer;
    if (!observer || ctx.compensation_.has_value()) {
      const Invocation* comp =
          ctx.compensation_.has_value() ? &*ctx.compensation_ : nullptr;
      uint64_t lsn =
          durability_->LogOp(top.value, ts_.action(top).invocation.method,
                             ts_.object(obj).name, inv, comp);
      if (logged_lsn != nullptr) *logged_lsn = lsn;
    }
  }
  if (ctx.compensation_.has_value()) {
    std::lock_guard<std::mutex> guard(comp_mutex_);
    comp_log_[parent.value].push_back(
        CompensationEntry{obj, std::move(*ctx.compensation_)});
  }
  {
    // The completed action's children compensations are superseded by
    // its own registered compensation.
    std::lock_guard<std::mutex> guard(comp_mutex_);
    comp_log_.erase(action.value);
  }
  locks_.OnActionComplete(
      action, parent,
      /*release_children=*/options_.scheduler !=
          SchedulerKind::kClosedNested);
  if (traced) {
    TraceAction(action, parent, obj, span_name, span_start, "ok");
  }
  return Status::OK();
}

void Database::CompensateChildren(ActionId action) {
  std::vector<CompensationEntry> entries;
  {
    std::lock_guard<std::mutex> guard(comp_mutex_);
    auto it = comp_log_.find(action.value);
    if (it == comp_log_.end()) return;
    entries = std::move(it->second);
    comp_log_.erase(it);
  }
  Value scratch;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Status st = ExecuteCall(action, it->object, it->inv, &scratch);
    if (!st.ok()) {
      // Compensation runs inside the transaction's own lock sphere, so
      // failures here are method bugs or extreme contention; surface
      // loudly but keep unwinding.
      OODB_ERROR("compensation " << it->inv.ToString() << " on object "
                                 << it->object.value
                                 << " failed: " << st.ToString());
    }
  }
}

void Database::QuiesceAndRun(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> gate(txn_gate_);
  fn();
}

Status Database::RunTransaction(const std::string& name,
                                const TransactionBody& body) {
  // Deadlock backoff: per-thread seeding spreads contending threads,
  // but varies run to run. With backoff_seed set, the sequence depends
  // only on (seed, transaction name), so a failing schedule replays.
  thread_local Rng backoff_rng(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  Rng seeded_rng(options_.backoff_seed ^
                 (std::hash<std::string>()(name) | 1));
  Rng& rng = options_.backoff_seed != 0 ? seeded_rng : backoff_rng;
  for (int attempt = 0;; ++attempt) {
    std::string attempt_name =
        attempt == 0 ? name : name + "#r" + std::to_string(attempt);
    // Each attempt holds the transaction gate shared for its whole
    // life (body, compensation, WAL commit/abort record), so an
    // exclusive holder (checkpoint) only ever sees whole transactions.
    std::shared_lock<std::shared_mutex> gate(txn_gate_, std::defer_lock);
    if (durability_ != nullptr) gate.lock();
    ActionId top = ts_.BeginTopLevel(attempt_name);
    const bool traced = tracer_ != nullptr;
    const uint64_t span_start = traced ? tracer_->NowNs() : 0;
    MethodContext ctx(this, top, ObjectId(), nullptr, nullptr);
    Status st = body(ctx);
    if (st.ok()) {
      ts_.MarkCompleted(top);
      // Write-ahead: the commit record is appended and forced before
      // any lock releases, so no other transaction can observe (and
      // log operations depending on) effects whose commit might still
      // be lost in a crash.
      if (durability_ != nullptr) durability_->OnCommit(top.value);
      locks_.OnActionComplete(top, ActionId());
      {
        std::lock_guard<std::mutex> guard(comp_mutex_);
        comp_log_.erase(top.value);
      }
      counters_.committed.fetch_add(1, std::memory_order_relaxed);
      if (m_committed_) m_committed_->Increment();
      if (traced) {
        TraceAction(top, ActionId(), ObjectId(), attempt_name, span_start,
                    "commit");
      }
      if (durability_ != nullptr) {
        gate.unlock();
        durability_->MaybeCheckpoint(this);
      }
      return Status::OK();
    }

    // Abort: semantically undo completed top-level children, then
    // release everything. The compensations themselves re-register
    // their own compensations under `top`; drop those too.
    CompensateChildren(top);
    {
      std::lock_guard<std::mutex> guard(comp_mutex_);
      comp_log_.erase(top.value);
    }
    // The abort record follows the compensations (which were logged as
    // ordinary operations) and precedes the lock release. It need not
    // be forced: if it is lost, recovery treats the transaction as a
    // loser and re-runs the same compensations — same end state.
    if (durability_ != nullptr) durability_->OnAbort(top.value);
    locks_.ReleaseAllHeldBy(top);
    counters_.aborted.fetch_add(1, std::memory_order_relaxed);
    if (m_aborted_) m_aborted_->Increment();
    if (traced) {
      TraceAction(top, ActionId(), ObjectId(), attempt_name, span_start,
                  TraceOutcome(st));
    }
    if (st.IsDeadlock()) {
      counters_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (m_deadlocks_) m_deadlocks_->Increment();
      if (attempt < options_.max_retries) {
        counters_.retries.fetch_add(1, std::memory_order_relaxed);
        if (m_retries_) m_retries_->Increment();
        if (tracer_ != nullptr) {
          tracer_->RecordInstant("txn.retry", tracer_->NowNs(),
                                 attempt_name);
        }
        // Back off outside the gate so a pending checkpoint is not
        // stalled by a sleeping loser.
        if (gate.owns_lock()) gate.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(
            100 + rng.NextBelow(400) * (attempt + 1)));
        continue;
      }
    }
    return st;
  }
}

}  // namespace oodb
