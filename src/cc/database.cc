#include "cc/database.h"

#include <chrono>
#include <thread>

#include "obs/sampler.h"
#include "util/logging.h"
#include "util/random.h"

namespace oodb {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kOpenNested:
      return "open-nested";
    case SchedulerKind::kClosedNested:
      return "closed-nested";
    case SchedulerKind::kFlat2PL:
      return "flat-2pl";
    case SchedulerKind::kObjectExclusive:
      return "object-exclusive";
    case SchedulerKind::kNone:
      return "none";
  }
  return "?";
}

const char* HistoryModeName(HistoryMode mode) {
  switch (mode) {
    case HistoryMode::kRecorded:
      return "recorded";
    case HistoryMode::kEpochBatched:
      return "epoch-batched";
  }
  return "?";
}

namespace {

/// Span outcome vocabulary: "ok" / "commit" plus kebab-case error
/// codes. Part of the stable trace schema (docs/OBSERVABILITY.md).
const char* TraceOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kAborted:
      return "abort";
    case StatusCode::kNotSerializable:
      return "not-serializable";
    case StatusCode::kCapacity:
      return "capacity";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnsupported:
      return "unsupported";
  }
  return "?";
}

/// Monotonic nanoseconds for phase attribution. Distinct from
/// Tracer::NowNs so phases work with no tracer attached (and in golden
/// tracer mode, where the tracer clock is logical).
uint64_t PhaseNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same Fibonacci mix as LockManager::ShardOf, for the object map.
size_t ObjectShardIndex(uint64_t id, size_t shards) {
  return static_cast<size_t>((id * 0x9E3779B97F4A7C15ULL) >> 40) % shards;
}

DatabaseOptions ResolveOptions(DatabaseOptions o) {
  size_t n = o.shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (n > LockManager::kMaxShards) n = LockManager::kMaxShards;
  o.shards = n;
  // The lock table follows the runtime shard count unless the caller
  // configured it explicitly.
  if (o.lock_options.shards == 1) o.lock_options.shards = n;
  return o;
}

}  // namespace

void RunCounters::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("run.committed",
                     static_cast<int64_t>(committed.load()));
  registry->SetGauge("run.aborted", static_cast<int64_t>(aborted.load()));
  registry->SetGauge("run.deadlocks",
                     static_cast<int64_t>(deadlocks.load()));
  registry->SetGauge("run.conflicts",
                     static_cast<int64_t>(conflicts.load()));
  registry->SetGauge("run.operations",
                     static_cast<int64_t>(operations.load()));
  registry->SetGauge("run.retries", static_cast<int64_t>(retries.load()));
}

Database::Database(DatabaseOptions options)
    : options_(ResolveOptions(std::move(options))),
      locks_(&ts_, options_.lock_options) {
  object_shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    object_shards_.push_back(std::make_unique<ObjectShard>());
  }
  if (options_.history == HistoryMode::kEpochBatched) {
    epoch_log_ = std::make_unique<EpochLog>();
  }
}

void Database::AttachObservability(MetricsRegistry* metrics,
                                   Tracer* tracer) {
  locks_.AttachMetrics(metrics);
  tracer_ = tracer;
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_committed_ = m_aborted_ = m_deadlocks_ = nullptr;
    m_retries_ = m_conflicts_ = m_operations_ = nullptr;
    m_epoch_flushes_ = m_epoch_events_ = nullptr;
    phase_hists_.reset();
    return;
  }
  phase_hists_ = std::make_unique<PhaseHistograms>(metrics);
  m_committed_ = metrics->GetCounter("db.txn.committed");
  m_aborted_ = metrics->GetCounter("db.txn.aborted");
  m_deadlocks_ = metrics->GetCounter("db.txn.deadlocks");
  m_retries_ = metrics->GetCounter("db.txn.retries");
  m_conflicts_ = metrics->GetCounter("db.call.conflicts");
  m_operations_ = metrics->GetCounter("db.call.operations");
  m_epoch_flushes_ = metrics->GetCounter("db.epoch.flushes");
  m_epoch_events_ = metrics->GetCounter("db.epoch.events");
}

void Database::InstallSamplerProbes(MetricsSampler* sampler) {
  if (sampler == nullptr || metrics_ == nullptr) return;
  MetricsRegistry* reg = metrics_;

  // Gauge pointers are resolved once here; the per-tick probe then
  // only reads runtime state and stores into pre-registered gauges.
  struct StripeGauges {
    Gauge* held;
    Gauge* waiters;
    Gauge* waits;
    Gauge* wait_ns;
  };
  auto stripe_gauges = std::make_shared<std::vector<StripeGauges>>();
  for (size_t s = 0; s < locks_.shard_count(); ++s) {
    const std::string prefix = "lock.stripe." + std::to_string(s);
    stripe_gauges->push_back(StripeGauges{
        reg->GetGauge(prefix + ".held"), reg->GetGauge(prefix + ".waiters"),
        reg->GetGauge(prefix + ".waits"),
        reg->GetGauge(prefix + ".wait_ns")});
  }
  struct HotGauges {
    Gauge* id;
    Gauge* waits;
  };
  constexpr size_t kHotSlots = 8;
  auto hot_gauges = std::make_shared<std::vector<HotGauges>>();
  for (size_t k = 0; k < kHotSlots; ++k) {
    const std::string prefix = "lock.hot." + std::to_string(k);
    hot_gauges->push_back(HotGauges{reg->GetGauge(prefix + ".id"),
                                    reg->GetGauge(prefix + ".waits")});
  }
  Gauge* waitsfor_nodes = reg->GetGauge("lock.waitsfor.nodes");
  Gauge* waitsfor_edges = reg->GetGauge("lock.waitsfor.edges");
  Gauge* epoch_number = nullptr;
  Gauge* epoch_pending = nullptr;
  if (epoch_log_ != nullptr) {
    epoch_number = reg->GetGauge("epoch.number");
    epoch_pending = reg->GetGauge("epoch.pending");
  }

  sampler->AddProbe(
      "db.contention",
      [this, reg, stripe_gauges, hot_gauges, waitsfor_nodes, waitsfor_edges,
       epoch_number, epoch_pending] {
        counters_.PublishTo(reg);
        const auto occupancy = locks_.Occupancy();
        for (size_t s = 0;
             s < occupancy.size() && s < stripe_gauges->size(); ++s) {
          (*stripe_gauges)[s].held->Set(
              static_cast<int64_t>(occupancy[s].held));
          (*stripe_gauges)[s].waiters->Set(
              static_cast<int64_t>(occupancy[s].waiters));
          (*stripe_gauges)[s].waits->Set(
              static_cast<int64_t>(occupancy[s].waits));
          (*stripe_gauges)[s].wait_ns->Set(
              static_cast<int64_t>(occupancy[s].wait_ns));
        }
        size_t nodes = 0;
        size_t edges = 0;
        if (locks_.WaitsForSize(&nodes, &edges)) {
          // Contended latch -> keep last tick's values (bounded
          // staleness) rather than stall behind a deadlock check.
          waitsfor_nodes->Set(static_cast<int64_t>(nodes));
          waitsfor_edges->Set(static_cast<int64_t>(edges));
        }
        const auto hottest = locks_.HottestObjects(hot_gauges->size());
        for (size_t k = 0; k < hot_gauges->size(); ++k) {
          if (k < hottest.size()) {
            (*hot_gauges)[k].id->Set(
                static_cast<int64_t>(hottest[k].first.value));
            (*hot_gauges)[k].waits->Set(
                static_cast<int64_t>(hottest[k].second));
          } else {
            (*hot_gauges)[k].id->Set(-1);
            (*hot_gauges)[k].waits->Set(0);
          }
        }
        if (epoch_number != nullptr) {
          epoch_number->Set(static_cast<int64_t>(epoch_log_->epoch()));
          epoch_pending->Set(static_cast<int64_t>(epoch_log_->appended() -
                                                  epoch_log_->flushed()));
        }
      });
}

void Database::AttachDurability(DurabilityHook* hook) {
  if (hook != nullptr && epoch_log_ != nullptr) {
    OODB_ERROR(
        "durability requires kRecorded history (the WAL reads the live "
        "transaction record); ignoring AttachDurability in epoch mode");
    return;
  }
  durability_ = hook;
}

uint32_t Database::LevelOf(ActionId action) const {
  uint32_t level = 0;
  ActionId cur = ts_.action(action).parent;
  while (cur.valid()) {
    ++level;
    cur = ts_.action(cur).parent;
  }
  return level;
}

void Database::TraceAction(ActionId action, ActionId parent, ObjectId obj,
                           const std::string& name, uint64_t start,
                           const char* outcome, std::string phases) {
  TraceSpan span;
  span.id = action.value;
  span.parent = parent.value;
  span.name = name;
  span.object = obj.value;
  span.txn = ts_.TopLevelOf(action).value;
  span.level = LevelOf(action);
  span.tid = tracer_->ThreadId();
  span.start = start;
  span.end = tracer_->NowNs();
  span.outcome = outcome;
  span.phases = std::move(phases);
  tracer_->RecordSpan(std::move(span));
}

void Database::Register(const ObjectType* type, const std::string& method,
                        MethodImpl impl, MethodTraits traits) {
  registry_.Register(type, method, std::move(impl), std::move(traits));
}

void Database::DeclareTraits(const ObjectType* type,
                             const std::string& method,
                             MethodTraits traits) {
  registry_.SetTraits(type, method, std::move(traits));
}

void Database::DeclareProbe(const ObjectType* type, TypeProbeTraits traits) {
  registry_.SetProbeTraits(type, std::move(traits));
}

ObjectId Database::CreateObject(const ObjectType* type, std::string name,
                                std::unique_ptr<ObjectState> state) {
  ObjectId id = ts_.AddObject(type, std::move(name));
  auto runtime = std::make_unique<RuntimeObject>();
  runtime->type = type;
  runtime->state = std::move(state);
  ObjectShard& shard =
      *object_shards_[ObjectShardIndex(id.value, object_shards_.size())];
  std::unique_lock<std::shared_mutex> guard(shard.mu);
  shard.objects[id.value] = std::move(runtime);
  return id;
}

Database::RuntimeObject* Database::RuntimeOf(ObjectId id) {
  ObjectShard& shard =
      *object_shards_[ObjectShardIndex(id.value, object_shards_.size())];
  std::shared_lock<std::shared_mutex> guard(shard.mu);
  auto it = shard.objects.find(id.value);
  return it == shard.objects.end() ? nullptr : it->second.get();
}

Status MethodContext::Call(ObjectId obj, Invocation inv, Value* result) {
  Value scratch;
  uint64_t lsn = 0;
  Status st = db_->ExecuteCall(this, obj, std::move(inv),
                               result ? result : &scratch,
                               /*process=*/0, &lsn);
  if (lsn != 0) last_lsn_ = lsn;
  return st;
}

Status MethodContext::CallParallel(const std::vector<ParallelCall>& calls,
                                   std::vector<Value>* results) {
  if (results != nullptr) {
    results->assign(calls.size(), Value());
  }
  std::vector<Status> statuses(calls.size());
  std::vector<std::thread> branches;
  branches.reserve(calls.size());
  // Branch threads bill their blocked time (lock waits, WAL appends) to
  // the same root transaction as the spawning thread.
  PhaseAccumulator* phase_acc = PhaseAccumulator::Current();
  for (size_t i = 0; i < calls.size(); ++i) {
    branches.emplace_back([this, &calls, &statuses, results, phase_acc, i] {
      PhaseScope phase_scope(phase_acc);
      Value scratch;
      uint32_t process =
          db_->next_process_.fetch_add(1, std::memory_order_relaxed);
      statuses[i] = db_->ExecuteCall(
          this, calls[i].object, calls[i].inv,
          results ? &(*results)[i] : &scratch, process);
    });
  }
  for (auto& b : branches) b.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

ObjectId MethodContext::CreateObject(const ObjectType* type,
                                     std::string name,
                                     std::unique_ptr<ObjectState> state) {
  return db_->CreateObject(type, std::move(name), std::move(state));
}

void MethodContext::SetCompensation(Invocation inv) {
  compensation_ = std::move(inv);
}

Status Database::ExecuteCall(MethodContext* parent_ctx, ObjectId obj,
                             Invocation inv, Value* result, uint32_t process,
                             uint64_t* logged_lsn) {
  if (logged_lsn != nullptr) *logged_lsn = 0;
  RuntimeObject* runtime = RuntimeOf(obj);
  if (runtime == nullptr) {
    return Status::NotFound("no object with id " +
                            std::to_string(obj.value));
  }
  const MethodImpl* impl = registry_.Find(runtime->type, inv.method);
  if (impl == nullptr) {
    return Status::Unsupported("no method '" + inv.method + "' on type " +
                               runtime->type->name());
  }
  // Def 3: primitive actions call no other action. (A transaction body's
  // context has no self type.)
  if (parent_ctx->self_type_ != nullptr &&
      parent_ctx->self_type_->primitive()) {
    return Status::Internal(
        "primitive method attempted to call " + inv.method +
        " (Def 3: primitive actions call no other action)");
  }

  const ActionId parent = parent_ctx->action_;
  const ActionId top = parent_ctx->top_;
  const bool epoch = epoch_log_ != nullptr;

  // Record the call (Def 2). Parallel branches run in their own process
  // (Def 9) with no precedence edge from earlier siblings. In epoch mode
  // the id comes off an atomic counter and the record is the ActionEvent
  // emitted when the action finishes.
  ActionId action;
  if (epoch) {
    action = ActionId(next_action_.fetch_add(1, std::memory_order_relaxed));
  } else {
    action = ts_.Call(parent, obj, inv, /*sequential=*/process == 0);
    if (process != 0) ts_.SetProcess(action, process);
  }

  // The requester's call sphere as a flat id array (itself first, then
  // its ancestors): the lock manager scans these ids for sphere checks
  // instead of walking the shared TransactionSystem on the hot path.
  ActionId chain_stack[32];
  std::vector<ActionId> chain_heap;
  size_t chain_len = 0;
  chain_stack[chain_len++] = action;
  const MethodContext* anc = parent_ctx;
  for (; anc != nullptr && chain_len < 32; anc = anc->parent_) {
    chain_stack[chain_len++] = anc->action_;
  }
  SphereChain chain{chain_stack, chain_len};
  if (anc != nullptr) {  // absurdly deep call tree: spill to the heap
    chain_heap.assign(chain_stack, chain_stack + chain_len);
    for (; anc != nullptr; anc = anc->parent_) {
      chain_heap.push_back(anc->action_);
    }
    chain = SphereChain{chain_heap.data(), chain_heap.size()};
  }

  // Span start precedes the lock acquire so lock waits show up inside
  // the action's span, where they are spent. (Tracing reads the live
  // record, so it is off in epoch mode.)
  const bool traced = tracer_ != nullptr && !epoch;
  const uint64_t span_start = traced ? tracer_->NowNs() : 0;
  std::string span_name;
  if (traced) span_name = ts_.object(obj).name + "." + inv.method;

  // Acquire per the scheduler mode.
  //
  // Pre-pass-up: a *sequential* *primitive* action called directly by
  // the transaction body acquires with its lock already anchored at the
  // top level — the state ordinary pass-up would reach at its
  // completion anyway. Nothing can observe the early hand-off (a
  // parallel sibling only runs while the body sits inside CallParallel,
  // so no same-transaction action is concurrent with this one; other
  // transactions see the same object/top/commutativity either way), and
  // Def 3 rules out children whose passed-up locks the completion visit
  // would have to release. The per-action completion visit to the lock
  // stripe then disappears entirely.
  const bool pre_passed =
      (options_.scheduler == SchedulerKind::kOpenNested ||
       options_.scheduler == SchedulerKind::kClosedNested) &&
      parent == top && process == 0 && runtime->type->primitive();
  Status lock_status;
  bool acquired = false;
  bool locks_at_top = pre_passed;
  switch (options_.scheduler) {
    case SchedulerKind::kOpenNested:
    case SchedulerKind::kClosedNested:
      lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                   LockSemantics::kCommutativity,
                                   /*hold_at_top=*/pre_passed, &chain);
      acquired = true;
      break;
    case SchedulerKind::kFlat2PL:
      // Only the primitive layer is locked; composite calls pass
      // through (the conventional system does not know them).
      if (runtime->type->primitive()) {
        lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                     LockSemantics::kCommutativity,
                                     /*hold_at_top=*/true, &chain);
        acquired = true;
      }
      // Every flat-2PL lock lives with the top-level transaction, so a
      // non-top completion visit can never find anything to move.
      locks_at_top = true;
      break;
    case SchedulerKind::kObjectExclusive:
      lock_status = locks_.Acquire(obj, runtime->type, inv, action, top,
                                   LockSemantics::kExclusive,
                                   /*hold_at_top=*/true, &chain);
      acquired = true;
      locks_at_top = true;
      break;
    case SchedulerKind::kNone:
      break;
  }
  if (!lock_status.ok()) {
    counters_.conflicts.fetch_add(1, std::memory_order_relaxed);
    if (m_conflicts_) m_conflicts_->Increment();
    if (traced) {
      TraceAction(action, parent, obj, span_name, span_start,
                  TraceOutcome(lock_status));
    }
    if (epoch) {
      ActionEvent e;
      e.id = action.value;
      e.parent = parent.value;
      e.top = top.value;
      e.object = obj.value;
      e.process = process;
      e.sequential = process == 0;
      e.outcome = ActionEvent::Outcome::kFailed;
      e.inv = std::move(inv);
      epoch_log_->Append(std::move(e));
    }
    return lock_status;
  }

  MethodContext ctx(this, action, obj, runtime->state.get(),
                    &runtime->latch, parent_ctx, runtime->type);
  if (acquired) {
    ctx.lock_shards_.store(locks_.ShardBit(obj), std::memory_order_relaxed);
  }
  uint64_t event_timestamp = 0;
  Status body_status;
  if (runtime->type->primitive()) {
    // Primitive action: atomic under the object latch, with the Axiom 1
    // timestamp taken inside the critical section so the recorded order
    // is the real conflict order.
    std::lock_guard<std::mutex> latch(runtime->latch);
    body_status = (*impl)(ctx, inv.params, result);
    if (body_status.ok()) {
      if (epoch) {
        event_timestamp =
            next_timestamp_.fetch_add(1, std::memory_order_relaxed) + 1;
      } else {
        ts_.SetTimestamp(action, ts_.NextTimestamp());
      }
    }
    counters_.operations.fetch_add(1, std::memory_order_relaxed);
    if (m_operations_) m_operations_->Increment();
  } else {
    body_status = (*impl)(ctx, inv.params, result);
  }

  if (!body_status.ok()) {
    // The action failed: undo its completed children (in reverse), then
    // drop everything it holds. The caller decides whether the error is
    // recoverable (e.g. Capacity -> split) or aborts further up.
    CompensateChildren(&ctx);
    const uint64_t failed_mask =
        ctx.lock_shards_.load(std::memory_order_relaxed);
    if (pre_passed) {
      // The lock was anchored at top on acquire; a failed action must
      // still die with its lock released, exactly as on the classic
      // path where it would have held it itself.
      locks_.ReleaseOwned(action, top, failed_mask);
    } else {
      locks_.ReleaseAllHeldBy(action, failed_mask);
    }
    // Under hold-at-top disciplines the failed action's lock is held by
    // the top-level transaction, so the release above finds nothing and
    // the lock survives until transaction end. Fold the mask up anyway:
    // the final release must still visit those stripes.
    parent_ctx->lock_shards_.fetch_or(failed_mask, std::memory_order_relaxed);
    if (ctx.has_comp_children_.load(std::memory_order_relaxed)) {
      CompStripe& stripe = CompStripeOf(action);
      std::lock_guard<std::mutex> guard(stripe.mu);
      stripe.log.erase(action.value);
    }
    // Span ends after compensation, so the compensating children's
    // spans nest inside the failed action's.
    if (traced) {
      TraceAction(action, parent, obj, span_name, span_start,
                  TraceOutcome(body_status));
    }
    if (epoch) {
      ActionEvent e;
      e.id = action.value;
      e.parent = parent.value;
      e.top = top.value;
      e.object = obj.value;
      e.process = process;
      e.sequential = process == 0;
      e.outcome = ActionEvent::Outcome::kFailed;
      e.inv = std::move(inv);
      epoch_log_->Append(std::move(e));
    }
    return body_status;
  }

  uint64_t completion_seq = 0;
  if (epoch) {
    completion_seq =
        next_completion_.fetch_add(1, std::memory_order_relaxed) + 1;
  } else {
    ts_.MarkCompleted(action);
  }
  // Log completed mutating actions on persistent roots *before* the
  // lock passes up: the action still holds its semantic lock here, so
  // for any pair of conflicting root operations the WAL append order is
  // the lock serialization order — recovery's redo-in-LSN-order then
  // repeats history faithfully. Observers that registered no
  // compensation are not logged (nothing to redo or undo).
  if (durability_ != nullptr && durability_->IsPersistent(obj)) {
    const MethodTraits* traits = registry_.Traits(runtime->type, inv.method);
    const bool observer = traits != nullptr && traits->observer;
    if (!observer || ctx.compensation_.has_value()) {
      const Invocation* comp =
          ctx.compensation_.has_value() ? &*ctx.compensation_ : nullptr;
      uint64_t lsn =
          durability_->LogOp(top.value, ts_.action(top).invocation.method,
                             ts_.object(obj).name, inv, comp);
      if (logged_lsn != nullptr) *logged_lsn = lsn;
    }
  }
  if (ctx.compensation_.has_value()) {
    parent_ctx->has_comp_children_.store(true, std::memory_order_relaxed);
    CompStripe& stripe = CompStripeOf(parent);
    std::lock_guard<std::mutex> guard(stripe.mu);
    stripe.log[parent.value].push_back(
        CompensationEntry{obj, std::move(*ctx.compensation_)});
  }
  if (ctx.has_comp_children_.load(std::memory_order_relaxed)) {
    // The completed action's children compensations are superseded by
    // its own registered compensation.
    CompStripe& stripe = CompStripeOf(action);
    std::lock_guard<std::mutex> guard(stripe.mu);
    stripe.log.erase(action.value);
  }
  const uint64_t shard_mask =
      ctx.lock_shards_.load(std::memory_order_relaxed);
  if (!locks_at_top) {
    locks_.OnActionComplete(
        action, parent,
        /*release_children=*/options_.scheduler !=
            SchedulerKind::kClosedNested,
        shard_mask);
  }
  // The parent inherits the child's lock shards (pass-up): fold the
  // mask up so top-level completion visits every relevant stripe.
  parent_ctx->lock_shards_.fetch_or(shard_mask, std::memory_order_relaxed);
  if (traced) {
    TraceAction(action, parent, obj, span_name, span_start, "ok");
  }
  if (epoch) {
    ActionEvent e;
    e.id = action.value;
    e.parent = parent.value;
    e.top = top.value;
    e.object = obj.value;
    e.process = process;
    e.sequential = process == 0;
    e.outcome = ActionEvent::Outcome::kOk;
    e.timestamp = event_timestamp;
    e.completion = completion_seq;
    e.inv = std::move(inv);
    epoch_log_->Append(std::move(e));
  }
  return Status::OK();
}

void Database::CompensateChildren(MethodContext* ctx) {
  if (!ctx->has_comp_children_.load(std::memory_order_relaxed)) return;
  const ActionId action = ctx->action_;
  std::vector<CompensationEntry> entries;
  {
    CompStripe& stripe = CompStripeOf(action);
    std::lock_guard<std::mutex> guard(stripe.mu);
    auto it = stripe.log.find(action.value);
    if (it == stripe.log.end()) return;
    entries = std::move(it->second);
    stripe.log.erase(it);
  }
  Value scratch;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    Status st = ExecuteCall(ctx, it->object, it->inv, &scratch);
    // A deadlock verdict during undo is transient: the other party of
    // the cycle is aborting or retrying and will release its locks, so
    // losing the compensation over it would break abort atomicity.
    // Retry briefly before surfacing.
    for (int attempt = 0; !st.ok() && st.IsDeadlock() && attempt < 8;
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
      st = ExecuteCall(ctx, it->object, it->inv, &scratch);
    }
    if (!st.ok()) {
      // Compensation runs inside the transaction's own lock sphere, so
      // failures here are method bugs or extreme contention; surface
      // loudly but keep unwinding.
      OODB_ERROR("compensation " << it->inv.ToString() << " on object "
                                 << it->object.value
                                 << " failed: " << st.ToString());
    }
  }
}

uint64_t Database::AdvanceEpoch() {
  if (epoch_log_ == nullptr) return 0;
  std::vector<ActionEvent> batch = epoch_log_->Flush();
  const uint64_t count = batch.size();
  const uint64_t epoch = epoch_log_->epoch();
  if (m_epoch_flushes_) m_epoch_flushes_->Increment();
  if (m_epoch_events_) m_epoch_events_->Increment(count);
  if (epoch_sink_ != nullptr && count > 0) {
    epoch_sink_->OnEpoch(epoch, std::move(batch));
  }
  return count;
}

void Database::QuiesceAndRun(const std::function<void()>& fn) {
  std::unique_lock<std::shared_mutex> gate(txn_gate_);
  fn();
}

Status Database::RunTransaction(const std::string& name,
                                const TransactionBody& body) {
  // Deadlock backoff: per-thread seeding spreads contending threads,
  // but varies run to run. With backoff_seed set, the sequence depends
  // only on (seed, transaction name), so a failing schedule replays.
  thread_local Rng backoff_rng(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  Rng seeded_rng(options_.backoff_seed ^
                 (std::hash<std::string>()(name) | 1));
  Rng& rng = options_.backoff_seed != 0 ? seeded_rng : backoff_rng;
  const bool epoch = epoch_log_ != nullptr;
  // Phase attribution (obs/phases.h): one accumulator for the root
  // transaction's whole life, all retry attempts included. The scope
  // installs it as the thread's current accumulator so the lock manager
  // and the storage engine can credit waits and WAL forces from their
  // own layers; CallParallel re-installs it in branch threads.
  const bool phased = phase_hists_ != nullptr;
  PhaseAccumulator phase_acc;
  PhaseScope phase_scope(phased ? &phase_acc : nullptr);
  const uint64_t txn_start = phased ? PhaseNowNs() : 0;
  for (int attempt = 0;; ++attempt) {
    const uint64_t attempt_start = phased ? PhaseNowNs() : 0;
    std::string attempt_name =
        attempt == 0 ? name : name + "#r" + std::to_string(attempt);
    // Each attempt holds the transaction gate shared for its whole
    // life (body, compensation, WAL commit/abort record), so an
    // exclusive holder (checkpoint) only ever sees whole transactions.
    std::shared_lock<std::shared_mutex> gate(txn_gate_, std::defer_lock);
    if (durability_ != nullptr) gate.lock();
    ActionId top;
    if (epoch) {
      top = ActionId(next_action_.fetch_add(1, std::memory_order_relaxed));
    } else {
      top = ts_.BeginTopLevel(attempt_name);
    }
    const bool traced = tracer_ != nullptr && !epoch;
    const uint64_t span_start = traced ? tracer_->NowNs() : 0;
    MethodContext ctx(this, top, ObjectId(), nullptr, nullptr);
    // Admission: gate entry plus top-level registration, body not yet
    // running.
    if (phased) {
      phase_acc.Add(Phase::kAdmission, PhaseNowNs() - attempt_start);
    }
    Status st = body(ctx);
    if (st.ok()) {
      const uint64_t commit_start = phased ? PhaseNowNs() : 0;
      const uint64_t wal_before =
          phased ? phase_acc.Get(Phase::kWalForce) : 0;
      uint64_t completion_seq = 0;
      if (epoch) {
        completion_seq =
            next_completion_.fetch_add(1, std::memory_order_relaxed) + 1;
      } else {
        ts_.MarkCompleted(top);
      }
      // Write-ahead: the commit record is appended and forced before
      // any lock releases, so no other transaction can observe (and
      // log operations depending on) effects whose commit might still
      // be lost in a crash.
      if (durability_ != nullptr) durability_->OnCommit(top.value);
      locks_.OnActionComplete(
          top, ActionId(), /*release_children=*/true,
          ctx.lock_shards_.load(std::memory_order_relaxed));
      if (ctx.has_comp_children_.load(std::memory_order_relaxed)) {
        CompStripe& stripe = CompStripeOf(top);
        std::lock_guard<std::mutex> guard(stripe.mu);
        stripe.log.erase(top.value);
      }
      counters_.committed.fetch_add(1, std::memory_order_relaxed);
      if (m_committed_) m_committed_->Increment();
      // Commit-publish: everything between the body returning OK and
      // the transaction being externally visible (history/epoch
      // publish, lock release, compensation cleanup) minus the WAL
      // force, which the storage engine billed to wal-force directly.
      if (phased) {
        const uint64_t wal_ns =
            phase_acc.Get(Phase::kWalForce) - wal_before;
        const uint64_t publish = PhaseNowNs() - commit_start;
        phase_acc.Add(Phase::kCommitPublish,
                      publish > wal_ns ? publish - wal_ns : 0);
      }
      if (traced) {
        TraceAction(top, ActionId(), ObjectId(), attempt_name, span_start,
                    "commit",
                    phased ? PhasesJson(phase_acc, PhaseNowNs() - txn_start)
                           : std::string());
      }
      if (epoch) {
        ActionEvent e;
        e.id = top.value;
        e.top = top.value;
        e.object = ObjectId::kSystem;
        e.outcome = ActionEvent::Outcome::kCommit;
        e.completion = completion_seq;
        e.inv = Invocation(attempt_name);
        epoch_log_->Append(std::move(e));
      }
      if (durability_ != nullptr) {
        gate.unlock();
        durability_->MaybeCheckpoint(this);
      }
      if (phased) {
        phase_hists_->Observe(phase_acc, PhaseNowNs() - txn_start);
      }
      return Status::OK();
    }

    // Abort: semantically undo completed top-level children, then
    // release everything. The compensations themselves re-register
    // their own compensations under `top`; drop those too.
    CompensateChildren(&ctx);
    if (ctx.has_comp_children_.load(std::memory_order_relaxed)) {
      CompStripe& stripe = CompStripeOf(top);
      std::lock_guard<std::mutex> guard(stripe.mu);
      stripe.log.erase(top.value);
    }
    // The abort record follows the compensations (which were logged as
    // ordinary operations) and precedes the lock release. It need not
    // be forced: if it is lost, recovery treats the transaction as a
    // loser and re-runs the same compensations — same end state.
    if (durability_ != nullptr) durability_->OnAbort(top.value);
    locks_.ReleaseAllHeldBy(
        top, ctx.lock_shards_.load(std::memory_order_relaxed));
    counters_.aborted.fetch_add(1, std::memory_order_relaxed);
    if (m_aborted_) m_aborted_->Increment();
    if (traced) {
      // Aborted attempts carry the breakdown accumulated so far (their
      // compensation work lands in the execute residual).
      TraceAction(top, ActionId(), ObjectId(), attempt_name, span_start,
                  TraceOutcome(st),
                  phased ? PhasesJson(phase_acc, PhaseNowNs() - txn_start)
                         : std::string());
    }
    if (epoch) {
      ActionEvent e;
      e.id = top.value;
      e.top = top.value;
      e.object = ObjectId::kSystem;
      e.outcome = ActionEvent::Outcome::kAbort;
      e.inv = Invocation(attempt_name);
      epoch_log_->Append(std::move(e));
    }
    if (st.IsDeadlock()) {
      counters_.deadlocks.fetch_add(1, std::memory_order_relaxed);
      if (m_deadlocks_) m_deadlocks_->Increment();
      if (attempt < options_.max_retries) {
        counters_.retries.fetch_add(1, std::memory_order_relaxed);
        if (m_retries_) m_retries_->Increment();
        if (tracer_ != nullptr && !epoch) {
          tracer_->RecordInstant("txn.retry", tracer_->NowNs(),
                                 attempt_name);
        }
        // Back off outside the gate so a pending checkpoint is not
        // stalled by a sleeping loser.
        if (gate.owns_lock()) gate.unlock();
        const uint64_t backoff_start = phased ? PhaseNowNs() : 0;
        std::this_thread::sleep_for(std::chrono::microseconds(
            100 + rng.NextBelow(400) * (attempt + 1)));
        if (phased) {
          phase_acc.Add(Phase::kRetryBackoff, PhaseNowNs() - backoff_start);
        }
        continue;
      }
    }
    if (phased) {
      phase_hists_->Observe(phase_acc, PhaseNowNs() - txn_start);
    }
    return st;
  }
}

}  // namespace oodb
