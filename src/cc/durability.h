// DurabilityHook: the runtime's window onto a persistence engine.
//
// The cc layer stays storage-agnostic: a Database with no hook attached
// is the in-memory system it always was (the disabled path costs one
// null test per event, like the observability sinks). With a hook
// attached — in practice storage/StorageEngine — the runtime reports
// the object-level logical facts recovery needs:
//
//   * LogOp: an action on a persistent root completed, with the
//     compensating invocation it registered (the logical undo).
//   * OnCommit / OnAbort: the fate of a top-level transaction. Commit
//     forces the log before returning — the write-ahead contract.
//   * MaybeCheckpoint: a commit finished and the transaction gate is
//     free; the engine may take a consistent checkpoint now.
//
// All calls except MaybeCheckpoint arrive under the database's shared
// transaction gate, so a checkpoint (which takes the gate exclusively)
// never observes a transaction half-logged.

#pragma once

#include <cstdint>
#include <string>

#include "model/ids.h"
#include "model/invocation.h"

namespace oodb {

class Database;

/// A log sequence number. 0 means "nothing was logged".
using Lsn = uint64_t;

class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  /// True iff completed mutating actions on `obj` must be logged
  /// (i.e. `obj` is a registered persistent root). Called on the hot
  /// path; implementations must be cheap and thread-safe.
  virtual bool IsPersistent(ObjectId obj) const = 0;

  /// A mutating action on persistent root `root_name` completed inside
  /// top-level transaction `top` (named `txn_name`). `comp` is the
  /// registered compensating invocation, or null when the method
  /// registered none. Returns the record's LSN.
  virtual Lsn LogOp(uint64_t top, const std::string& txn_name,
                    const std::string& root_name, const Invocation& inv,
                    const Invocation* comp) = 0;

  /// Top-level transaction `top` committed. Forces the log when the
  /// transaction logged anything; returns the commit record's LSN (0
  /// for transactions that touched no persistent root).
  virtual Lsn OnCommit(uint64_t top) = 0;

  /// Top-level transaction `top` aborted, after its compensations ran
  /// (and were themselves logged as ordinary operations).
  virtual void OnAbort(uint64_t top) = 0;

  /// Called after a commit, outside the transaction gate. The engine
  /// may quiesce the database (Database::QuiesceAndRun) and checkpoint.
  virtual void MaybeCheckpoint(Database* db) = 0;
};

}  // namespace oodb
