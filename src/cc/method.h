// Method implementations and their execution context.
//
// "In an object-oriented database the objects are encapsulated, i.e.,
// objects are only accessible by methods defined in the database
// system." A MethodImpl is the body of one method; it receives a
// MethodContext through which it can read/modify its own object's state
// and send messages (child actions) to other objects — every such call
// goes through the concurrency control.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cc/object_state.h"
#include "model/ids.h"
#include "model/invocation.h"
#include "model/object_type.h"
#include "util/result.h"

namespace oodb {

class Database;
class MethodContext;

namespace analysis {
class StateProber;
}  // namespace analysis

/// The body of one method. `params` are the invocation parameters;
/// `result` (never null) receives the return value. Errors propagate to
/// the caller, which may handle them (e.g. Capacity triggers a split) or
/// let them abort the transaction.
using MethodImpl = std::function<Status(
    MethodContext& ctx, const ValueList& params, Value* result)>;

/// One named, deterministically generated starting state for the
/// commutativity-inference prober: an abstract-state class (Malta &
/// Martinez) represented by one concrete member. Generators must be
/// pure — every call yields an identical fresh state.
struct StateClass {
  std::string name;
  std::function<std::unique_ptr<ObjectState>()> make;
};

/// Per-type probing hooks, declared alongside MethodTraits by primitive
/// schemas (Def 3 types whose methods call no other object — exactly the
/// ones whose bodies can be executed against a bare state). `states`
/// should cover the boundary situations of the type's semantics (empty,
/// populated, populated with the declared sample values in observable
/// positions, escrow-tight, ...); `fingerprint` abstracts a state into a
/// comparable string. Composite types leave these undeclared and the
/// inference engine falls back to declared evidence.
struct TypeProbeTraits {
  std::vector<StateClass> states;
  std::function<std::string(const ObjectState&)> fingerprint;

  bool Declared() const {
    return !states.empty() && fingerprint != nullptr;
  }
};

/// Execution context of one action (or of a transaction body, where it
/// represents the top-level action).
class MethodContext {
 public:
  /// Sends `inv` to `obj` as a child action of the current action:
  /// records the call (Def 1/2), acquires the semantic lock, executes
  /// the method. `result` may be null.
  Status Call(ObjectId obj, Invocation inv, Value* result = nullptr);

  /// One branch of a parallel call set.
  struct ParallelCall {
    ObjectId object;
    Invocation inv;
  };

  /// Executes the calls concurrently, each as a child action in its own
  /// intra-transaction *process* (Def 2: the precedence relation within
  /// an action set is partial; Def 9: actions of different processes of
  /// one transaction may genuinely conflict and are serialized by the
  /// lock manager like strangers, resolved by lock pass-up).
  ///
  /// Returns OK iff every branch succeeded; otherwise the first error.
  /// Completed sibling branches are NOT rolled back here — the caller
  /// decides whether to fail (its own compensation pass then undoes
  /// them). `results`, when non-null, is resized to match `calls`.
  Status CallParallel(const std::vector<ParallelCall>& calls,
                      std::vector<Value>* results = nullptr);

  /// Creates a new object mid-transaction (e.g. a leaf split allocating
  /// a new leaf and page). Object creation is not itself an action.
  ObjectId CreateObject(const ObjectType* type, std::string name,
                        std::unique_ptr<ObjectState> state);

  /// Registers the compensating invocation (on the same object) that
  /// semantically undoes this action; executed in reverse completion
  /// order if the enclosing transaction aborts (open nested transactions
  /// cannot rely on physical undo once sub-locks are released).
  /// Read-only methods register nothing.
  void SetCompensation(Invocation inv);

  /// The object this method runs on (invalid for a transaction body).
  ObjectId self() const { return self_; }

  /// LSN of the most recent Call from this context that was logged to
  /// the write-ahead log (0 when durability is off or nothing was
  /// logged yet). Lets a transaction body correlate its work with the
  /// log — e.g. the crash harness choosing an injection point.
  uint64_t last_lsn() const { return last_lsn_; }

  /// The current action (the top-level action for a transaction body).
  ActionId action() const { return action_; }

  /// Typed access to this object's state. Primitive methods run under
  /// the object latch and may touch state freely; composite methods must
  /// use WithState for anything racy.
  template <typename T>
  T* state() {
    return static_cast<T*>(raw_state_);
  }

  /// Runs `fn(state)` under the object's latch (for composite methods
  /// whose semantic locks admit concurrent commuting operations that
  /// still share bytes).
  template <typename T, typename Fn>
  auto WithState(Fn fn) {
    std::lock_guard<std::mutex> guard(*latch_);
    return fn(static_cast<T*>(raw_state_));
  }

  Database* db() { return db_; }

 private:
  friend class Database;
  /// The inference prober executes primitive method bodies against
  /// generated states outside any transaction; it constructs contexts
  /// with a null database (sound for Def 3 methods, which never Call).
  friend class analysis::StateProber;
  MethodContext(Database* db, ActionId action, ObjectId self,
                ObjectState* raw_state, std::mutex* latch,
                const MethodContext* parent = nullptr,
                const ObjectType* self_type = nullptr)
      : db_(db), action_(action), self_(self), raw_state_(raw_state),
        latch_(latch), parent_(parent), self_type_(self_type),
        top_(parent == nullptr ? action : parent->top_) {}

  Database* db_;
  ActionId action_;
  ObjectId self_;
  ObjectState* raw_state_;
  std::mutex* latch_;
  /// Enclosing action's context (null for a transaction body). The
  /// chain of parents is this action's call sphere — the runtime hands
  /// it to the lock manager so sphere checks never walk the shared
  /// TransactionSystem on the hot path.
  const MethodContext* parent_;
  /// Type of `self_` (null for a transaction body); lets the runtime
  /// enforce Def 3 (primitive actions call no other action) without a
  /// TransactionSystem read.
  const ObjectType* self_type_;
  /// Cached root of the call tree.
  ActionId top_;
  /// Shards in which this action (or its completed children, passed up)
  /// may hold locks — a conservative superset, folded into the parent
  /// at completion. Atomic: CallParallel branches complete concurrently.
  std::atomic<uint64_t> lock_shards_{0};
  /// Set once a completed child registers a compensation under this
  /// action. Completion, commit and abort consult it to skip the
  /// compensation-stripe lookup in the (common) case where nothing was
  /// ever registered. Atomic: CallParallel branches register
  /// concurrently.
  std::atomic<bool> has_comp_children_{false};
  std::optional<Invocation> compensation_;
  uint64_t last_lsn_ = 0;
};

}  // namespace oodb
