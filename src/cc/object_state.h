// ObjectState: base class for the encapsulated state of runtime objects.
//
// Objects are only accessible through methods (the paper's premise);
// method implementations receive their object's state via MethodContext
// and never hand out references across action boundaries.

#pragma once

namespace oodb {

/// Polymorphic base for per-object state. Concrete states (PageState,
/// LeafState, AccountState, ...) derive from it. Synchronization is the
/// runtime's job: state is only touched under the object latch.
class ObjectState {
 public:
  virtual ~ObjectState() = default;
};

}  // namespace oodb
