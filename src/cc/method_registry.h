// MethodRegistry: maps (object type, method name) to implementations
// plus declared schema metadata (MethodTraits).
//
// The traits are the statically auditable part of the schema: whether a
// method only observes its object, which (type, method) pairs its body
// may send messages to (a type-level over-approximation of the Def 1/2
// call relation), and representative parameter lists. oodb_lint (see
// analysis/) builds its invocation corpus and call graph from them.

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cc/method.h"

namespace oodb {

/// A type-level call target: method `method` of the type named `type`.
/// Types are referenced by name so traits can be declared before (or
/// without) the target type's registration order mattering.
struct CallTarget {
  std::string type;
  std::string method;

  friend bool operator==(const CallTarget& a, const CallTarget& b) {
    return a.type == b.type && a.method == b.method;
  }
  friend bool operator<(const CallTarget& a, const CallTarget& b) {
    return a.type != b.type ? a.type < b.type : a.method < b.method;
  }
};

/// Declared, statically checkable facts about one method. All fields are
/// optional; an empty MethodTraits declares nothing and the analysis
/// passes fall back to conservative assumptions.
struct MethodTraits {
  /// True iff the method only observes its object (a "reader" in the
  /// conventional page classification). Mutators leave this false.
  bool observer = false;

  /// Every (type, method) the body may send a message to — a superset
  /// of the runtime call sets. Primitive methods (Def 3) must leave
  /// this empty. A target naming the method's own receiver type marks a
  /// potential Def 5 virtual-object site.
  std::vector<CallTarget> calls;

  /// Representative parameter lists, used by the linter to generate the
  /// invocation-pair corpus. Declare at least two samples (or one that
  /// the corpus can mutate) for parameterized methods; a parameterless
  /// mutator declares `{{}}`.
  std::vector<ValueList> samples;

  /// Methods of the same type the body may register as compensating
  /// invocations on its receiver (via MethodContext::SetCompensation).
  /// The undo-completeness pass requires every mutator to declare at
  /// least one, or to set undo_free — otherwise crash recovery has no
  /// logical undo for it and a loser transaction's effect survives.
  std::vector<std::string> compensations;

  /// Declares that every completion path that skips SetCompensation
  /// leaves the object unchanged (e.g. removing an absent key), so
  /// skipping the undo of a logged-but-compensationless record is
  /// sound. Meaningless for observers.
  bool undo_free = false;

  /// True when any metadata was declared. A value-initialized
  /// MethodTraits (the Register default) declares nothing and the
  /// call-graph pass flags the method as unaudited.
  bool Declared() const {
    return observer || !calls.empty() || !samples.empty() ||
           !compensations.empty() || undo_free;
  }
};

/// Registration happens at database setup, before transactions run;
/// lookup afterwards is lock-free.
class MethodRegistry {
 public:
  /// Registers `impl` for `method` of `type`, with optional declared
  /// traits. Re-registration replaces both.
  void Register(const ObjectType* type, const std::string& method,
                MethodImpl impl, MethodTraits traits = {});

  /// Declares (or replaces) the traits of `method` without touching its
  /// implementation. Declaring traits for a method with no registered
  /// implementation records the entry; Find still reports it unknown,
  /// and the call-graph pass flags the dangling declaration.
  void SetTraits(const ObjectType* type, const std::string& method,
                 MethodTraits traits);

  /// Declares (or replaces) the probing hooks of `type` — state-class
  /// generators plus the abstract-state fingerprint the inference
  /// engine compares (see TypeProbeTraits).
  void SetProbeTraits(const ObjectType* type, TypeProbeTraits traits);

  /// Declared probe traits, or null when `type` declared none.
  const TypeProbeTraits* ProbeTraits(const ObjectType* type) const;

  /// The implementation, or null when unknown.
  const MethodImpl* Find(const ObjectType* type,
                         const std::string& method) const;

  /// Declared traits, or null when the method is unknown.
  const MethodTraits* Traits(const ObjectType* type,
                             const std::string& method) const;

  /// All registered types, sorted by type name. The map key orders by
  /// pointer value, which varies run to run; every enumeration used in
  /// diagnostics or reports must go through this (or MethodsOf) so lint
  /// output is deterministic.
  std::vector<const ObjectType*> Types() const;

  /// The registered method names of `type`, sorted.
  std::vector<std::string> MethodsOf(const ObjectType* type) const;

  size_t size() const { return impls_.size(); }

 private:
  struct Entry {
    MethodImpl impl;
    MethodTraits traits;
  };
  std::map<std::pair<const ObjectType*, std::string>, Entry> impls_;
  std::map<const ObjectType*, TypeProbeTraits> probe_traits_;
};

}  // namespace oodb
