// MethodRegistry: maps (object type, method name) to implementations.

#pragma once

#include <map>
#include <string>
#include <utility>

#include "cc/method.h"

namespace oodb {

/// Registration happens at database setup, before transactions run;
/// lookup afterwards is lock-free.
class MethodRegistry {
 public:
  /// Registers `impl` for `method` of `type`. Re-registration replaces.
  void Register(const ObjectType* type, const std::string& method,
                MethodImpl impl);

  /// The implementation, or null when unknown.
  const MethodImpl* Find(const ObjectType* type,
                         const std::string& method) const;

  size_t size() const { return impls_.size(); }

 private:
  std::map<std::pair<const ObjectType*, std::string>, MethodImpl> impls_;
};

}  // namespace oodb
