// EpochLog: batched publication of the execution history.
//
// The classic runtime records every action into the shared
// TransactionSystem as it happens — one global mutex acquisition, one
// arena append, and one label allocation per action. That is perfect
// for the validator (the record IS the history) and hopeless for a
// runtime chasing millions of actions per second: every worker thread
// serializes on the recorder.
//
// In epoch-batched mode the runtime instead appends one compact
// ActionEvent per action to a per-thread buffer (owner-latched, so the
// hot path is an uncontended lock and a vector push), and a flusher
// periodically *advances the epoch*: every buffer is drained and the
// whole batch is handed to a sink in one call. Consumers — metrics,
// the dependency engine, the equivalence tests — see one batch per
// epoch instead of contending per action, and HistoryEpochSink can
// replay the accumulated batches into a TransactionSystem to run the
// Defs 13/16 validation pipeline after the fact.
//
// Events carry everything replay needs: ids (allocated from one atomic
// counter, so parents always precede children numerically), the tree
// edge, the invocation, the Axiom 1 timestamp, and the completion
// sequence. Replay therefore reconstructs the same history the classic
// recorder would have written, up to child order after parallel call
// sets (normalized to id order) and label renumbering.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/ids.h"
#include "model/invocation.h"
#include "model/transaction_system.h"

namespace oodb {

/// One recorded action, emitted when the action finishes (successfully
/// or not). Field semantics mirror ActionRecord.
struct ActionEvent {
  enum class Outcome : uint8_t {
    kOk,      ///< completed (non-top-level)
    kCommit,  ///< top-level transaction committed
    kAbort,   ///< top-level transaction aborted
    kFailed,  ///< action failed (lock denied / body error); no completion
  };

  uint64_t id = 0;
  uint64_t parent = ActionId::kInvalid;  ///< invalid for top-level
  uint64_t top = 0;
  uint64_t object = ObjectId::kInvalid;  ///< system object for top-level
  uint32_t process = 0;
  bool sequential = true;
  Outcome outcome = Outcome::kOk;
  uint64_t timestamp = 0;   ///< Axiom 1 sequence; 0 = not primitive/failed
  uint64_t completion = 0;  ///< completion sequence; 0 = never completed
  Invocation inv;           ///< method + params (txn name for top-level)
};

/// Consumes one flushed batch per epoch. OnEpoch may be called from
/// whichever thread advances the epoch; implementations synchronize
/// themselves.
class EpochSink {
 public:
  virtual ~EpochSink() = default;
  virtual void OnEpoch(uint64_t epoch, std::vector<ActionEvent>&& batch) = 0;
};

/// The per-thread buffered event log. Append is called by worker
/// threads (each gets its own buffer, found through a thread-local
/// cache); Flush drains every buffer into one batch.
class EpochLog {
 public:
  EpochLog();
  ~EpochLog();

  EpochLog(const EpochLog&) = delete;
  EpochLog& operator=(const EpochLog&) = delete;

  /// Appends to this thread's buffer. Uncontended unless a flush is
  /// draining this buffer at this instant.
  void Append(ActionEvent&& event);

  /// Drains every thread's buffer into one batch and bumps the epoch.
  /// Safe to call concurrently with Append (events land in the current
  /// or the next batch — never lost, never duplicated).
  std::vector<ActionEvent> Flush();

  /// Completed flushes.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Events appended so far (relaxed; for monitoring).
  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Events drained by completed flushes (relaxed; for monitoring).
  /// appended() - flushed() is the epoch-pipeline depth: events still
  /// sitting in per-thread buffers waiting for the next AdvanceEpoch.
  uint64_t flushed() const {
    return flushed_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<ActionEvent> events;
  };

  Buffer* LocalBuffer();

  const uint64_t instance_;  ///< key for the thread-local buffer cache

  std::mutex registry_mu_;
  std::deque<std::unique_ptr<Buffer>> buffers_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> flushed_{0};
};

/// Accumulates every epoch's batch and replays the whole run into a
/// TransactionSystem so the standard validator can judge it. Intended
/// for tests and bounded runs (it keeps every event); a pure
/// throughput run leaves the sink unset and batches are dropped after
/// counting.
class HistoryEpochSink : public EpochSink {
 public:
  void OnEpoch(uint64_t epoch, std::vector<ActionEvent>&& batch) override;

  size_t event_count() const;

  /// Rebuilds the recorded history: actions in id order (parents first
  /// by construction), completions applied in completion order,
  /// timestamps verbatim. Objects must already exist in `ts` with the
  /// same ids the run used (the runtime registers objects in its
  /// TransactionSystem in both history modes, so passing a fresh
  /// system plus re-created objects, or the run's own system, works).
  void ReplayInto(TransactionSystem* ts) const;

 private:
  mutable std::mutex mu_;
  std::vector<ActionEvent> events_;
};

}  // namespace oodb
