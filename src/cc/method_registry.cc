#include "cc/method_registry.h"

namespace oodb {

void MethodRegistry::Register(const ObjectType* type,
                              const std::string& method, MethodImpl impl) {
  impls_[{type, method}] = std::move(impl);
}

const MethodImpl* MethodRegistry::Find(const ObjectType* type,
                                       const std::string& method) const {
  auto it = impls_.find({type, method});
  return it == impls_.end() ? nullptr : &it->second;
}

}  // namespace oodb
