#include "cc/method_registry.h"

#include <algorithm>
#include <set>

namespace oodb {

void MethodRegistry::Register(const ObjectType* type,
                              const std::string& method, MethodImpl impl,
                              MethodTraits traits) {
  impls_[{type, method}] = Entry{std::move(impl), std::move(traits)};
}

void MethodRegistry::SetTraits(const ObjectType* type,
                               const std::string& method,
                               MethodTraits traits) {
  impls_[{type, method}].traits = std::move(traits);
}

void MethodRegistry::SetProbeTraits(const ObjectType* type,
                                    TypeProbeTraits traits) {
  probe_traits_[type] = std::move(traits);
}

const TypeProbeTraits* MethodRegistry::ProbeTraits(
    const ObjectType* type) const {
  auto it = probe_traits_.find(type);
  return it == probe_traits_.end() ? nullptr : &it->second;
}

const MethodImpl* MethodRegistry::Find(const ObjectType* type,
                                       const std::string& method) const {
  auto it = impls_.find({type, method});
  if (it == impls_.end() || !it->second.impl) return nullptr;
  return &it->second.impl;
}

const MethodTraits* MethodRegistry::Traits(const ObjectType* type,
                                           const std::string& method) const {
  auto it = impls_.find({type, method});
  return it == impls_.end() ? nullptr : &it->second.traits;
}

std::vector<const ObjectType*> MethodRegistry::Types() const {
  std::set<const ObjectType*> seen;
  for (const auto& [key, entry] : impls_) {
    (void)entry;
    seen.insert(key.first);
  }
  std::vector<const ObjectType*> types(seen.begin(), seen.end());
  // The set orders by pointer, which is not stable across runs; reports
  // must see name order.
  std::sort(types.begin(), types.end(),
            [](const ObjectType* a, const ObjectType* b) {
              return a->name() < b->name();
            });
  return types;
}

std::vector<std::string> MethodRegistry::MethodsOf(
    const ObjectType* type) const {
  std::vector<std::string> methods;
  for (auto it = impls_.lower_bound({type, std::string()});
       it != impls_.end() && it->first.first == type; ++it) {
    methods.push_back(it->first.second);
  }
  // Entries for one type are contiguous and string-ordered already, but
  // sort anyway so the guarantee doesn't rest on the map's key order.
  std::sort(methods.begin(), methods.end());
  return methods;
}

}  // namespace oodb
