#include "cc/epoch_log.h"

#include <algorithm>
#include <unordered_map>

namespace oodb {

namespace {

std::atomic<uint64_t> next_instance{1};

}  // namespace

EpochLog::EpochLog() : instance_(next_instance.fetch_add(1)) {}

EpochLog::~EpochLog() = default;

EpochLog::Buffer* EpochLog::LocalBuffer() {
  // Per-thread cache of (log instance -> buffer). A handful of slots
  // covers the realistic number of live databases one thread touches;
  // collisions just re-register (the registry hands back a new buffer,
  // which is correct, only marginally slower).
  struct Slot {
    uint64_t instance = 0;
    Buffer* buffer = nullptr;
  };
  thread_local Slot slots[4];
  thread_local size_t clock = 0;
  for (Slot& s : slots) {
    if (s.instance == instance_) return s.buffer;
  }
  Buffer* buffer;
  {
    std::lock_guard<std::mutex> guard(registry_mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffer = buffers_.back().get();
  }
  Slot& victim = slots[clock++ % 4];
  victim.instance = instance_;
  victim.buffer = buffer;
  return buffer;
}

void EpochLog::Append(ActionEvent&& event) {
  Buffer* buffer = LocalBuffer();
  {
    std::lock_guard<std::mutex> guard(buffer->mu);
    buffer->events.push_back(std::move(event));
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ActionEvent> EpochLog::Flush() {
  std::vector<ActionEvent> batch;
  std::lock_guard<std::mutex> registry(registry_mu_);
  for (auto& buffer : buffers_) {
    std::vector<ActionEvent> drained;
    {
      std::lock_guard<std::mutex> guard(buffer->mu);
      drained.swap(buffer->events);
    }
    if (batch.empty()) {
      batch = std::move(drained);
    } else {
      batch.insert(batch.end(), std::make_move_iterator(drained.begin()),
                   std::make_move_iterator(drained.end()));
    }
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  flushed_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch;
}

void HistoryEpochSink::OnEpoch(uint64_t epoch,
                               std::vector<ActionEvent>&& batch) {
  (void)epoch;
  std::lock_guard<std::mutex> guard(mu_);
  events_.insert(events_.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
}

size_t HistoryEpochSink::event_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return events_.size();
}

void HistoryEpochSink::ReplayInto(TransactionSystem* ts) const {
  std::lock_guard<std::mutex> guard(mu_);
  // Id order is call order: ids come from one atomic counter taken when
  // the call is recorded, and a parent's id is always taken before any
  // of its children's. (After a parallel call set, which branch the
  // next sequential sibling's precedence edge hangs off is normalized
  // to the highest branch id; the classic recorder uses arrival order.
  // Both are valid linearizations of the same race.)
  std::vector<const ActionEvent*> order;
  order.reserve(events_.size());
  for (const ActionEvent& e : events_) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const ActionEvent* a, const ActionEvent* b) {
              return a->id < b->id;
            });

  std::unordered_map<uint64_t, ActionId> ids;
  ids.reserve(order.size());
  std::vector<std::pair<uint64_t, ActionId>> completions;
  for (const ActionEvent* e : order) {
    ActionId replayed;
    if (e->parent == ActionId::kInvalid) {
      replayed = ts->BeginTopLevel(e->inv.method);
    } else {
      auto parent = ids.find(e->parent);
      if (parent == ids.end()) continue;  // orphan (parent never flushed)
      replayed = ts->Call(parent->second, ObjectId(e->object), e->inv,
                          e->sequential);
      if (e->process != 0) ts->SetProcess(replayed, e->process);
    }
    ids.emplace(e->id, replayed);
    if (e->timestamp != 0) ts->SetTimestamp(replayed, e->timestamp);
    if (e->completion != 0) completions.emplace_back(e->completion, replayed);
  }
  // MarkCompleted renumbers internally; applying in the recorded order
  // reproduces the recorded relative completion order exactly.
  std::sort(completions.begin(), completions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [seq, action] : completions) {
    (void)seq;
    ts->MarkCompleted(action);
  }
}

}  // namespace oodb
