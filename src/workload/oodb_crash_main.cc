// oodb_crash: the crash-recovery harness CLI.
//
//   oodb_crash [--dir=PATH] [--seed=N] [--txns=N] [--threads=N]
//              [--crash-after=N] [--checkpoint-every=N] [--post-txns=N]
//              [--sweep=A:B[:STEP]] [--json=PATH] [--timeline=PATH]
//              [--verbose]
//
// One run forks a child workload, SIGKILLs it after the Nth WAL append,
// recovers the store, and verifies the recovered state against a
// committed-only oracle (see workload/crash_harness.h). --sweep repeats
// the run for every crash point in [A, B] (step STEP, default 1), each
// in its own store directory under --dir. --json writes the
// machine-readable per-point report ("oodb-crash-report-v1", one entry
// per crash point in both single and sweep mode); --timeline writes the
// last run's recovery timeline ("oodb-recovery-timeline-v1"). Exit
// status: 0 when every point passed, 1 otherwise.

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/crash_harness.h"

namespace {

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

namespace {

bool ParseU64(const std::string& arg, const char* prefix, uint64_t* out) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) != 0) return false;
  *out = std::strtoull(arg.c_str() + p.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  oodb::CrashHarnessConfig config;
  config.dir = "/tmp/oodb_crash";
  uint64_t sweep_from = 0, sweep_to = 0, sweep_step = 1;
  bool sweep = false;
  std::string json_path, timeline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t v = 0;
    if (arg.rfind("--dir=", 0) == 0) {
      config.dir = arg.substr(6);
    } else if (ParseU64(arg, "--seed=", &v)) {
      config.seed = v;
    } else if (ParseU64(arg, "--txns=", &v)) {
      config.txns = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--threads=", &v)) {
      config.threads = static_cast<size_t>(v);
    } else if (ParseU64(arg, "--crash-after=", &v)) {
      config.crash_after_appends = static_cast<int64_t>(v);
    } else if (ParseU64(arg, "--checkpoint-every=", &v)) {
      config.checkpoint_every_commits = v;
    } else if (ParseU64(arg, "--post-txns=", &v)) {
      config.post_txns = static_cast<size_t>(v);
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep = true;
      const std::string spec = arg.substr(8);
      const size_t c1 = spec.find(':');
      if (c1 == std::string::npos) {
        sweep_from = 1;
        sweep_to = std::strtoull(spec.c_str(), nullptr, 10);
      } else {
        sweep_from = std::strtoull(spec.substr(0, c1).c_str(), nullptr, 10);
        const size_t c2 = spec.find(':', c1 + 1);
        if (c2 == std::string::npos) {
          sweep_to = std::strtoull(spec.c_str() + c1 + 1, nullptr, 10);
        } else {
          sweep_to = std::strtoull(
              spec.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10);
          sweep_step = std::strtoull(spec.c_str() + c2 + 1, nullptr, 10);
          if (sweep_step == 0) sweep_step = 1;
        }
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--timeline=", 0) == 0) {
      timeline_path = arg.substr(11);
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: oodb_crash [--dir=PATH] [--seed=N] [--txns=N]\n"
          "                  [--threads=N] [--crash-after=N]\n"
          "                  [--checkpoint-every=N] [--post-txns=N]\n"
          "                  [--sweep=A:B[:STEP]] [--json=PATH]\n"
          "                  [--timeline=PATH] [--verbose]\n");
      return 0;
    } else {
      std::fprintf(stderr, "oodb_crash: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  int failures = 0;
  std::vector<std::string> point_json;
  std::string last_timeline;
  if (!sweep) {
    const std::string cmd = "rm -rf " + config.dir;
    (void)std::system(cmd.c_str());
    oodb::CrashHarnessReport report = oodb::CrashHarness::Run(config);
    std::printf("crash-after=%lld %s\n",
                static_cast<long long>(config.crash_after_appends),
                report.Row().c_str());
    point_json.push_back(report.Json(config.crash_after_appends));
    last_timeline = report.recovery.timeline.Json();
    failures += report.ok() ? 0 : 1;
  } else {
    const std::string base = config.dir;
    ::mkdir(base.c_str(), 0755);
    for (uint64_t point = sweep_from; point <= sweep_to;
         point += sweep_step) {
      oodb::CrashHarnessConfig point_config = config;
      point_config.dir = base + "/p" + std::to_string(point);
      point_config.crash_after_appends = static_cast<int64_t>(point);
      const std::string cmd = "rm -rf " + point_config.dir;
      (void)std::system(cmd.c_str());
      oodb::CrashHarnessReport report =
          oodb::CrashHarness::Run(point_config);
      std::printf("crash-after=%llu %s\n",
                  static_cast<unsigned long long>(point),
                  report.Row().c_str());
      std::fflush(stdout);
      point_json.push_back(report.Json(static_cast<int64_t>(point)));
      last_timeline = report.recovery.timeline.Json();
      if (!report.ok()) ++failures;
    }
  }
  if (!json_path.empty()) {
    std::string doc = "{\"schema\": \"oodb-crash-report-v1\", \"points\": [";
    for (size_t i = 0; i < point_json.size(); ++i) {
      doc += (i == 0 ? "\n  " : ",\n  ") + point_json[i];
    }
    doc += "\n]}\n";
    if (!WriteText(json_path, doc)) {
      std::fprintf(stderr, "oodb_crash: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }
  if (!timeline_path.empty()) {
    if (!WriteText(timeline_path, last_timeline + "\n")) {
      std::fprintf(stderr, "oodb_crash: cannot write %s\n",
                   timeline_path.c_str());
      return 2;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "oodb_crash: %d crash point(s) FAILED\n",
                 failures);
    return 1;
  }
  return 0;
}
