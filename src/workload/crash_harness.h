// CrashHarness: kill -9 a working database, recover it, prove nothing
// was lost and nothing half-done survived.
//
// One run forks a child that opens a store, arms the WAL's SIGKILL
// injection at a chosen append count, and hammers a Directory and a
// HashIndex root with a seeded mix of transactions (including
// deliberately aborting ones, so compensation records are on the log
// when the crash lands). The child dies mid-workload; the parent then
//
//   1. reopens the store and runs crash recovery (analysis / redo /
//      logical undo — see storage/recovery.h);
//   2. rebuilds a committed-only *oracle* by replaying the op records
//      of committed transactions from every archived WAL epoch, in LSN
//      order, through the real method implementations into a scratch
//      in-memory database;
//   3. checks that every recovered root's semantic dump equals the
//      oracle's, that no locks or buffer pins leaked, and that a
//      post-recovery workload plus the recovery replay itself validate
//      under Defs 13/16.
//
// Sweeping the crash point across the log (the CLI's --sweep) turns
// this into the acceptance test: state equals the oracle at every
// prefix of the history.

#pragma once

#include <cstdint>
#include <string>

#include "storage/recovery.h"

namespace oodb {

struct CrashHarnessConfig {
  /// Store directory (created; should be empty or fresh per run).
  std::string dir = "/tmp/oodb_crash";
  uint64_t seed = 42;
  /// Transactions the child attempts (workload size).
  size_t txns = 160;
  /// Worker threads in the child.
  size_t threads = 2;
  /// SIGKILL after this many WAL appends (1-based; <0 = never, the
  /// child then exits cleanly and the run degenerates to a clean
  /// restart check).
  int64_t crash_after_appends = 24;
  /// Child checkpoints every N logging commits (0 = never), so sweeps
  /// can land crash points after an epoch rotation.
  uint64_t checkpoint_every_commits = 0;
  /// Transactions of the post-recovery workload (0 skips it; the
  /// Def 13/16 validation then covers only the recovery replay).
  size_t post_txns = 24;
  bool verbose = false;
};

struct CrashHarnessReport {
  bool crashed = false;  ///< child died by the injected SIGKILL
  bool recovered = false;
  bool state_matches_oracle = false;
  bool no_lock_leaks = false;
  bool no_pin_leaks = false;
  bool history_valid = false;  ///< Defs 13/16 on the surviving history
  RecoveryStats recovery;
  uint64_t oracle_committed = 0;  ///< winner transactions replayed
  uint64_t wal_epochs = 0;
  std::string failure;  ///< first check that failed, human-readable

  /// The whole point: every check passed.
  bool ok() const {
    return recovered && state_matches_oracle && no_lock_leaks &&
           no_pin_leaks && history_valid;
  }

  std::string Row() const;

  /// One machine-readable JSON object for this crash point: the checks,
  /// the recovery stats, and the embedded recovery timeline. The CLI's
  /// --json mode emits one per sweep point.
  std::string Json(int64_t crash_after) const;
};

class CrashHarness {
 public:
  /// Forks, crashes, recovers, verifies. The parent side never throws
  /// a signal; all failures land in the report.
  static CrashHarnessReport Run(const CrashHarnessConfig& config);
};

}  // namespace oodb
