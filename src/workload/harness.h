// Harness: runs a transaction mix on a Database from N worker threads
// and reports throughput, abort/deadlock rates, and latency quantiles —
// the measurement side of the S2/S3 experiments.

#pragma once

#include <functional>
#include <string>

#include "cc/database.h"
#include "obs/metrics.h"

namespace oodb {

struct HarnessConfig {
  size_t threads = 4;
  size_t txns_per_thread = 100;
  /// When set, per-transaction latencies are observed into this
  /// registry's "harness.latency_ns" histogram (so they appear in the
  /// registry snapshot) instead of a private one. The result's
  /// latency_ns snapshot covers this run either way.
  MetricsRegistry* metrics = nullptr;
};

struct HarnessResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_waits = 0;
  uint64_t operations = 0;
  /// Per-transaction wall latency, in the shared hist_layout buckets.
  HistogramSnapshot latency_ns;

  double Throughput() const {
    return seconds > 0 ? double(committed) / seconds : 0;
  }

  /// One printable row: "thr=... commit=... abort=... ..."
  std::string Row() const;
};

/// Produces the body of the `index`-th transaction of worker `thread`.
/// Called on the worker thread; must be thread-safe.
using TxnFactory =
    std::function<TransactionBody(size_t thread, size_t index)>;

class Harness {
 public:
  /// Runs threads x txns_per_thread transactions and gathers metrics.
  /// Counters of `db` are reset at the start.
  static HarnessResult Run(Database* db, const HarnessConfig& config,
                           const TxnFactory& factory);
};

}  // namespace oodb
