// Harness: runs a transaction mix on a Database from N worker threads
// and reports throughput, abort/deadlock rates, and latency quantiles —
// the measurement side of the S2/S3 experiments.

#pragma once

#include <functional>
#include <string>

#include "cc/database.h"
#include "util/histogram.h"

namespace oodb {

struct HarnessConfig {
  size_t threads = 4;
  size_t txns_per_thread = 100;
};

struct HarnessResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_waits = 0;
  uint64_t operations = 0;
  Histogram latency_ns;

  double Throughput() const {
    return seconds > 0 ? double(committed) / seconds : 0;
  }

  /// One printable row: "thr=... commit=... abort=... ..."
  std::string Row() const;
};

/// Produces the body of the `index`-th transaction of worker `thread`.
/// Called on the worker thread; must be thread-safe.
using TxnFactory =
    std::function<TransactionBody(size_t thread, size_t index)>;

class Harness {
 public:
  /// Runs threads x txns_per_thread transactions and gathers metrics.
  /// Counters of `db` are reset at the start.
  static HarnessResult Run(Database* db, const HarnessConfig& config,
                           const TxnFactory& factory);
};

}  // namespace oodb
