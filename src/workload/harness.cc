#include "workload/harness.h"

#include <cstdio>
#include <thread>
#include <vector>

#include "util/stopwatch.h"

namespace oodb {

std::string HarnessResult::Row() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tps=%9.0f commit=%7llu abort=%6llu deadlock=%6llu "
                "waits=%7llu ops=%9llu p50us=%6llu p99us=%7llu",
                Throughput(), (unsigned long long)committed,
                (unsigned long long)aborted, (unsigned long long)deadlocks,
                (unsigned long long)lock_waits,
                (unsigned long long)operations,
                (unsigned long long)(latency_ns.Quantile(0.5) / 1000),
                (unsigned long long)(latency_ns.Quantile(0.99) / 1000));
  return buf;
}

HarnessResult Harness::Run(Database* db, const HarnessConfig& config,
                           const TxnFactory& factory) {
  db->counters().Reset();
  uint64_t waits_before = db->locks().wait_count();

  // One shared thread-safe histogram replaces the old per-thread
  // Histogram-and-Merge dance; the registry's copy (when attached)
  // additionally accumulates across runs for the exported snapshot.
  HistogramMetric latency;
  HistogramMetric* registry_latency =
      config.metrics != nullptr
          ? config.metrics->GetHistogram("harness.latency_ns")
          : nullptr;
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  Stopwatch clock;
  for (size_t t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = 0; i < config.txns_per_thread; ++i) {
        TransactionBody body = factory(t, i);
        Stopwatch txn_clock;
        // Errors are already counted by the database; the harness just
        // keeps going.
        (void)db->RunTransaction(
            "W" + std::to_string(t) + "_" + std::to_string(i), body);
        uint64_t ns = txn_clock.ElapsedNanos();
        latency.Observe(ns);
        if (registry_latency != nullptr) registry_latency->Observe(ns);
      }
    });
  }
  for (auto& w : workers) w.join();

  HarnessResult result;
  result.seconds = clock.ElapsedSeconds();
  result.committed = db->counters().committed.load();
  result.aborted = db->counters().aborted.load();
  result.deadlocks = db->counters().deadlocks.load();
  result.operations = db->counters().operations.load();
  result.lock_waits = db->locks().wait_count() - waits_before;
  result.latency_ns = latency.Snapshot();
  if (config.metrics != nullptr) {
    db->counters().PublishTo(config.metrics);
  }
  return result;
}

}  // namespace oodb
