#include "workload/anomalies.h"

#include "containers/bptree.h"
#include "containers/page_ops.h"

namespace oodb {

namespace {

/// One transaction-level operation and the primitives it executes.
struct Op {
  ActionId tree_op;
  std::vector<ActionId> prims;
};

struct World {
  std::unique_ptr<TransactionSystem> ts;
  ObjectId tree, leaf, page;

  World() : ts(std::make_unique<TransactionSystem>()) {
    tree = ts->AddObject(BpTreeObjectType(), "Tree");
    leaf = ts->AddObject(LeafObjectType(), "Leaf");
    page = ts->AddObject(PageObjectType(), "Page");
  }

  ActionId Top(const std::string& name) { return ts->BeginTopLevel(name); }

  /// tree.method(key...) -> leaf.method(key...) -> page primitives.
  /// "search"/"scan" read; "insert" reads then writes.
  Op Add(ActionId top, const std::string& method, const ValueList& params) {
    Op op;
    Invocation inv(method, params);
    op.tree_op = ts->Call(top, tree, inv);
    ActionId leaf_op = ts->Call(op.tree_op, leaf, inv);
    if (method == "insert") {
      op.prims.push_back(ts->Call(leaf_op, page, Invocation("read")));
      op.prims.push_back(ts->Call(leaf_op, page, Invocation("write")));
    } else if (method == "scan") {
      op.prims.push_back(ts->Call(leaf_op, page, Invocation("scan")));
    } else {
      op.prims.push_back(ts->Call(leaf_op, page, Invocation("read")));
    }
    return op;
  }

  /// Stamps the ops' primitives in the given op order (primitives of
  /// one op stay contiguous, as per-operation latching guarantees).
  void Stamp(const std::vector<const Op*>& order) {
    for (const Op* op : order) {
      for (ActionId prim : op->prims) {
        ts->SetTimestamp(prim, ts->NextTimestamp());
      }
    }
  }
};

std::unique_ptr<TransactionSystem> LostUpdate(bool bad) {
  // Two read-modify-writes of the same key k: read(k) then write(k).
  World w;
  ActionId t1 = w.Top("T1");
  ActionId t2 = w.Top("T2");
  Op r1 = w.Add(t1, "search", {Value("k")});
  Op w1 = w.Add(t1, "insert", {Value("k"), Value("v1")});
  Op r2 = w.Add(t2, "search", {Value("k")});
  Op w2 = w.Add(t2, "insert", {Value("k"), Value("v2")});
  if (bad) {
    // Both read the old value, then both write: one update is lost.
    w.Stamp({&r1, &r2, &w1, &w2});
  } else {
    w.Stamp({&r1, &w1, &r2, &w2});
  }
  return std::move(w.ts);
}

std::unique_ptr<TransactionSystem> InconsistentRead(bool bad) {
  // T1 updates keys a and b together; T2 reads both.
  World w;
  ActionId t1 = w.Top("T1");
  ActionId t2 = w.Top("T2");
  Op wa = w.Add(t1, "insert", {Value("a"), Value("new")});
  Op wb = w.Add(t1, "insert", {Value("b"), Value("new")});
  Op ra = w.Add(t2, "search", {Value("a")});
  Op rb = w.Add(t2, "search", {Value("b")});
  if (bad) {
    // T2 sees the new a but the old b: half of T1's update.
    w.Stamp({&wa, &ra, &rb, &wb});
  } else {
    w.Stamp({&wa, &wb, &ra, &rb});
  }
  return std::move(w.ts);
}

std::unique_ptr<TransactionSystem> Phantom(bool bad) {
  // T1 scans [a, z] twice (repeatable read); T2 inserts key m inside
  // the range.
  World w;
  ActionId t1 = w.Top("T1");
  ActionId t2 = w.Top("T2");
  Op s1 = w.Add(t1, "scan", {Value("a"), Value("z")});
  Op s2 = w.Add(t1, "scan", {Value("a"), Value("z")});
  Op ins = w.Add(t2, "insert", {Value("m"), Value("v")});
  if (bad) {
    // The phantom appears between the two scans.
    w.Stamp({&s1, &ins, &s2});
  } else {
    w.Stamp({&s1, &s2, &ins});
  }
  return std::move(w.ts);
}

std::unique_ptr<TransactionSystem> WriteSkew(bool bad) {
  // T1 reads x and writes y; T2 reads y and writes x.
  World w;
  ActionId t1 = w.Top("T1");
  ActionId t2 = w.Top("T2");
  Op r1 = w.Add(t1, "search", {Value("x")});
  Op w1 = w.Add(t1, "insert", {Value("y"), Value("v1")});
  Op r2 = w.Add(t2, "search", {Value("y")});
  Op w2 = w.Add(t2, "insert", {Value("x"), Value("v2")});
  if (bad) {
    // Both read before either writes: the crossed constraint breaks.
    w.Stamp({&r1, &r2, &w1, &w2});
  } else {
    w.Stamp({&r1, &w1, &r2, &w2});
  }
  return std::move(w.ts);
}

}  // namespace

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLostUpdate:
      return "lost-update";
    case AnomalyKind::kInconsistentRead:
      return "inconsistent-read";
    case AnomalyKind::kPhantom:
      return "phantom";
    case AnomalyKind::kWriteSkew:
      return "write-skew";
  }
  return "?";
}

std::vector<AnomalyKind> AllAnomalyKinds() {
  return {AnomalyKind::kLostUpdate, AnomalyKind::kInconsistentRead,
          AnomalyKind::kPhantom, AnomalyKind::kWriteSkew};
}

std::unique_ptr<TransactionSystem> MakeAnomaly(AnomalyKind kind, bool bad) {
  switch (kind) {
    case AnomalyKind::kLostUpdate:
      return LostUpdate(bad);
    case AnomalyKind::kInconsistentRead:
      return InconsistentRead(bad);
    case AnomalyKind::kPhantom:
      return Phantom(bad);
    case AnomalyKind::kWriteSkew:
      return WriteSkew(bad);
  }
  return nullptr;
}

}  // namespace oodb
