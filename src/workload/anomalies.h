// Constructors for the classic concurrency anomalies, expressed as
// recorded executions in the paper's model. Section 1: "Concurrent
// execution of transactions may cause inconsistencies like lost
// updates, inconsistent reads, and occurrences of phantoms."
//
// Each anomaly comes in two variants:
//   * `bad`  — the anomalous interleaving, which the oo-serializability
//     criterion must REJECT;
//   * `good` — the closest correct interleaving of the same
//     transactions, which it must ACCEPT.
//
// Used by schedule_anomalies_test.cc and bench/s9_anomaly_detection.cc.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/transaction_system.h"

namespace oodb {

enum class AnomalyKind {
  kLostUpdate,        ///< two read-modify-writes interleave
  kInconsistentRead,  ///< a reader sees half of another txn's update
  kPhantom,           ///< a scan misses/sees a concurrent insert halfway
  kWriteSkew,         ///< disjoint writes under crossed reads
};

const char* AnomalyKindName(AnomalyKind kind);

/// All kinds, for sweeps.
std::vector<AnomalyKind> AllAnomalyKinds();

/// Builds the execution. The systems use the keyed Leaf/Page types of
/// the encyclopedia world, so semantic commutativity is in force — the
/// rejections below are genuine violations, not page-level noise.
std::unique_ptr<TransactionSystem> MakeAnomaly(AnomalyKind kind, bool bad);

}  // namespace oodb
