#include "workload/crash_harness.h"

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <map>
#include <thread>
#include <unordered_set>
#include <vector>

#include "containers/directory.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "containers/persist.h"
#include "schedule/validator.h"
#include "util/logging.h"
#include "util/random.h"

namespace oodb {

namespace {

constexpr char kDirRoot[] = "D";
constexpr char kIndexRoot[] = "H";
constexpr size_t kBucketCapacity = 4;

void RegisterAll(Database* db) {
  RegisterPageMethods(db);
  RegisterDirectoryMethods(db);
  HashIndex::RegisterMethods(db);
}

/// Open (or create) the store and make sure both roots exist.
Status OpenStore(StorageEngine* engine, Database* db) {
  OODB_RETURN_IF_ERROR(RegisterStandardSerdes(engine));
  OODB_RETURN_IF_ERROR(engine->Open(db));
  if (!engine->RootId(kDirRoot).valid()) {
    OODB_RETURN_IF_ERROR(engine->AttachRoot(
        kDirRoot, "directory", CreateDirectory(db, kDirRoot)));
  }
  if (!engine->RootId(kIndexRoot).valid()) {
    OODB_RETURN_IF_ERROR(engine->AttachRoot(
        kIndexRoot, "hash-index",
        HashIndex::Create(db, kIndexRoot, kBucketCapacity)));
  }
  return Status::OK();
}

/// One seeded transaction body. Reconstructable: the body derives all
/// randomness from (seed, thread, index) on every attempt, so deadlock
/// retries re-run the same logical operations.
TransactionBody MakeTxn(StorageEngine* engine, uint64_t seed, size_t thread,
                        size_t index) {
  return [engine, seed, thread, index](MethodContext& txn) -> Status {
    Rng rng(seed * 1000003 + thread * 131071 + index * 31 + 1);
    ObjectId dir = engine->RootId(kDirRoot);
    ObjectId idx = engine->RootId(kIndexRoot);
    const size_t ops = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.NextBelow(40));
      const std::string val = "v" + std::to_string(rng.NextBelow(100000));
      const uint64_t dice = rng.NextBelow(100);
      Status st;
      if (rng.NextBool()) {
        if (dice < 55) {
          st = txn.Call(dir, Invocation("insert", {Value(key), Value(val)}));
        } else if (dice < 75) {
          st = txn.Call(dir, Invocation("remove", {Value(key)}));
        } else if (dice < 90) {
          // May return NotFound: a genuine mid-transaction abort that
          // exercises the compensation + abort-record path.
          st = txn.Call(dir, Invocation("update", {Value(key), Value(val)}));
        } else {
          st = txn.Call(dir, Invocation("lookup", {Value(key)}));
        }
      } else {
        if (dice < 55) {
          st = txn.Call(idx, HashIndex::Insert(key, val));
        } else if (dice < 80) {
          st = txn.Call(idx, HashIndex::Erase(key));
        } else {
          st = txn.Call(idx, HashIndex::Search(key));
        }
      }
      if (!st.ok()) return st;
    }
    if (rng.NextBelow(100) < 12) {
      return Status::Aborted("induced abort");
    }
    return Status::OK();
  };
}

void RunWorkload(Database* db, StorageEngine* engine, uint64_t seed,
                 size_t txns, size_t threads) {
  if (threads == 0) threads = 1;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t per_thread = (txns + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([=] {
      for (size_t i = 0; i < per_thread; ++i) {
        // Aborts (induced or NotFound) are part of the plan; deadlock
        // retries are inside RunTransaction.
        (void)db->RunTransaction(
            "w" + std::to_string(t) + "." + std::to_string(i),
            MakeTxn(engine, seed, t, i));
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Child side: open, recover (trivial on a fresh dir), arm the crash,
/// run the workload. Exits 0 when the armed crash never fired.
int RunChild(const CrashHarnessConfig& config) {
  Database db;
  RegisterAll(&db);
  StorageEngineOptions opts;
  opts.dir = config.dir;
  opts.wal.crash_after_appends = config.crash_after_appends;
  opts.checkpoint_every_commits = config.checkpoint_every_commits;
  StorageEngine engine(opts);
  if (!OpenStore(&engine, &db).ok()) return 3;
  RecoveryStats rs;
  if (!Recover(&engine, &db, &rs).ok()) return 4;
  db.AttachDurability(&engine);
  RunWorkload(&db, &engine, config.seed, config.txns, config.threads);
  return 0;
}

std::string FirstDiff(const std::string& got, const std::string& want) {
  size_t i = 0;
  while (i < got.size() && i < want.size() && got[i] == want[i]) ++i;
  auto context = [i](const std::string& s) {
    const size_t start = i < 24 ? 0 : i - 24;
    return s.substr(start, 48);
  };
  return "...'" + context(got) + "' vs ...'" + context(want) + "'";
}

}  // namespace

std::string CrashHarnessReport::Row() const {
  std::string row = std::string("crashed=") + (crashed ? "1" : "0") +
                    " recovered=" + (recovered ? "1" : "0") +
                    " oracle_match=" + (state_matches_oracle ? "1" : "0") +
                    " lock_leaks=" + (no_lock_leaks ? "0" : "!") +
                    " pin_leaks=" + (no_pin_leaks ? "0" : "!") +
                    " history_valid=" + (history_valid ? "1" : "0") +
                    " winners=" + std::to_string(oracle_committed) +
                    " redo=" + std::to_string(recovery.redo_records) +
                    " undo=" + std::to_string(recovery.undo_records) +
                    " losers=" + std::to_string(recovery.losers) +
                    " epochs=" + std::to_string(wal_epochs);
  if (!failure.empty()) row += " FAIL: " + failure;
  return row;
}

std::string CrashHarnessReport::Json(int64_t crash_after) const {
  auto b = [](bool v) { return v ? "true" : "false"; };
  std::string esc;
  for (char c : failure) {
    if (c == '"' || c == '\\') esc += '\\';
    esc += c;
  }
  std::string out = "{\"crash_after\": " + std::to_string(crash_after) +
                    ", \"ok\": " + b(ok()) +
                    ", \"crashed\": " + b(crashed) +
                    ", \"recovered\": " + b(recovered) +
                    ", \"oracle_match\": " + b(state_matches_oracle) +
                    ", \"lock_leaks\": " + b(!no_lock_leaks) +
                    ", \"pin_leaks\": " + b(!no_pin_leaks) +
                    ", \"history_valid\": " + b(history_valid) +
                    ", \"oracle_committed\": " +
                    std::to_string(oracle_committed) +
                    ", \"wal_epochs\": " + std::to_string(wal_epochs) +
                    ", \"recovery\": {\"scanned_records\": " +
                    std::to_string(recovery.scanned_records) +
                    ", \"torn_bytes\": " + std::to_string(recovery.torn_bytes) +
                    ", \"winners\": " + std::to_string(recovery.winners) +
                    ", \"resolved\": " + std::to_string(recovery.resolved) +
                    ", \"losers\": " + std::to_string(recovery.losers) +
                    ", \"redo_records\": " +
                    std::to_string(recovery.redo_records) +
                    ", \"undo_records\": " +
                    std::to_string(recovery.undo_records) +
                    ", \"unundoable\": " + std::to_string(recovery.unundoable) +
                    ", \"timeline\": " + recovery.timeline.Json() + "}";
  if (!failure.empty()) out += ", \"failure\": \"" + esc + "\"";
  out += "}";
  return out;
}

CrashHarnessReport CrashHarness::Run(const CrashHarnessConfig& config) {
  CrashHarnessReport report;
  pid_t pid = ::fork();
  if (pid < 0) {
    report.failure = "fork failed";
    return report;
  }
  if (pid == 0) {
    // _exit skips atexit/static destructors: the child either dies by
    // the injected SIGKILL or leaves as abruptly as possible.
    ::_exit(RunChild(config));
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  report.crashed =
      WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    report.failure =
        "child setup failed rc=" + std::to_string(WEXITSTATUS(status));
    return report;
  }

  // --- recover ---------------------------------------------------------
  Database db;
  RegisterAll(&db);
  StorageEngineOptions opts;
  opts.dir = config.dir;
  StorageEngine engine(opts);
  Status st = OpenStore(&engine, &db);
  if (!st.ok()) {
    report.failure = "reopen failed: " + st.ToString();
    return report;
  }
  st = Recover(&engine, &db, &report.recovery);
  if (!st.ok()) {
    report.failure = "recovery failed: " + st.ToString();
    return report;
  }
  report.recovered = true;
  report.no_lock_leaks = db.locks().LockCount() == 0;
  report.no_pin_leaks = engine.cache()->PinnedCount() == 0;
  if (!report.no_lock_leaks) report.failure = "locks leaked";
  if (!report.no_pin_leaks) report.failure = "buffer pins leaked";

  // --- committed-only oracle ------------------------------------------
  Database oracle;
  RegisterAll(&oracle);
  std::map<std::string, ObjectId> oracle_roots;
  oracle_roots[kDirRoot] = CreateDirectory(&oracle, kDirRoot);
  oracle_roots[kIndexRoot] =
      HashIndex::Create(&oracle, kIndexRoot, kBucketCapacity);
  report.wal_epochs = engine.epoch();
  for (uint64_t e = 1; e <= engine.epoch(); ++e) {
    std::vector<WalRecord> records;
    Status scan = Wal::Scan(engine.WalPath(e), &records);
    if (scan.code() == StatusCode::kNotFound) continue;
    if (!scan.ok()) {
      report.failure = "oracle scan of epoch " + std::to_string(e) +
                       " failed: " + scan.ToString();
      return report;
    }
    std::unordered_set<uint64_t> committed;
    for (const WalRecord& rec : records) {
      if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn);
    }
    report.oracle_committed += committed.size();
    for (const WalRecord& rec : records) {
      if (rec.type != WalRecordType::kOp || !committed.count(rec.txn)) {
        continue;
      }
      auto root = oracle_roots.find(rec.root);
      if (root == oracle_roots.end()) {
        report.failure = "oracle: unknown root '" + rec.root + "'";
        return report;
      }
      Status applied = oracle.RunTransaction(
          "oracle#" + std::to_string(rec.lsn), [&](MethodContext& txn) {
            return txn.Call(root->second, rec.op);
          });
      if (!applied.ok()) {
        report.failure = "oracle replay of " + rec.ToString() +
                         " failed: " + applied.ToString();
        return report;
      }
    }
  }

  // --- semantic comparison --------------------------------------------
  const RootSerde dir_serde = DirectorySerde();
  const RootSerde idx_serde = HashIndexSerde();
  const std::string got_dir = dir_serde.dump(db, engine.RootId(kDirRoot));
  const std::string want_dir = dir_serde.dump(oracle, oracle_roots[kDirRoot]);
  const std::string got_idx = idx_serde.dump(db, engine.RootId(kIndexRoot));
  const std::string want_idx =
      idx_serde.dump(oracle, oracle_roots[kIndexRoot]);
  report.state_matches_oracle =
      got_dir == want_dir && got_idx == want_idx;
  if (!report.state_matches_oracle && report.failure.empty()) {
    report.failure =
        got_dir != want_dir
            ? "directory diverges from oracle: " + FirstDiff(got_dir, want_dir)
            : "hash index diverges from oracle: " +
                  FirstDiff(got_idx, want_idx);
  }
  if (config.verbose) {
    OODB_ERROR("recovered directory:\n"
               << got_dir << "oracle directory:\n"
               << want_dir);
  }

  // --- life after recovery --------------------------------------------
  db.AttachDurability(&engine);
  if (config.post_txns > 0) {
    RunWorkload(&db, &engine, config.seed + 7919, config.post_txns,
                config.threads);
  }
  ValidationReport validation = Validator::Validate(&db.ts());
  report.history_valid = validation.oo_serializable && validation.conform;
  if (!report.history_valid && report.failure.empty()) {
    report.failure = "post-recovery history fails Defs 13/16: " +
                     validation.Summary();
  }
  return report;
}

}  // namespace oodb
