// RandomHistory: generates random interleaved executions directly as
// transaction systems (no runtime, no locking) so the validators can be
// measured on schedules a scheduler would never have produced. This is
// the instrument behind experiment S1 (admission rates: how many random
// interleavings each criterion accepts) and behind the Fig 4 sweep
// (page-level vs key-level conflict probability as keys-per-page grows).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/transaction_system.h"

namespace oodb {

struct RandomHistoryConfig {
  size_t num_txns = 4;
  size_t ops_per_txn = 3;
  /// Leaves under one tree; each leaf owns one page.
  size_t num_leaves = 2;
  /// Distinct keys per leaf (all stored on that leaf's page). Larger
  /// values = lower key-collision probability at unchanged page-conflict
  /// probability: the paper's "rough up to 500 keys per page" argument.
  size_t keys_per_leaf = 8;
  /// Fraction of operations that are searches (rest are inserts).
  double search_fraction = 0.4;
  /// When true (default), the interleaving unit is one leaf-level
  /// operation (its page reads/writes stay contiguous) — what index
  /// implementations guarantee with per-operation latching. When false,
  /// individual primitives interleave freely; the dependency analysis
  /// then detects intra-operation contradictions (Def 13 ii) in almost
  /// every schedule, which is exactly what it is for.
  bool atomic_ops = true;
  uint64_t seed = 1;
};

/// A generated execution plus handles for inspection.
struct RandomHistory {
  std::unique_ptr<TransactionSystem> ts;
  ObjectId tree;
  std::vector<ObjectId> leaves;
  std::vector<ObjectId> pages;
  std::vector<ActionId> txns;
};

/// Builds the call trees (txn -> tree.op -> leaf.op -> page r/w) and
/// stamps the primitive actions in a uniformly random interleaving that
/// preserves each transaction's program order.
RandomHistory GenerateRandomHistory(const RandomHistoryConfig& config);

}  // namespace oodb
