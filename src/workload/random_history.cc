#include "workload/random_history.h"

#include <string>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "util/random.h"

namespace oodb {

RandomHistory GenerateRandomHistory(const RandomHistoryConfig& config) {
  RandomHistory h;
  h.ts = std::make_unique<TransactionSystem>();
  TransactionSystem& ts = *h.ts;
  Rng rng(config.seed);

  h.tree = ts.AddObject(BpTreeObjectType(), "BpTree");
  for (size_t i = 0; i < config.num_leaves; ++i) {
    h.leaves.push_back(
        ts.AddObject(LeafObjectType(), "Leaf" + std::to_string(i)));
    h.pages.push_back(
        ts.AddObject(PageObjectType(), "Page" + std::to_string(i)));
  }

  // Build call trees and collect each transaction's program as a list
  // of interleaving units (blocks of primitives).
  std::vector<std::vector<std::vector<ActionId>>> programs(config.num_txns);
  for (size_t t = 0; t < config.num_txns; ++t) {
    ActionId top = ts.BeginTopLevel("T" + std::to_string(t + 1));
    h.txns.push_back(top);
    for (size_t op = 0; op < config.ops_per_txn; ++op) {
      size_t leaf_idx = rng.NextBelow(config.num_leaves);
      std::string key =
          "k" + std::to_string(leaf_idx) + "_" +
          std::to_string(rng.NextBelow(config.keys_per_leaf));
      bool is_search = rng.NextBool(config.search_fraction);
      const char* method = is_search ? "search" : "insert";
      Invocation inv(method, {Value(key)});
      ActionId tree_op = ts.Call(top, h.tree, inv);
      ActionId leaf_op = ts.Call(tree_op, h.leaves[leaf_idx], inv);
      std::vector<ActionId> block;
      if (is_search) {
        block.push_back(
            ts.Call(leaf_op, h.pages[leaf_idx], Invocation("read")));
      } else {
        block.push_back(
            ts.Call(leaf_op, h.pages[leaf_idx], Invocation("read")));
        block.push_back(
            ts.Call(leaf_op, h.pages[leaf_idx], Invocation("write")));
      }
      if (config.atomic_ops) {
        programs[t].push_back(std::move(block));
      } else {
        for (ActionId a : block) programs[t].push_back({a});
      }
    }
  }

  // Uniform random interleaving preserving program order: repeatedly
  // pick a transaction weighted by its remaining blocks; a picked block
  // is stamped contiguously.
  std::vector<size_t> cursor(config.num_txns, 0);
  size_t remaining = 0;
  for (const auto& p : programs) remaining += p.size();
  while (remaining > 0) {
    uint64_t pick = rng.NextBelow(remaining);
    for (size_t t = 0; t < config.num_txns; ++t) {
      size_t left = programs[t].size() - cursor[t];
      if (pick < left) {
        for (ActionId a : programs[t][cursor[t]++]) {
          ts.SetTimestamp(a, ts.NextTimestamp());
        }
        --remaining;
        break;
      }
      pick -= left;
    }
  }
  return h;
}

}  // namespace oodb
