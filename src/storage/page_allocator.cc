#include "storage/page_allocator.h"

namespace oodb {

PageAllocator::PageAllocator(PageNo first_page, uint64_t max_pages)
    : first_page_(first_page), max_pages_(max_pages),
      bitmap_((max_pages + 7) / 8, 0) {}

Result<PageNo> PageAllocator::Allocate() {
  for (uint64_t i = scan_hint_; i < max_pages_; ++i) {
    if ((bitmap_[i / 8] & (1u << (i % 8))) == 0) {
      bitmap_[i / 8] |= (1u << (i % 8));
      scan_hint_ = i + 1;
      return first_page_ + i;
    }
  }
  return Status::Capacity("page store full (" +
                          std::to_string(max_pages_) + " pages)");
}

Status PageAllocator::Free(PageNo page) {
  if (page < first_page_ || page >= first_page_ + max_pages_) {
    return Status::InvalidArgument("free of page " + std::to_string(page) +
                                   " outside the data area");
  }
  uint64_t i = page - first_page_;
  if ((bitmap_[i / 8] & (1u << (i % 8))) == 0) {
    return Status::Internal("double free of page " + std::to_string(page));
  }
  bitmap_[i / 8] &= ~(1u << (i % 8));
  if (i < scan_hint_) scan_hint_ = i;
  return Status::OK();
}

bool PageAllocator::IsAllocated(PageNo page) const {
  if (page < first_page_ || page >= first_page_ + max_pages_) return false;
  uint64_t i = page - first_page_;
  return (bitmap_[i / 8] & (1u << (i % 8))) != 0;
}

uint64_t PageAllocator::AllocatedCount() const {
  uint64_t n = 0;
  for (uint64_t i = 0; i < max_pages_; ++i) {
    if ((bitmap_[i / 8] & (1u << (i % 8))) != 0) ++n;
  }
  return n;
}

std::string PageAllocator::SerializeBitmap() const {
  return std::string(reinterpret_cast<const char*>(bitmap_.data()),
                     bitmap_.size());
}

Status PageAllocator::LoadBitmap(const std::string& bits) {
  if (bits.size() > bitmap_.size()) {
    return Status::InvalidArgument("bitmap larger than the data area");
  }
  std::fill(bitmap_.begin(), bitmap_.end(), 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    bitmap_[i] = static_cast<uint8_t>(bits[i]);
  }
  scan_hint_ = 0;
  return Status::OK();
}

}  // namespace oodb
