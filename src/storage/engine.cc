#include "storage/engine.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/phases.h"
#include "obs/sampler.h"
#include "storage/serde.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace oodb {

namespace {

/// Data pages start after the two meta slots.
constexpr PageNo kFirstDataPage = 2;
/// Each chain page: [u64 next][payload].
constexpr size_t kChainHeader = 8;
constexpr size_t kChainPayload = kPageSize - kChainHeader;

/// Bills the enclosing scope's duration to the calling root
/// transaction's wal-force phase (no-op when no accumulator is
/// installed — obs/phases.h). The WAL append/force paths are the only
/// storage calls on a transaction's critical path.
class WalForceScope {
 public:
  WalForceScope()
      : active_(PhaseAccumulator::Current() != nullptr),
        start_(active_ ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point()) {}
  ~WalForceScope() {
    if (!active_) return;
    PhaseAccumulator::AddCurrent(
        Phase::kWalForce,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count()));
  }

 private:
  const bool active_;
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace

StorageEngine::StorageEngine(StorageEngineOptions options)
    : options_(std::move(options)) {}

StorageEngine::~StorageEngine() = default;

Status StorageEngine::RegisterType(const std::string& tag, RootSerde serde) {
  if (opened_) {
    return Status::InvalidArgument("RegisterType after Open");
  }
  if (!serde.serialize || !serde.deserialize || !serde.dump) {
    return Status::InvalidArgument("RootSerde for '" + tag +
                                   "' is missing a hook");
  }
  serdes_[tag] = std::move(serde);
  return Status::OK();
}

const RootSerde* StorageEngine::SerdeFor(const std::string& tag) const {
  auto it = serdes_.find(tag);
  return it == serdes_.end() ? nullptr : &it->second;
}

std::string StorageEngine::WalPath(uint64_t epoch) const {
  return options_.dir + "/wal." + std::to_string(epoch);
}

uint64_t StorageEngine::next_lsn() const {
  return wal_.IsOpen() ? wal_.next_lsn() : next_lsn_;
}

StorageEngineStats StorageEngine::stats() const {
  std::lock_guard<std::mutex> guard(log_mutex_);
  return stats_;
}

// --- meta slots --------------------------------------------------------

std::string StorageEngine::EncodeMeta(uint64_t version, uint64_t epoch,
                                      uint64_t next_lsn) const {
  BlobWriter w;
  w.U64(version);
  w.U64(epoch);
  w.U64(next_lsn);
  w.U32(static_cast<uint32_t>(roots_.size()));
  for (const auto& [name, entry] : roots_) {
    w.Str(name);
    w.Str(entry.tag);
    w.U64(entry.first_page);
    w.U64(entry.bytes);
  }
  w.Str(allocator_->SerializeBitmap());
  return w.Take();
}

Status StorageEngine::WriteMetaSlot(uint64_t version, uint64_t epoch,
                                    uint64_t next_lsn) {
  const std::string payload = EncodeMeta(version, epoch, next_lsn);
  if (payload.size() > kPageSize - 8) {
    return Status::Capacity("meta payload (" +
                            std::to_string(payload.size()) +
                            " bytes) exceeds one page; lower max_pages");
  }
  BlobWriter head;
  head.U32(static_cast<uint32_t>(payload.size()));
  head.U32(Crc32(payload));
  std::vector<char> page(kPageSize, 0);
  std::memcpy(page.data(), head.blob().data(), 8);
  std::memcpy(page.data() + 8, payload.data(), payload.size());
  // Ping-pong: versions alternate slots, so the previous meta is never
  // overwritten and a torn write loses only the newer version.
  OODB_RETURN_IF_ERROR(file_.WritePage(version % 2, page.data()));
  return file_.Sync();
}

bool StorageEngine::ReadMetaSlot(PageNo slot, uint64_t* version,
                                 std::string* payload) {
  std::vector<char> page(kPageSize);
  if (!file_.ReadPage(slot, page.data()).ok()) return false;
  BlobReader head(page.data(), 8);
  uint32_t len = 0, crc = 0;
  head.U32(&len);
  head.U32(&crc);
  if (len == 0 || len > kPageSize - 8) return false;
  if (Crc32(page.data() + 8, len) != crc) return false;
  payload->assign(page.data() + 8, len);
  BlobReader r(*payload);
  return r.U64(version);
}

// --- blob page chains --------------------------------------------------

Result<std::vector<PageNo>> StorageEngine::ChainPages(PageNo first,
                                                      uint64_t bytes) {
  std::vector<PageNo> pages;
  PageNo cur = first;
  uint64_t remaining = bytes;
  while (remaining > 0) {
    if (cur == 0) {
      return Status::Internal("page chain ends " +
                              std::to_string(remaining) + " bytes early");
    }
    pages.push_back(cur);
    OODB_ASSIGN_OR_RETURN(char* frame, cache_->Pin(cur));
    BlobReader head(frame, kChainHeader);
    uint64_t next = 0;
    head.U64(&next);
    OODB_RETURN_IF_ERROR(cache_->Unpin(cur, /*dirty=*/false));
    remaining -= std::min<uint64_t>(remaining, kChainPayload);
    cur = next;
  }
  return pages;
}

Result<std::string> StorageEngine::ReadBlob(PageNo first, uint64_t bytes) {
  std::string blob;
  blob.reserve(bytes);
  PageNo cur = first;
  uint64_t remaining = bytes;
  while (remaining > 0) {
    if (cur == 0) {
      return Status::Internal("page chain ends " +
                              std::to_string(remaining) + " bytes early");
    }
    OODB_ASSIGN_OR_RETURN(char* frame, cache_->Pin(cur));
    BlobReader head(frame, kChainHeader);
    uint64_t next = 0;
    head.U64(&next);
    const uint64_t chunk = std::min<uint64_t>(remaining, kChainPayload);
    blob.append(frame + kChainHeader, chunk);
    OODB_RETURN_IF_ERROR(cache_->Unpin(cur, /*dirty=*/false));
    remaining -= chunk;
    cur = next;
  }
  return blob;
}

Result<PageNo> StorageEngine::WriteBlob(const std::string& blob) {
  if (blob.empty()) return PageNo(0);
  const size_t n_pages = (blob.size() + kChainPayload - 1) / kChainPayload;
  std::vector<PageNo> pages;
  pages.reserve(n_pages);
  for (size_t i = 0; i < n_pages; ++i) {
    OODB_ASSIGN_OR_RETURN(PageNo p, allocator_->Allocate());
    pages.push_back(p);
  }
  for (size_t i = 0; i < n_pages; ++i) {
    OODB_ASSIGN_OR_RETURN(char* frame, cache_->Pin(pages[i]));
    BlobWriter head;
    head.U64(i + 1 < n_pages ? pages[i + 1] : 0);
    std::memcpy(frame, head.blob().data(), kChainHeader);
    const size_t off = i * kChainPayload;
    const size_t chunk = std::min(kChainPayload, blob.size() - off);
    std::memcpy(frame + kChainHeader, blob.data() + off, chunk);
    if (chunk < kChainPayload) {
      std::memset(frame + kChainHeader + chunk, 0, kChainPayload - chunk);
    }
    OODB_RETURN_IF_ERROR(cache_->Unpin(pages[i], /*dirty=*/true));
  }
  return pages[0];
}

// --- open --------------------------------------------------------------

Status StorageEngine::Open(Database* db) {
  if (opened_) return Status::InvalidArgument("engine already open");
  ::mkdir(options_.dir.c_str(), 0755);  // EEXIST is fine
  OODB_RETURN_IF_ERROR(file_.Open(options_.dir + "/pages.db"));
  cache_ = std::make_unique<PageCache>(&file_, options_.cache_frames);
  if (metrics_ != nullptr) cache_->AttachMetrics(metrics_);
  allocator_ =
      std::make_unique<PageAllocator>(kFirstDataPage, options_.max_pages);

  // The slot with the higher intact version is the store.
  uint64_t v0 = 0, v1 = 0;
  std::string p0, p1;
  const bool ok0 = ReadMetaSlot(0, &v0, &p0);
  const bool ok1 = ReadMetaSlot(1, &v1, &p1);
  if (!ok0 && !ok1) {
    // Fresh store: epoch 1, empty catalog. The meta goes down now so a
    // crash before the first checkpoint still finds a valid store.
    epoch_ = 1;
    meta_version_ = 1;
    next_lsn_ = 1;
    OODB_RETURN_IF_ERROR(WriteMetaSlot(meta_version_, epoch_, next_lsn_));
    opened_ = true;
    return Status::OK();
  }
  const std::string& payload = (ok1 && (!ok0 || v1 > v0)) ? p1 : p0;
  BlobReader r(payload);
  uint32_t n_roots = 0;
  std::string bitmap;
  if (!r.U64(&meta_version_) || !r.U64(&epoch_) || !r.U64(&next_lsn_) ||
      !r.U32(&n_roots)) {
    return Status::Internal("corrupt meta payload");
  }
  std::vector<std::pair<std::string, CatalogEntry>> entries;
  for (uint32_t i = 0; i < n_roots; ++i) {
    std::string name;
    CatalogEntry e;
    if (!r.Str(&name) || !r.Str(&e.tag) || !r.U64(&e.first_page) ||
        !r.U64(&e.bytes)) {
      return Status::Internal("corrupt meta catalog");
    }
    entries.emplace_back(std::move(name), std::move(e));
  }
  if (!r.Str(&bitmap) || !r.Done()) {
    return Status::Internal("corrupt meta bitmap");
  }
  OODB_RETURN_IF_ERROR(allocator_->LoadBitmap(bitmap));

  for (auto& [name, entry] : entries) {
    const RootSerde* serde = SerdeFor(entry.tag);
    if (serde == nullptr) {
      return Status::InvalidArgument("no RootSerde registered for tag '" +
                                     entry.tag + "' (root '" + name + "')");
    }
    OODB_ASSIGN_OR_RETURN(std::string blob,
                          ReadBlob(entry.first_page, entry.bytes));
    OODB_ASSIGN_OR_RETURN(ObjectId id,
                          serde->deserialize(db, name, blob));
    entry.id = id;
    persistent_ids_.insert(id.value);
    roots_[name] = std::move(entry);
  }
  opened_ = true;
  return Status::OK();
}

Status StorageEngine::AttachRoot(const std::string& name,
                                 const std::string& tag, ObjectId root) {
  if (!opened_) return Status::InvalidArgument("AttachRoot before Open");
  if (roots_.count(name)) {
    return Status::AlreadyExists("root '" + name + "' already attached");
  }
  if (SerdeFor(tag) == nullptr) {
    return Status::InvalidArgument("no RootSerde registered for tag '" +
                                   tag + "'");
  }
  if (!root.valid()) {
    return Status::InvalidArgument("invalid root id for '" + name + "'");
  }
  CatalogEntry entry;
  entry.tag = tag;
  entry.id = root;
  roots_[name] = std::move(entry);
  persistent_ids_.insert(root.value);
  return Status::OK();
}

ObjectId StorageEngine::RootId(const std::string& name) const {
  auto it = roots_.find(name);
  return it == roots_.end() ? ObjectId() : it->second.id;
}

std::vector<std::string> StorageEngine::RootNames() const {
  std::vector<std::string> names;
  names.reserve(roots_.size());
  for (const auto& [name, entry] : roots_) names.push_back(name);
  return names;
}

std::string StorageEngine::DumpRoots(Database& db) const {
  std::string out;
  for (const auto& [name, entry] : roots_) {
    const RootSerde* serde = SerdeFor(entry.tag);
    out += "== " + name + " (" + entry.tag + ")\n";
    if (serde != nullptr && entry.id.valid()) {
      out += serde->dump(db, entry.id);
    }
  }
  return out;
}

// --- checkpoint --------------------------------------------------------

Status StorageEngine::Checkpoint(Database* db) {
  Status st;
  db->QuiesceAndRun([&] { st = CheckpointQuiesced(db); });
  return st;
}

Status StorageEngine::CheckpointQuiesced(Database* db) {
  if (!opened_) return Status::InvalidArgument("checkpoint before Open");
  Stopwatch ckpt_watch;
  // 1. Serialize every root into shadow pages; the old chains stay
  //    allocated and referenced by the current meta until the flip.
  std::map<std::string, std::pair<PageNo, uint64_t>> fresh;
  std::vector<PageNo> old_pages;
  for (const auto& [name, entry] : roots_) {
    const RootSerde* serde = SerdeFor(entry.tag);
    const std::string blob = serde->serialize(*db, entry.id);
    OODB_ASSIGN_OR_RETURN(PageNo first, WriteBlob(blob));
    fresh[name] = {first, blob.size()};
    if (entry.first_page != 0) {
      OODB_ASSIGN_OR_RETURN(std::vector<PageNo> chain,
                            ChainPages(entry.first_page, entry.bytes));
      old_pages.insert(old_pages.end(), chain.begin(), chain.end());
    }
  }
  OODB_RETURN_IF_ERROR(cache_->FlushAll());
  OODB_RETURN_IF_ERROR(file_.Sync());
  const uint64_t writeback_done_ns = ckpt_watch.ElapsedNanos();

  // 2. Free the old chains *before* the meta write: the new bitmap
  //    must show them free. If the flip never lands, the crash restores
  //    the old meta, whose bitmap still holds them allocated.
  for (PageNo p : old_pages) {
    OODB_RETURN_IF_ERROR(allocator_->Free(p));
  }
  for (auto& [name, pages] : fresh) {
    roots_[name].first_page = pages.first;
    roots_[name].bytes = pages.second;
  }

  // 3. Atomic flip: one synced meta slot carries catalog + bitmap +
  //    epoch + next LSN.
  const uint64_t new_epoch = epoch_ + 1;
  const uint64_t lsn = next_lsn();
  OODB_RETURN_IF_ERROR(WriteMetaSlot(meta_version_ + 1, new_epoch, lsn));
  ++meta_version_;
  const uint64_t old_epoch = epoch_;
  epoch_ = new_epoch;
  next_lsn_ = lsn;
  const uint64_t flip_done_ns = ckpt_watch.ElapsedNanos();

  // 4. Fresh WAL epoch; the finished one becomes the archive.
  const bool had_wal = wal_.IsOpen();
  OODB_RETURN_IF_ERROR(wal_.Create(WalPath(new_epoch), lsn, options_.wal));
  if (had_wal && !options_.keep_archived_wals) {
    ::unlink(WalPath(old_epoch).c_str());
  }
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    begun_.clear();  // the gate guarantees it is already empty
    ++stats_.checkpoints;
  }
  commits_since_ckpt_.store(0, std::memory_order_relaxed);
  if (m_checkpoints_) m_checkpoints_->Increment();
  if (h_ckpt_total_ns_ != nullptr) {
    const uint64_t total_ns = ckpt_watch.ElapsedNanos();
    h_ckpt_writeback_ns_->Observe(writeback_done_ns);
    h_ckpt_meta_flip_ns_->Observe(flip_done_ns - writeback_done_ns);
    h_ckpt_wal_rotate_ns_->Observe(total_ns - flip_done_ns);
    h_ckpt_total_ns_->Observe(total_ns);
  }
  return Status::OK();
}

// --- DurabilityHook ----------------------------------------------------

bool StorageEngine::IsPersistent(ObjectId obj) const {
  return persistent_ids_.count(obj.value) != 0;
}

Lsn StorageEngine::LogOp(uint64_t top, const std::string& txn_name,
                         const std::string& root_name, const Invocation& inv,
                         const Invocation* comp) {
  WalForceScope phase;
  std::lock_guard<std::mutex> guard(log_mutex_);
  if (begun_.insert(top).second) {
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = top;
    begin.txn_name = txn_name;
    if (!wal_.Append(std::move(begin)).ok()) {
      ++stats_.log_failures;
      if (m_log_failures_ != nullptr) m_log_failures_->Increment();
      begun_.erase(top);
      OODB_ERROR("wal begin append failed for txn " << top);
      return 0;
    }
  }
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = top;
  rec.root = root_name;
  rec.op = inv;
  if (comp != nullptr) {
    rec.has_comp = true;
    rec.comp = *comp;
  }
  Result<uint64_t> lsn = wal_.Append(std::move(rec));
  if (!lsn.ok()) {
    ++stats_.log_failures;
    if (m_log_failures_ != nullptr) m_log_failures_->Increment();
    OODB_ERROR("wal op append failed: " << lsn.status().ToString());
    return 0;
  }
  return *lsn;
}

Lsn StorageEngine::OnCommit(uint64_t top) {
  WalForceScope phase;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> guard(log_mutex_);
    if (begun_.erase(top) == 0) return 0;  // read-only: nothing logged
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.txn = top;
    Result<uint64_t> r = wal_.Append(std::move(rec));
    if (!r.ok()) {
      ++stats_.log_failures;
      if (m_log_failures_ != nullptr) m_log_failures_->Increment();
      OODB_ERROR("wal commit append failed: " << r.status().ToString());
      return 0;
    }
    lsn = *r;
  }
  Status forced = wal_.Force();
  if (!forced.ok()) {
    std::lock_guard<std::mutex> guard(log_mutex_);
    ++stats_.log_failures;
    if (m_log_failures_ != nullptr) m_log_failures_->Increment();
    OODB_ERROR("wal force failed: " << forced.ToString());
  }
  commits_since_ckpt_.fetch_add(1, std::memory_order_relaxed);
  return lsn;
}

void StorageEngine::OnAbort(uint64_t top) {
  std::lock_guard<std::mutex> guard(log_mutex_);
  if (begun_.erase(top) == 0) return;
  WalRecord rec;
  rec.type = WalRecordType::kAbort;
  rec.txn = top;
  if (!wal_.Append(std::move(rec)).ok()) {
    // Harmless for correctness: recovery will treat the transaction as
    // a loser and re-run the compensations it already ran.
    ++stats_.log_failures;
    if (m_log_failures_ != nullptr) m_log_failures_->Increment();
  }
}

void StorageEngine::MaybeCheckpoint(Database* db) {
  if (options_.checkpoint_every_commits == 0) return;
  if (commits_since_ckpt_.load(std::memory_order_relaxed) <
      options_.checkpoint_every_commits) {
    return;
  }
  // One checkpointer; everyone else just keeps running.
  std::unique_lock<std::mutex> only(ckpt_mutex_, std::try_to_lock);
  if (!only.owns_lock()) return;
  if (commits_since_ckpt_.load(std::memory_order_relaxed) <
      options_.checkpoint_every_commits) {
    return;
  }
  Status st = Checkpoint(db);
  if (!st.ok()) {
    OODB_ERROR("automatic checkpoint failed: " << st.ToString());
  }
}

// --- observability -----------------------------------------------------

void StorageEngine::AttachMetrics(MetricsRegistry* registry) {
  metrics_ = registry;
  wal_.AttachMetrics(registry);
  if (cache_ != nullptr) cache_->AttachMetrics(registry);
  if (registry == nullptr) {
    m_checkpoints_ = nullptr;
    m_log_failures_ = nullptr;
    h_ckpt_writeback_ns_ = nullptr;
    h_ckpt_meta_flip_ns_ = nullptr;
    h_ckpt_wal_rotate_ns_ = nullptr;
    h_ckpt_total_ns_ = nullptr;
    return;
  }
  m_checkpoints_ = registry->GetCounter("storage.checkpoints");
  m_log_failures_ = registry->GetCounter("storage.log_failures");
  h_ckpt_writeback_ns_ = registry->GetHistogram("storage.ckpt.writeback_ns");
  h_ckpt_meta_flip_ns_ = registry->GetHistogram("storage.ckpt.meta_flip_ns");
  h_ckpt_wal_rotate_ns_ =
      registry->GetHistogram("storage.ckpt.wal_rotate_ns");
  h_ckpt_total_ns_ = registry->GetHistogram("storage.ckpt.total_ns");
}

void StorageEngine::InstallSamplerProbes(MetricsSampler* sampler) {
  if (sampler == nullptr || metrics_ == nullptr) return;
  sampler->AddProbe("storage.stats", [this] { PublishStorageStats(); });
}

void StorageEngine::PublishStorageStats() {
  if (metrics_ == nullptr) return;
  // The monotone tallies (storage.cache.{hits,misses,evictions,
  // writebacks}, storage.log_failures) are counters fed inline — only
  // the point-in-time readings are published as gauges here.
  if (cache_ != nullptr) {
    metrics_->SetGauge("storage.cache.pinned",
                       static_cast<int64_t>(cache_->PinnedCount()));
    // Keep-last-value hot-page slots (same discipline as the
    // lock.hot.<k> gauges): slot i holds the i-th most-pinned page;
    // page -1 / pins 0 marks an empty slot.
    constexpr size_t kHotSlots = 4;
    const std::vector<PageCache::HotPage> hot = cache_->HotPages(kHotSlots);
    for (size_t i = 0; i < kHotSlots; ++i) {
      const std::string prefix =
          "storage.cache.hot." + std::to_string(i) + ".";
      if (i < hot.size()) {
        metrics_->SetGauge(prefix + "page",
                           static_cast<int64_t>(hot[i].page));
        metrics_->SetGauge(prefix + "pins",
                           static_cast<int64_t>(hot[i].pins));
      } else {
        metrics_->SetGauge(prefix + "page", -1);
        metrics_->SetGauge(prefix + "pins", 0);
      }
    }
  }
  if (allocator_ != nullptr) {
    metrics_->SetGauge("storage.pages.allocated",
                       static_cast<int64_t>(allocator_->AllocatedCount()));
  }
}

}  // namespace oodb
