#include "storage/recovery.h"

#include <sys/stat.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace oodb {

namespace {

/// Re-executes one logged invocation against its root as an ordinary
/// (unlogged — durability is not attached yet) serial transaction.
Status Apply(StorageEngine* engine, Database* db, const std::string& label,
             const std::string& root_name, const Invocation& inv) {
  ObjectId root = engine->RootId(root_name);
  if (!root.valid()) {
    return Status::Internal(
        "recovery references unknown root '" + root_name +
        "' — create/attach every persistent root before Recover()");
  }
  Status st = db->RunTransaction(label, [&](MethodContext& txn) {
    return txn.Call(root, inv);
  });
  if (!st.ok()) {
    return Status::Internal("recovery replay of " + root_name + "." +
                            inv.ToString() + " failed: " + st.ToString());
  }
  return Status::OK();
}

}  // namespace

void RecoveryStats::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("recovery.scanned_records",
                     static_cast<int64_t>(scanned_records));
  registry->SetGauge("recovery.torn_bytes",
                     static_cast<int64_t>(torn_bytes));
  registry->SetGauge("recovery.winners", static_cast<int64_t>(winners));
  registry->SetGauge("recovery.resolved", static_cast<int64_t>(resolved));
  registry->SetGauge("recovery.losers", static_cast<int64_t>(losers));
  registry->SetGauge("recovery.redo_records",
                     static_cast<int64_t>(redo_records));
  registry->SetGauge("recovery.undo_records",
                     static_cast<int64_t>(undo_records));
  registry->SetGauge("recovery.unundoable",
                     static_cast<int64_t>(unundoable));
}

Status Recover(StorageEngine* engine, Database* db, RecoveryStats* stats,
               RecoveryOptions options) {
  if (db->durability() != nullptr) {
    return Status::InvalidArgument(
        "detach durability before Recover (replay must not re-log)");
  }
  RecoveryStats local;
  RecoveryStats& st = stats != nullptr ? *stats : local;
  st = RecoveryStats{};

  const std::string path = engine->WalPath(engine->epoch());
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0, next_lsn = engine->next_lsn();
  Status scan = Wal::Scan(path, &records, &valid_bytes, &next_lsn);
  if (scan.code() == StatusCode::kNotFound) {
    // Crash between the meta flip and the new epoch file's creation:
    // a valid, empty epoch. Checkpoint to open the next one cleanly.
    OODB_RETURN_IF_ERROR(engine->Checkpoint(db));
    st.PublishTo(engine->metrics());
    return Status::OK();
  }
  OODB_RETURN_IF_ERROR(scan);
  st.scanned_records = records.size();
  struct ::stat file_info;
  if (::stat(path.c_str(), &file_info) == 0 &&
      static_cast<uint64_t>(file_info.st_size) >= valid_bytes + 16) {
    st.torn_bytes =
        static_cast<uint64_t>(file_info.st_size) - valid_bytes - 16;
  }

  // --- analysis --------------------------------------------------------
  std::unordered_set<uint64_t> committed, aborted, seen;
  std::unordered_set<uint64_t> undone;  ///< op LSNs a CLR already covers
  for (const WalRecord& rec : records) {
    seen.insert(rec.txn);
    switch (rec.type) {
      case WalRecordType::kCommit:
        committed.insert(rec.txn);
        break;
      case WalRecordType::kAbort:
        aborted.insert(rec.txn);
        break;
      case WalRecordType::kClr:
        undone.insert(rec.undoes_lsn);
        break;
      default:
        break;
    }
  }
  std::vector<uint64_t> losers;
  for (uint64_t txn : seen) {
    if (!committed.count(txn) && !aborted.count(txn)) losers.push_back(txn);
  }
  std::sort(losers.begin(), losers.end());
  st.winners = committed.size();
  st.resolved = aborted.size();
  st.losers = losers.size();

  // Re-open the scanned epoch for append (dropping the torn tail), so
  // undo progress (CLRs) and the losers' abort records land in it.
  OODB_RETURN_IF_ERROR(engine->wal().OpenForAppend(
      path, valid_bytes, next_lsn, engine->options().wal));

  // --- redo: repeat history -------------------------------------------
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kOp:
        OODB_RETURN_IF_ERROR(
            Apply(engine, db, "redo#" + std::to_string(rec.lsn), rec.root,
                  rec.op));
        ++st.redo_records;
        break;
      case WalRecordType::kClr:
        OODB_RETURN_IF_ERROR(
            Apply(engine, db, "redo-clr#" + std::to_string(rec.lsn),
                  rec.root, rec.comp));
        ++st.redo_records;
        break;
      default:
        break;
    }
  }

  // --- undo: compensate the losers, newest first ----------------------
  std::unordered_set<uint64_t> loser_set(losers.begin(), losers.end());
  std::vector<const WalRecord*> to_undo;
  for (const WalRecord& rec : records) {
    if (rec.type != WalRecordType::kOp || !loser_set.count(rec.txn)) {
      continue;
    }
    if (undone.count(rec.lsn)) continue;
    if (!rec.has_comp) {
      // The lint pass (undo-completeness) exists to make this
      // unreachable for persistent roots; if it happens, the op stays
      // applied and recovery reports it.
      ++st.unundoable;
      OODB_ERROR("loser op has no compensation, cannot undo: "
                 << rec.ToString());
      continue;
    }
    to_undo.push_back(&rec);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const WalRecord* a, const WalRecord* b) {
              return a->lsn > b->lsn;
            });
  for (const WalRecord* rec : to_undo) {
    OODB_RETURN_IF_ERROR(Apply(engine, db,
                               "undo#" + std::to_string(rec->lsn),
                               rec->root, rec->comp));
    WalRecord clr;
    clr.type = WalRecordType::kClr;
    clr.txn = rec->txn;
    clr.root = rec->root;
    clr.comp = rec->comp;
    clr.undoes_lsn = rec->lsn;
    OODB_RETURN_IF_ERROR(engine->wal().Append(std::move(clr)).status());
    ++st.undo_records;
    if (options.stop_after_clrs != 0 &&
        st.undo_records >= options.stop_after_clrs) {
      OODB_RETURN_IF_ERROR(engine->wal().Force());
      return Status::Aborted("recovery stopped by stop_after_clrs hook");
    }
  }
  for (uint64_t txn : losers) {
    WalRecord end;
    end.type = WalRecordType::kAbort;
    end.txn = txn;
    OODB_RETURN_IF_ERROR(engine->wal().Append(std::move(end)).status());
  }
  OODB_RETURN_IF_ERROR(engine->wal().Force());

  // --- fresh checkpoint: recovered state becomes the image ------------
  OODB_RETURN_IF_ERROR(engine->Checkpoint(db));
  st.PublishTo(engine->metrics());
  return Status::OK();
}

}  // namespace oodb
