#include "storage/recovery.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace oodb {

namespace {

constexpr const char* kRecoveryPhaseNames[kRecoveryPhaseCount] = {
    "scan", "analysis", "redo", "undo", "checkpoint", "finish",
};

/// Re-executes one logged invocation against its root as an ordinary
/// (unlogged — durability is not attached yet) serial transaction.
Status Apply(StorageEngine* engine, Database* db, const std::string& label,
             const std::string& root_name, const Invocation& inv) {
  ObjectId root = engine->RootId(root_name);
  if (!root.valid()) {
    return Status::Internal(
        "recovery references unknown root '" + root_name +
        "' — create/attach every persistent root before Recover()");
  }
  Status st = db->RunTransaction(label, [&](MethodContext& txn) {
    return txn.Call(root, inv);
  });
  if (!st.ok()) {
    return Status::Internal("recovery replay of " + root_name + "." +
                            inv.ToString() + " failed: " + st.ToString());
  }
  return Status::OK();
}

/// Publishes the live progress gauges the sampler folds into a series
/// during a long recovery. All no-ops when no registry is attached.
class RecoveryProgress {
 public:
  explicit RecoveryProgress(MetricsRegistry* registry)
      : registry_(registry) {}

  /// Enter `phase` with `target` records to process.
  void Enter(RecoveryPhase phase, uint64_t target) {
    done_ = 0;
    if (registry_ == nullptr) return;
    registry_->SetGauge("recovery.phase",
                        static_cast<int64_t>(static_cast<size_t>(phase)));
    registry_->SetGauge("recovery.progress", 0);
    registry_->SetGauge("recovery.target", static_cast<int64_t>(target));
  }

  void Step() {
    ++done_;
    if (registry_ != nullptr) {
      registry_->SetGauge("recovery.progress",
                          static_cast<int64_t>(done_));
    }
  }

 private:
  MetricsRegistry* const registry_;
  uint64_t done_ = 0;
};

/// Accumulates phase durations against one run-wide stopwatch and
/// finalizes the residual, so every exit path (including the
/// stop_after_clrs hook) leaves a timeline whose phases sum to the
/// measured wall time exactly.
class TimelineClock {
 public:
  explicit TimelineClock(RecoveryTimeline* timeline) : timeline_(timeline) {
    *timeline_ = RecoveryTimeline{};
  }

  void Credit(RecoveryPhase phase, uint64_t records) {
    const uint64_t now = run_.ElapsedNanos();
    const size_t i = static_cast<size_t>(phase);
    timeline_->phase_ns[i] += now - segment_start_;
    timeline_->phase_records[i] += records;
    segment_start_ = now;
  }

  /// Total = wall time; finish = residual over the measured phases.
  void Finalize() {
    timeline_->total_ns = run_.ElapsedNanos();
    uint64_t measured = 0;
    for (size_t i = 0; i < kRecoveryPhaseCount; ++i) {
      if (static_cast<RecoveryPhase>(i) == RecoveryPhase::kFinish) continue;
      measured += timeline_->phase_ns[i];
    }
    const size_t finish = static_cast<size_t>(RecoveryPhase::kFinish);
    timeline_->phase_ns[finish] =
        timeline_->total_ns > measured ? timeline_->total_ns - measured : 0;
  }

 private:
  RecoveryTimeline* const timeline_;
  Stopwatch run_;
  uint64_t segment_start_ = 0;
};

}  // namespace

const char* RecoveryPhaseName(RecoveryPhase phase) {
  return kRecoveryPhaseNames[static_cast<size_t>(phase)];
}

const char* RecoveryPhaseSuffix(RecoveryPhase phase) {
  return kRecoveryPhaseNames[static_cast<size_t>(phase)];
}

uint64_t RecoveryTimeline::SumNs() const {
  uint64_t sum = 0;
  for (uint64_t ns : phase_ns) sum += ns;
  return sum;
}

double RecoveryTimeline::Coverage() const {
  return total_ns == 0 ? 0.0 : double(SumNs()) / double(total_ns);
}

std::string RecoveryTimeline::Json() const {
  std::ostringstream os;
  char buf[64];
  os << "{\"format\": \"oodb-recovery-timeline-v1\", \"total_ns\": "
     << total_ns << ", \"coverage\": ";
  std::snprintf(buf, sizeof(buf), "%.4f", Coverage());
  os << buf << ", \"phases\": [";
  for (size_t i = 0; i < kRecoveryPhaseCount; ++i) {
    os << (i == 0 ? "" : ", ") << "{\"phase\": \"" << kRecoveryPhaseNames[i]
       << "\", \"ns\": " << phase_ns[i]
       << ", \"records\": " << phase_records[i];
    if (phase_ns[i] > 0 && phase_records[i] > 0) {
      std::snprintf(buf, sizeof(buf), "%.1f",
                    double(phase_records[i]) / (double(phase_ns[i]) * 1e-9));
      os << ", \"records_per_sec\": " << buf;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void RecoveryStats::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->SetGauge("recovery.scanned_records",
                     static_cast<int64_t>(scanned_records));
  registry->SetGauge("recovery.torn_bytes",
                     static_cast<int64_t>(torn_bytes));
  registry->SetGauge("recovery.winners", static_cast<int64_t>(winners));
  registry->SetGauge("recovery.resolved", static_cast<int64_t>(resolved));
  registry->SetGauge("recovery.losers", static_cast<int64_t>(losers));
  registry->SetGauge("recovery.redo_records",
                     static_cast<int64_t>(redo_records));
  registry->SetGauge("recovery.undo_records",
                     static_cast<int64_t>(undo_records));
  registry->SetGauge("recovery.unundoable",
                     static_cast<int64_t>(unundoable));
  for (size_t i = 0; i < kRecoveryPhaseCount; ++i) {
    registry->SetGauge(
        std::string("recovery.phase.") + kRecoveryPhaseNames[i] + "_ns",
        static_cast<int64_t>(timeline.phase_ns[i]));
  }
  registry->SetGauge("recovery.total_ns",
                     static_cast<int64_t>(timeline.total_ns));
}

Status Recover(StorageEngine* engine, Database* db, RecoveryStats* stats,
               RecoveryOptions options) {
  if (db->durability() != nullptr) {
    return Status::InvalidArgument(
        "detach durability before Recover (replay must not re-log)");
  }
  RecoveryStats local;
  RecoveryStats& st = stats != nullptr ? *stats : local;
  st = RecoveryStats{};
  TimelineClock clock(&st.timeline);
  RecoveryProgress progress(engine->metrics());

  // --- scan ------------------------------------------------------------
  progress.Enter(RecoveryPhase::kScan, 0);
  const std::string path = engine->WalPath(engine->epoch());
  WalScanResult scan_result;
  Status scan = Wal::ScanDetailed(path, &scan_result);
  if (scan.code() == StatusCode::kNotFound) {
    // Crash between the meta flip and the new epoch file's creation:
    // a valid, empty epoch. Checkpoint to open the next one cleanly.
    clock.Credit(RecoveryPhase::kScan, 0);
    progress.Enter(RecoveryPhase::kCheckpoint, 0);
    OODB_RETURN_IF_ERROR(engine->Checkpoint(db));
    clock.Credit(RecoveryPhase::kCheckpoint, 0);
    clock.Finalize();
    st.PublishTo(engine->metrics());
    return Status::OK();
  }
  OODB_RETURN_IF_ERROR(scan);
  const std::vector<WalScannedRecord>& records = scan_result.records;
  st.scanned_records = records.size();
  st.torn_bytes = scan_result.torn_bytes;
  clock.Credit(RecoveryPhase::kScan, records.size());

  // --- analysis --------------------------------------------------------
  progress.Enter(RecoveryPhase::kAnalysis, records.size());
  std::unordered_set<uint64_t> committed, aborted, seen;
  std::unordered_set<uint64_t> undone;  ///< op LSNs a CLR already covers
  for (const WalScannedRecord& scanned : records) {
    const WalRecord& rec = scanned.record;
    seen.insert(rec.txn);
    switch (rec.type) {
      case WalRecordType::kCommit:
        committed.insert(rec.txn);
        break;
      case WalRecordType::kAbort:
        aborted.insert(rec.txn);
        break;
      case WalRecordType::kClr:
        undone.insert(rec.undoes_lsn);
        break;
      default:
        break;
    }
    progress.Step();
  }
  std::vector<uint64_t> losers;
  for (uint64_t txn : seen) {
    if (!committed.count(txn) && !aborted.count(txn)) losers.push_back(txn);
  }
  std::sort(losers.begin(), losers.end());
  st.winners = committed.size();
  st.resolved = aborted.size();
  st.losers = losers.size();
  clock.Credit(RecoveryPhase::kAnalysis, records.size());

  // Re-open the scanned epoch for append (dropping the torn tail), so
  // undo progress (CLRs) and the losers' abort records land in it.
  OODB_RETURN_IF_ERROR(engine->wal().OpenForAppend(
      path, scan_result.valid_bytes, scan_result.next_lsn,
      engine->options().wal));

  // --- redo: repeat history -------------------------------------------
  progress.Enter(RecoveryPhase::kRedo, records.size());
  for (const WalScannedRecord& scanned : records) {
    const WalRecord& rec = scanned.record;
    switch (rec.type) {
      case WalRecordType::kOp:
        OODB_RETURN_IF_ERROR(
            Apply(engine, db, "redo#" + std::to_string(rec.lsn), rec.root,
                  rec.op));
        ++st.redo_records;
        break;
      case WalRecordType::kClr:
        OODB_RETURN_IF_ERROR(
            Apply(engine, db, "redo-clr#" + std::to_string(rec.lsn),
                  rec.root, rec.comp));
        ++st.redo_records;
        break;
      default:
        break;
    }
    progress.Step();
  }
  clock.Credit(RecoveryPhase::kRedo, st.redo_records);

  // --- undo: compensate the losers, newest first ----------------------
  std::unordered_set<uint64_t> loser_set(losers.begin(), losers.end());
  std::vector<const WalRecord*> to_undo;
  for (const WalScannedRecord& scanned : records) {
    const WalRecord& rec = scanned.record;
    if (rec.type != WalRecordType::kOp || !loser_set.count(rec.txn)) {
      continue;
    }
    if (undone.count(rec.lsn)) continue;
    if (!rec.has_comp) {
      // The lint pass (undo-completeness) exists to make this
      // unreachable for persistent roots; if it happens, the op stays
      // applied and recovery reports it.
      ++st.unundoable;
      OODB_ERROR("loser op has no compensation, cannot undo: "
                 << rec.ToString());
      continue;
    }
    to_undo.push_back(&rec);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const WalRecord* a, const WalRecord* b) {
              return a->lsn > b->lsn;
            });
  progress.Enter(RecoveryPhase::kUndo, to_undo.size());
  for (const WalRecord* rec : to_undo) {
    OODB_RETURN_IF_ERROR(Apply(engine, db,
                               "undo#" + std::to_string(rec->lsn),
                               rec->root, rec->comp));
    WalRecord clr;
    clr.type = WalRecordType::kClr;
    clr.txn = rec->txn;
    clr.root = rec->root;
    clr.comp = rec->comp;
    clr.undoes_lsn = rec->lsn;
    OODB_RETURN_IF_ERROR(engine->wal().Append(std::move(clr)).status());
    ++st.undo_records;
    progress.Step();
    if (options.stop_after_clrs != 0 &&
        st.undo_records >= options.stop_after_clrs) {
      OODB_RETURN_IF_ERROR(engine->wal().Force());
      clock.Credit(RecoveryPhase::kUndo, st.undo_records);
      clock.Finalize();
      st.PublishTo(engine->metrics());
      return Status::Aborted("recovery stopped by stop_after_clrs hook");
    }
  }
  clock.Credit(RecoveryPhase::kUndo, st.undo_records);
  for (uint64_t txn : losers) {
    WalRecord end;
    end.type = WalRecordType::kAbort;
    end.txn = txn;
    OODB_RETURN_IF_ERROR(engine->wal().Append(std::move(end)).status());
  }
  OODB_RETURN_IF_ERROR(engine->wal().Force());

  // --- fresh checkpoint: recovered state becomes the image ------------
  progress.Enter(RecoveryPhase::kCheckpoint, 0);
  OODB_RETURN_IF_ERROR(engine->Checkpoint(db));
  clock.Credit(RecoveryPhase::kCheckpoint, 0);
  clock.Finalize();
  st.PublishTo(engine->metrics());
  return Status::OK();
}

}  // namespace oodb
