// PagedFile: fixed-size-page random access over one POSIX file.
//
// The zero layer of the persistent store. Pages are kPageSize bytes,
// addressed by page number; reads of never-written pages return zero
// bytes (the file is grown on demand). All durability flows through
// Sync(): a crash after WritePage but before Sync may persist any
// subset of the written bytes, which is exactly the failure model the
// meta ping-pong slots and the WAL CRCs are built to survive.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace oodb {

inline constexpr size_t kPageSize = 4096;
using PageNo = uint64_t;

class PagedFile {
 public:
  PagedFile() = default;
  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Opens (creating if absent) `path` for read/write.
  Status Open(const std::string& path);
  void Close();
  bool IsOpen() const { return fd_ >= 0; }

  /// Reads page `page` into `out` (exactly kPageSize bytes). Pages past
  /// the current end of file read as all zeroes.
  Status ReadPage(PageNo page, char* out) const;

  /// Writes exactly kPageSize bytes at page `page`, growing the file as
  /// needed. Not durable until Sync().
  Status WritePage(PageNo page, const char* data);

  /// fsync. Returns the elapsed nanoseconds via `ns` when non-null.
  Status Sync(uint64_t* ns = nullptr);

  /// Pages currently backed by the file (size / kPageSize, rounded up).
  uint64_t PageCount() const;

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace oodb
