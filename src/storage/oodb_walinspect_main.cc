// oodb_walinspect: decode wal.<N> epoch files (see storage/walinspect.h).
//
//   oodb_walinspect [--json] [--stats] [--txn=N] [--object=NAME]
//                   [--kind=begin|op|commit|abort|clr] [--from=LSN]
//                   [--to=LSN] [--label=NAME] <wal-file>...
//
// Default output is the text record listing; --json renders the machine
// report (records + torn tail + per-kind stats); --stats renders the
// pg_waldump-style per-kind table. Filters compose. --label overrides
// the file name printed in the output (goldens use a stable label so
// the report does not depend on the checkout path).
//
// Output is byte-deterministic for fixed file bytes. Exit status:
// 0 = every file decoded (a torn tail is a report, not an error),
// 2 = usage error or a file that is not a WAL.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "storage/walinspect.h"

namespace {

bool ParseU64(const std::string& arg, const char* prefix, uint64_t* out) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) != 0) return false;
  *out = std::strtoull(arg.c_str() + p.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  oodb::WalInspectOptions options;
  bool json = false, stats = false;
  std::string label;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t v = 0;
    if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (ParseU64(arg, "--txn=", &v)) {
      options.has_txn = true;
      options.txn = v;
    } else if (arg.rfind("--object=", 0) == 0) {
      options.object = arg.substr(9);
    } else if (arg.rfind("--kind=", 0) == 0) {
      options.kind = arg.substr(7);
    } else if (ParseU64(arg, "--from=", &v)) {
      options.from_lsn = v;
    } else if (ParseU64(arg, "--to=", &v)) {
      options.to_lsn = v;
    } else if (arg.rfind("--label=", 0) == 0) {
      label = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: oodb_walinspect [--json] [--stats] [--txn=N]\n"
          "                       [--object=NAME] [--kind=KIND]\n"
          "                       [--from=LSN] [--to=LSN] [--label=NAME]\n"
          "                       <wal-file>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "oodb_walinspect: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "oodb_walinspect: no wal files given\n");
    return 2;
  }
  for (const std::string& file : files) {
    oodb::WalScanResult scan;
    oodb::Status st = oodb::Wal::ScanDetailed(file, &scan);
    if (!st.ok()) {
      std::fprintf(stderr, "oodb_walinspect: %s\n", st.ToString().c_str());
      return 2;
    }
    const std::string& name = label.empty() ? file : label;
    std::string out;
    if (json) {
      out = oodb::RenderWalJson(name, scan, options);
    } else if (stats) {
      out = oodb::RenderWalStats(name, scan, options);
    } else {
      out = oodb::RenderWalText(name, scan, options);
    }
    std::fwrite(out.data(), 1, out.size(), stdout);
  }
  return 0;
}
