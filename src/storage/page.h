// PageState: the zero layer. "In database systems exists a common object
// type which methods call no other actions: the page."
//
// A page is a fixed-capacity key/value container. Its methods (read,
// write, erase, scan) are primitive actions: they call nothing, execute
// atomically under the object latch, and get an Axiom 1 timestamp. The
// page commutativity is the classical one — only read/read commutes —
// which is exactly why the paper's leaf-level semantics win concurrency.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "cc/object_state.h"
#include "util/result.h"

namespace oodb {

/// In-memory slotted page holding up to `capacity` key/value entries.
class PageState : public ObjectState {
 public:
  explicit PageState(size_t capacity = 128) : capacity_(capacity) {}

  /// Value stored under `key`, or NotFound.
  Result<std::string> Read(const std::string& key) const;

  /// Inserts or overwrites. Capacity error when the page is full and the
  /// key is new.
  Status Write(const std::string& key, std::string value);

  /// Removes `key`; NotFound when absent.
  Status Erase(const std::string& key);

  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  bool Full() const { return entries_.size() >= capacity_; }

  /// All keys in order.
  std::vector<std::string> Keys() const;

  /// All entries in key order (for scans and splits).
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Removes and returns the upper half of the entries (for splits).
  std::map<std::string, std::string> SplitUpperHalf();

 private:
  std::map<std::string, std::string> entries_;
  size_t capacity_;
};

}  // namespace oodb
