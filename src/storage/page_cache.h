// PageCache: the buffer manager between the engine and the paged file.
//
// A fixed set of frames caches pages of one PagedFile. Callers pin a
// page to get a stable frame pointer, mark it dirty if they wrote, and
// unpin when done; unpinned frames are eligible for LRU eviction, and
// evicting a dirty frame writes it back first. FlushAll force-writes
// every dirty frame (checkpoint); nothing here calls fsync — the engine
// decides when the file is synced.
//
// Thread-safe; pins on distinct pages proceed concurrently once framed,
// but frame content access is the caller's problem (the engine only
// touches frames single-threaded, under the checkpoint quiesce).

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/paged_file.h"
#include "util/result.h"

namespace oodb {

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  ///< dirty pages written (evictions + flushes)
};

class PageCache {
 public:
  /// Caches pages of `file` (not owned) in `frames` frames.
  PageCache(PagedFile* file, size_t frames);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins `page` and returns its frame (kPageSize bytes, stable until
  /// the matching Unpin). Loads from the file on a miss, evicting the
  /// least recently used unpinned frame — Capacity when every frame is
  /// pinned. Pins nest (a pin count per frame).
  Result<char*> Pin(PageNo page);

  /// Releases one pin of `page`; `dirty` marks the frame as modified.
  /// Unpinning a page that is not pinned is an internal error (a
  /// pin-leak bug on the caller's side), reported loudly.
  Status Unpin(PageNo page, bool dirty);

  /// Writes every dirty frame back to the file (pinned or not — the
  /// checkpoint runs quiesced) and clears the dirty bits.
  Status FlushAll();

  /// Drops every unpinned frame without writing (recovery restart path
  /// after the file was rewritten underneath). Fails if dirty frames
  /// would be lost.
  Status InvalidateClean();

  /// Total pins currently outstanding (0 = nothing leaked).
  size_t PinnedCount() const;

  size_t FrameCount() const { return frames_.size(); }
  PageCacheStats stats() const;

 private:
  struct Frame {
    PageNo page = 0;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    std::vector<char> data;
    /// Position in lru_ when pins == 0 && valid.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Frees a frame to hold a new page. Requires mutex_ held.
  Result<size_t> EvictLocked();

  PagedFile* file_;
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<PageNo, size_t> map_;  ///< page -> frame index
  std::list<size_t> lru_;                   ///< unpinned frames, LRU first
  std::vector<size_t> free_;                ///< never-used frame indexes
  PageCacheStats stats_;
};

}  // namespace oodb
