// PageCache: the buffer manager between the engine and the paged file.
//
// A fixed set of frames caches pages of one PagedFile. Callers pin a
// page to get a stable frame pointer, mark it dirty if they wrote, and
// unpin when done; unpinned frames are eligible for LRU eviction, and
// evicting a dirty frame writes it back first. FlushAll force-writes
// every dirty frame (checkpoint); nothing here calls fsync — the engine
// decides when the file is synced.
//
// Thread-safe; pins on distinct pages proceed concurrently once framed,
// but frame content access is the caller's problem (the engine only
// touches frames single-threaded, under the checkpoint quiesce).

#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/paged_file.h"
#include "util/result.h"

namespace oodb {

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;  ///< dirty pages written (evictions + flushes)
};

class PageCache {
 public:
  /// Caches pages of `file` (not owned) in `frames` frames.
  PageCache(PagedFile* file, size_t frames);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins `page` and returns its frame (kPageSize bytes, stable until
  /// the matching Unpin). Loads from the file on a miss, evicting the
  /// least recently used unpinned frame — Capacity when every frame is
  /// pinned. Pins nest (a pin count per frame).
  Result<char*> Pin(PageNo page);

  /// Releases one pin of `page`; `dirty` marks the frame as modified.
  /// Unpinning a page that is not pinned is an internal error (a
  /// pin-leak bug on the caller's side), reported loudly.
  Status Unpin(PageNo page, bool dirty);

  /// Writes every dirty frame back to the file (pinned or not — the
  /// checkpoint runs quiesced) and clears the dirty bits.
  Status FlushAll();

  /// Drops every unpinned frame without writing (recovery restart path
  /// after the file was rewritten underneath). Fails if dirty frames
  /// would be lost.
  Status InvalidateClean();

  /// Total pins currently outstanding (0 = nothing leaked).
  size_t PinnedCount() const;

  size_t FrameCount() const { return frames_.size(); }
  PageCacheStats stats() const;

  /// Registers the cache's introspection metrics and starts feeding
  /// them: counters storage.cache.{hits,misses,evictions,writebacks}
  /// (seeded with the already-accumulated stats, so counter values and
  /// stats() agree), histogram storage.cache.pin_ns (outermost
  /// pin-to-unpin span per frame), histogram
  /// storage.cache.eviction_age_ns (how long an evicted frame sat idle
  /// in the LRU), and the per-page pin tally behind HotPages(). The
  /// detached cache skips all of it (null-pointer tests only).
  void AttachMetrics(MetricsRegistry* registry);

  struct HotPage {
    PageNo page = 0;
    uint64_t pins = 0;  ///< lifetime pins since AttachMetrics
  };
  /// The k most-pinned pages (lifetime tally, count desc then page
  /// asc). Empty until AttachMetrics — the tally only runs attached.
  std::vector<HotPage> HotPages(size_t k) const;

 private:
  struct Frame {
    PageNo page = 0;
    bool valid = false;
    bool dirty = false;
    uint32_t pins = 0;
    std::vector<char> data;
    /// Position in lru_ when pins == 0 && valid.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
    /// Metrics timestamps (only maintained while attached): when the
    /// outermost pin was taken, and when the frame last went idle.
    std::chrono::steady_clock::time_point pinned_at{};
    std::chrono::steady_clock::time_point idle_since{};
  };

  /// Frees a frame to hold a new page. Requires mutex_ held.
  Result<size_t> EvictLocked();

  PagedFile* file_;
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<PageNo, size_t> map_;  ///< page -> frame index
  std::list<size_t> lru_;                   ///< unpinned frames, LRU first
  std::vector<size_t> free_;                ///< never-used frame indexes
  PageCacheStats stats_;

  /// Introspection (null until AttachMetrics).
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_writebacks_ = nullptr;
  HistogramMetric* h_pin_ns_ = nullptr;
  HistogramMetric* h_evict_age_ns_ = nullptr;
  std::unordered_map<PageNo, uint64_t> pin_tally_;  ///< lifetime pins/page
};

}  // namespace oodb
