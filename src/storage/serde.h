// Binary (de)serialization for durable state: WAL record payloads,
// checkpoint blobs, and the page-store metadata.
//
// The format is deliberately dumb — little-endian fixed-width integers
// and length-prefixed byte strings — so a blob written by one build is
// readable by any other and a torn tail is detected by running off the
// end (every Read* reports failure instead of faulting).

#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "model/invocation.h"
#include "model/value.h"

namespace oodb {

/// Appends fixed-width little-endian scalars and length-prefixed strings
/// to a byte buffer.
class BlobWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(char((v >> (8 * i)) & 0xff));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(char((v >> (8 * i)) & 0xff));
  }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  /// Tagged Value: 0 none, 1 int, 2 string.
  void Val(const Value& v) {
    if (v.IsInt()) {
      U8(1);
      U64(static_cast<uint64_t>(v.AsInt()));
    } else if (v.IsString()) {
      U8(2);
      Str(v.AsString());
    } else {
      U8(0);
    }
  }

  void Invoke(const Invocation& inv) {
    Str(inv.method);
    U32(static_cast<uint32_t>(inv.params.size()));
    for (const Value& v : inv.params) Val(v);
  }

  const std::string& blob() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads a BlobWriter buffer back. Every reader returns false on
/// truncated or malformed input and leaves the cursor unspecified; the
/// caller treats that as a torn record.
class BlobReader {
 public:
  explicit BlobReader(const std::string& blob) : blob_(blob) {}
  BlobReader(const char* data, size_t size) : blob_(data, size) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > blob_.size()) return false;
    *v = static_cast<uint8_t>(blob_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > blob_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= uint32_t(uint8_t(blob_[pos_++])) << (8 * i);
    }
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > blob_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= uint64_t(uint8_t(blob_[pos_++])) << (8 * i);
    }
    return true;
  }

  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n) || pos_ + n > blob_.size()) return false;
    s->assign(blob_, pos_, n);
    pos_ += n;
    return true;
  }

  bool Val(Value* v) {
    uint8_t tag;
    if (!U8(&tag)) return false;
    switch (tag) {
      case 0:
        *v = Value();
        return true;
      case 1: {
        uint64_t i;
        if (!U64(&i)) return false;
        *v = Value(static_cast<int64_t>(i));
        return true;
      }
      case 2: {
        std::string s;
        if (!Str(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }

  bool Invoke(Invocation* inv) {
    uint32_t n;
    if (!Str(&inv->method) || !U32(&n)) return false;
    inv->params.clear();
    inv->params.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Value v;
      if (!Val(&v)) return false;
      inv->params.push_back(std::move(v));
    }
    return true;
  }

  bool Done() const { return pos_ == blob_.size(); }
  size_t pos() const { return pos_; }

 private:
  std::string blob_;
  size_t pos_ = 0;
};

/// CRC-32 (the zlib polynomial, bit-reflected) over `data`. Guards every
/// WAL record and the page-store meta slots against torn writes.
uint32_t Crc32(const char* data, size_t size);
inline uint32_t Crc32(const std::string& s) {
  return Crc32(s.data(), s.size());
}

}  // namespace oodb
