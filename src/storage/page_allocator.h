// PageAllocator: free-space bitmap over the data pages of one store.
//
// Allocation state is part of the engine's meta slot (serialized with
// the rest of the checkpoint pointer set and made durable by the same
// atomic meta write), so a crash between allocating pages and
// committing the checkpoint that uses them simply forgets the
// allocations — the shadow pages written for an unfinished checkpoint
// are reclaimed for free.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace oodb {

using PageNo = uint64_t;

class PageAllocator {
 public:
  /// Manages pages [first_page, first_page + max_pages).
  explicit PageAllocator(PageNo first_page, uint64_t max_pages);

  /// Lowest free page, marked used; Capacity when the bitmap is full.
  Result<PageNo> Allocate();

  /// Returns `page` to the free pool. Double frees are internal errors.
  Status Free(PageNo page);

  bool IsAllocated(PageNo page) const;
  uint64_t AllocatedCount() const;
  uint64_t max_pages() const { return max_pages_; }

  /// The raw bitmap for the meta slot (max_pages / 8 bytes).
  std::string SerializeBitmap() const;

  /// Replaces the bitmap; `bits` shorter than the bitmap leaves the
  /// tail free. Returns InvalidArgument when longer.
  Status LoadBitmap(const std::string& bits);

 private:
  PageNo first_page_;
  uint64_t max_pages_;
  std::vector<uint8_t> bitmap_;
  PageNo scan_hint_ = 0;  ///< first possibly-free bit
};

}  // namespace oodb
