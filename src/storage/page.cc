#include "storage/page.h"

namespace oodb {

Result<std::string> PageState::Read(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("key '" + key + "' not on page");
  }
  return it->second;
}

Status PageState::Write(const std::string& key, std::string value) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = std::move(value);
    return Status::OK();
  }
  if (Full()) {
    return Status::Capacity("page full (" + std::to_string(capacity_) +
                            " entries)");
  }
  entries_.emplace(key, std::move(value));
  return Status::OK();
}

Status PageState::Erase(const std::string& key) {
  if (entries_.erase(key) == 0) {
    return Status::NotFound("key '" + key + "' not on page");
  }
  return Status::OK();
}

std::vector<std::string> PageState::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, v] : entries_) {
    (void)v;
    keys.push_back(k);
  }
  return keys;
}

std::map<std::string, std::string> PageState::SplitUpperHalf() {
  std::map<std::string, std::string> upper;
  size_t half = entries_.size() / 2;
  auto it = entries_.begin();
  std::advance(it, half);
  upper.insert(it, entries_.end());
  entries_.erase(it, entries_.end());
  return upper;
}

}  // namespace oodb
