#include "storage/walinspect.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace oodb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

size_t KindIndex(WalRecordType type) {
  return static_cast<size_t>(type) - 1;
}

}  // namespace

bool WalInspectMatch(const WalRecord& rec, const WalInspectOptions& options) {
  if (options.has_txn && rec.txn != options.txn) return false;
  if (!options.object.empty() && rec.root != options.object) return false;
  if (!options.kind.empty() && options.kind != WalRecordTypeName(rec.type)) {
    return false;
  }
  return rec.lsn >= options.from_lsn && rec.lsn <= options.to_lsn;
}

WalInspectStats ComputeWalStats(const WalScanResult& scan,
                                const WalInspectOptions& options) {
  WalInspectStats stats;
  for (const WalScannedRecord& rec : scan.records) {
    if (!WalInspectMatch(rec.record, options)) continue;
    WalInspectStats::Row& row = stats.kinds[KindIndex(rec.record.type)];
    row.count += 1;
    row.bytes += rec.frame_bytes;
    stats.total.count += 1;
    stats.total.bytes += rec.frame_bytes;
  }
  return stats;
}

std::string WalRecordLine(const WalScannedRecord& rec) {
  return rec.record.ToString() + " off=" + std::to_string(rec.offset) +
         " len=" + std::to_string(rec.frame_bytes);
}

std::string WalRecordJson(const WalScannedRecord& rec) {
  const WalRecord& r = rec.record;
  std::ostringstream os;
  os << "{\"lsn\": " << r.lsn << ", \"kind\": \"" << WalRecordTypeName(r.type)
     << "\", \"txn\": " << r.txn << ", \"off\": " << rec.offset
     << ", \"len\": " << rec.frame_bytes;
  switch (r.type) {
    case WalRecordType::kBegin:
      os << ", \"name\": \"" << JsonEscape(r.txn_name) << "\"";
      break;
    case WalRecordType::kOp:
      os << ", \"object\": \"" << JsonEscape(r.root) << "\""
         << ", \"invocation\": \"" << JsonEscape(r.op.ToString()) << "\"";
      if (r.has_comp) {
        os << ", \"compensation\": \"" << JsonEscape(r.comp.ToString())
           << "\"";
      }
      break;
    case WalRecordType::kClr:
      os << ", \"object\": \"" << JsonEscape(r.root) << "\""
         << ", \"compensation\": \"" << JsonEscape(r.comp.ToString()) << "\""
         << ", \"undoes_lsn\": " << r.undoes_lsn;
      break;
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
  }
  os << "}";
  return os.str();
}

namespace {

std::string TornLine(const WalScanResult& scan) {
  if (scan.torn == WalTornKind::kNone) return "tail: clean";
  return "torn tail: " + std::to_string(scan.torn_bytes) +
         " bytes at offset " + std::to_string(scan.torn_offset) + " (" +
         WalTornKindName(scan.torn) + ")";
}

}  // namespace

std::string RenderWalText(const std::string& label, const WalScanResult& scan,
                          const WalInspectOptions& options) {
  std::ostringstream os;
  os << "wal " << label << ": first_lsn=" << scan.first_lsn
     << " intact_records=" << scan.records.size()
     << " valid_bytes=" << scan.valid_bytes
     << " file_bytes=" << scan.file_bytes << "\n";
  size_t shown = 0;
  for (const WalScannedRecord& rec : scan.records) {
    if (!WalInspectMatch(rec.record, options)) continue;
    os << WalRecordLine(rec) << "\n";
    ++shown;
  }
  os << TornLine(scan) << "\n";
  os << "shown: " << shown << " of " << scan.records.size() << " records\n";
  return os.str();
}

std::string RenderWalStats(const std::string& label,
                           const WalScanResult& scan,
                           const WalInspectOptions& options) {
  const WalInspectStats stats = ComputeWalStats(scan, options);
  std::ostringstream os;
  os << "wal " << label << " stats\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-8s %8s %8s %12s %8s %8s\n", "kind",
                "count", "count%", "bytes", "bytes%", "avg");
  os << buf;
  auto row = [&](const char* name, const WalInspectStats::Row& r) {
    const double count_share =
        stats.total.count > 0 ? 100.0 * double(r.count) / double(stats.total.count)
                              : 0.0;
    const double byte_share =
        stats.total.bytes > 0 ? 100.0 * double(r.bytes) / double(stats.total.bytes)
                              : 0.0;
    const double avg = r.count > 0 ? double(r.bytes) / double(r.count) : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "%-8s %8" PRIu64 " %8.2f %12" PRIu64 " %8.2f %8.1f\n",
                  name, r.count, count_share, r.bytes, byte_share, avg);
    os << buf;
  };
  for (size_t i = 0; i < 5; ++i) {
    row(WalRecordTypeName(static_cast<WalRecordType>(i + 1)), stats.kinds[i]);
  }
  row("total", stats.total);
  os << TornLine(scan) << "\n";
  return os.str();
}

std::string RenderWalJson(const std::string& label, const WalScanResult& scan,
                          const WalInspectOptions& options) {
  const WalInspectStats stats = ComputeWalStats(scan, options);
  std::ostringstream os;
  os << "{\n  \"format\": \"oodb-walinspect-v1\",\n";
  os << "  \"wal\": \"" << JsonEscape(label) << "\",\n";
  os << "  \"first_lsn\": " << scan.first_lsn << ",\n";
  os << "  \"next_lsn\": " << scan.next_lsn << ",\n";
  os << "  \"file_bytes\": " << scan.file_bytes << ",\n";
  os << "  \"valid_bytes\": " << scan.valid_bytes << ",\n";
  os << "  \"intact_records\": " << scan.records.size() << ",\n";
  os << "  \"records\": [";
  size_t shown = 0;
  for (const WalScannedRecord& rec : scan.records) {
    if (!WalInspectMatch(rec.record, options)) continue;
    os << (shown == 0 ? "" : ",") << "\n    " << WalRecordJson(rec);
    ++shown;
  }
  os << (shown == 0 ? "" : "\n  ") << "],\n";
  os << "  \"shown\": " << shown << ",\n";
  os << "  \"torn\": {\"kind\": \"" << WalTornKindName(scan.torn)
     << "\", \"offset\": " << scan.torn_offset
     << ", \"bytes\": " << scan.torn_bytes << "},\n";
  os << "  \"stats\": {";
  for (size_t i = 0; i < 5; ++i) {
    os << "\n    \"" << WalRecordTypeName(static_cast<WalRecordType>(i + 1))
       << "\": {\"count\": " << stats.kinds[i].count
       << ", \"bytes\": " << stats.kinds[i].bytes << "},";
  }
  os << "\n    \"total\": {\"count\": " << stats.total.count
     << ", \"bytes\": " << stats.total.bytes << "}\n  }\n}\n";
  return os.str();
}

}  // namespace oodb
