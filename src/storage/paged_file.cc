#include "storage/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace oodb {

PagedFile::~PagedFile() { Close(); }

Status PagedFile::Open(const std::string& path) {
  Close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("open '" + path +
                            "' failed: " + std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

void PagedFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status PagedFile::ReadPage(PageNo page, char* out) const {
  std::memset(out, 0, kPageSize);
  ssize_t n = ::pread(fd_, out, kPageSize,
                      static_cast<off_t>(page * kPageSize));
  if (n < 0) {
    return Status::Internal("pread page " + std::to_string(page) +
                            " failed: " + std::strerror(errno));
  }
  // Short reads at EOF keep their zero fill (never-written tail).
  return Status::OK();
}

Status PagedFile::WritePage(PageNo page, const char* data) {
  ssize_t n = ::pwrite(fd_, data, kPageSize,
                       static_cast<off_t>(page * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::Internal("pwrite page " + std::to_string(page) +
                            " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Status PagedFile::Sync(uint64_t* ns) {
  auto start = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("fsync failed: ") +
                            std::strerror(errno));
  }
  if (ns != nullptr) {
    *ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return Status::OK();
}

uint64_t PagedFile::PageCount() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return (static_cast<uint64_t>(st.st_size) + kPageSize - 1) / kPageSize;
}

}  // namespace oodb
