// WAL inspection: decode an epoch file into human/machine-readable
// form, the way pg_waldump makes Postgres's WAL a debugging surface.
//
// The decoder is Wal::ScanDetailed — the exact scan recovery runs — so
// the inspector and recovery can never disagree about which records are
// intact or where the torn tail starts. Everything here is a pure
// function of the file bytes: two runs over the same file render
// byte-identical text and JSON (the CI golden gate's contract).
//
// Three views:
//
//   * record listing (text or JSON lines): per-record LSN, kind, txn,
//     byte offset/length, object, invocation, and the registered
//     compensation, with --txn/--object/--kind/--from/--to filters;
//   * --stats: per-kind record counts, byte totals, and shares, plus a
//     totals row that equals the sum of the listed records;
//   * the torn-tail report: offset, byte count, and why the scan
//     stopped (short-header / short-payload / bad-crc / bad-payload) —
//     an explicit verdict instead of silent truncation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/wal.h"

namespace oodb {

/// Record filters; default-constructed = keep everything.
struct WalInspectOptions {
  bool has_txn = false;
  uint64_t txn = 0;          ///< keep records of this transaction only
  std::string object;        ///< keep records naming this root only
  std::string kind;          ///< keep this record kind only (by name)
  uint64_t from_lsn = 0;     ///< keep lsn >= from_lsn
  uint64_t to_lsn = UINT64_MAX;  ///< keep lsn <= to_lsn
};

/// Whether `rec` survives `options`' filters.
bool WalInspectMatch(const WalRecord& rec, const WalInspectOptions& options);

/// Per-kind tallies over the (filtered) records.
struct WalInspectStats {
  struct Row {
    uint64_t count = 0;
    uint64_t bytes = 0;  ///< frame bytes (8-byte frame header + payload)
  };
  Row kinds[5];  ///< indexed by WalRecordType - 1
  Row total;     ///< sum over the kind rows, by construction
};

WalInspectStats ComputeWalStats(const WalScanResult& scan,
                                const WalInspectOptions& options);

/// One record as its listing line (no trailing newline):
/// `lsn=7 op txn=3 off=50 len=61 D.insert("k", "v") / undo remove("k")`.
std::string WalRecordLine(const WalScannedRecord& rec);

/// One record as a flat JSON object.
std::string WalRecordJson(const WalScannedRecord& rec);

/// The full text report: header line, one line per matching record,
/// the torn-tail verdict, and a one-line summary. `label` names the
/// file in the output (pass the path, or a stable name for goldens).
std::string RenderWalText(const std::string& label, const WalScanResult& scan,
                          const WalInspectOptions& options);

/// The full JSON report ("oodb-walinspect-v1"): header fields, the
/// matching records, the torn-tail object, and the per-kind stats.
std::string RenderWalJson(const std::string& label, const WalScanResult& scan,
                          const WalInspectOptions& options);

/// The pg_waldump-style stats table (text).
std::string RenderWalStats(const std::string& label,
                           const WalScanResult& scan,
                           const WalInspectOptions& options);

}  // namespace oodb
