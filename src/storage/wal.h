// Write-ahead log of object-level *logical* operations.
//
// Following Malta & Martinez's recoverable-ADT rule, records describe
// invocations on persistent root objects — insert("k","v") on directory
// "D" — never page images. Redo re-executes the invocation through the
// real method implementation; undo executes the compensating invocation
// the method registered (the same one Database::CompensateChildren runs
// on a live abort). Logging at the object level is what lets concurrent
// commuting writers share pages without forcing each other's undo.
//
// One Wal instance is one *epoch*: the records since the checkpoint
// that opened it. A checkpoint writes a consistent image, flips the
// store meta to a new epoch, and starts a fresh file; LSNs keep
// increasing across epochs (the meta carries the next LSN forward).
//
// On-disk layout: a 16-byte header (magic + first LSN), then records of
// the form [u32 payload_len][u32 crc32(payload)][payload]. A scan stops
// at the first short or corrupt record — the torn tail a crash leaves —
// and everything before it is trusted.
//
// Crash injection: the options can arm a SIGKILL that fires immediately
// after the Nth record (or the record crossing a byte offset) reaches
// the file, which is how the crash harness kills a child mid-workload
// at a reproducible point.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "model/invocation.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace oodb {

enum class WalRecordType : uint8_t {
  kBegin = 1,   ///< top-level transaction started
  kOp = 2,      ///< completed mutating action on a persistent root
  kCommit = 3,  ///< top-level commit (the log is forced with it)
  kAbort = 4,   ///< top-level abort after its compensations ran
  kClr = 5,     ///< compensation applied by recovery (undo progress)
};

const char* WalRecordTypeName(WalRecordType type);

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  uint64_t lsn = 0;        ///< assigned by Append
  uint64_t txn = 0;        ///< top-level transaction id (epoch-local)
  std::string txn_name;    ///< kBegin only (diagnostics)
  std::string root;        ///< persistent root name (kOp / kClr)
  Invocation op;           ///< kOp: the logical redo invocation
  bool has_comp = false;   ///< kOp: a compensating invocation follows
  Invocation comp;         ///< kOp: logical undo; kClr: what was applied
  uint64_t undoes_lsn = 0; ///< kClr: the op record this compensates

  /// "lsn=7 op txn=3 D.insert("k", "v") / undo remove("k")".
  std::string ToString() const;
};

/// Why a scan stopped before the end of the file.
enum class WalTornKind : uint8_t {
  kNone = 0,       ///< clean tail: the file ends on a record boundary
  kShortHeader,    ///< fewer than 8 frame-header bytes remain
  kShortPayload,   ///< the frame header promises more bytes than exist
  kBadCrc,         ///< payload present but its CRC32 does not match
  kBadPayload,     ///< CRC ok but the payload does not decode
};

const char* WalTornKindName(WalTornKind kind);

/// One decoded record plus where its frame sits in the file.
struct WalScannedRecord {
  WalRecord record;
  uint64_t offset = 0;       ///< absolute file offset of the frame
  uint32_t frame_bytes = 0;  ///< 8-byte frame header + payload
};

/// Everything a detailed scan learns about one epoch file.
struct WalScanResult {
  uint64_t first_lsn = 1;    ///< from the epoch header
  uint64_t file_bytes = 0;   ///< total size on disk
  uint64_t valid_bytes = 0;  ///< intact record-region bytes (excl. header)
  uint64_t next_lsn = 1;     ///< after the last intact record
  std::vector<WalScannedRecord> records;
  /// The torn tail: everything after the valid prefix.
  WalTornKind torn = WalTornKind::kNone;
  uint64_t torn_offset = 0;  ///< absolute offset of the first bad byte
  uint64_t torn_bytes = 0;   ///< file_bytes - torn_offset (0 when clean)
};

struct WalOptions {
  /// Force (fsync) the file on LogCommit. Off = buffered durability:
  /// commits survive process death but not power loss.
  bool fsync = true;

  /// Crash injection: when >= 0, raise SIGKILL right after the Nth
  /// successful append (1-based) reaches the file. Counts appends over
  /// the Wal instance's whole lifetime, across epoch rotations, so a
  /// sweep point can land after a mid-run checkpoint.
  int64_t crash_after_appends = -1;
  /// Crash injection: when >= 0, raise SIGKILL right after the append
  /// that pushes lifetime appended bytes (headers excluded) past this.
  int64_t crash_after_bytes = -1;
};

/// Append side of one WAL epoch file. Thread-safe.
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Creates (truncating) `path` and writes the epoch header. LSNs
  /// assigned by this instance start at `first_lsn`.
  Status Create(const std::string& path, uint64_t first_lsn,
                WalOptions options = {});

  /// Re-opens an existing epoch file for append after recovery scanned
  /// it: the file is truncated to `valid_bytes` (dropping the torn
  /// tail) and LSNs continue at `next_lsn`.
  Status OpenForAppend(const std::string& path, uint64_t valid_bytes,
                       uint64_t next_lsn, WalOptions options = {});

  void Close();
  bool IsOpen() const { return fd_ >= 0; }

  /// Appends `rec` (its lsn field is assigned here) and returns the
  /// LSN. The record is in the OS file after this returns; it is on
  /// disk only after the next Force.
  Result<uint64_t> Append(WalRecord rec);

  /// fsync (when the options enable it). Observes wal.fsync_ns.
  Status Force();

  uint64_t next_lsn() const;
  uint64_t appended_records() const;
  uint64_t appended_bytes() const;  ///< excludes the header

  void AttachMetrics(MetricsRegistry* registry);

  /// Reads every intact record of `path` in order. Returns the records,
  /// plus the byte offset of the first torn/corrupt one via
  /// `valid_bytes` (the whole file when clean) and the next LSN after
  /// the last intact record via `next_lsn` (first_lsn of the header
  /// when empty). Missing file => NotFound.
  static Status Scan(const std::string& path, std::vector<WalRecord>* out,
                     uint64_t* valid_bytes = nullptr,
                     uint64_t* next_lsn = nullptr);

  /// Scan with full framing detail: per-record byte offsets and sizes,
  /// plus an explicit classification of the torn tail. Scan() is a thin
  /// wrapper over this, so the inspector (`oodb_walinspect`) and
  /// recovery read one log with one decoder and can never disagree on
  /// where the valid prefix ends.
  static Status ScanDetailed(const std::string& path, WalScanResult* out);

 private:
  Status WriteHeader(uint64_t first_lsn);
  void MaybeCrash();  ///< requires mutex_ held; does not return if armed

  WalOptions options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  uint64_t next_lsn_ = 1;
  uint64_t records_ = 0;  ///< this epoch
  uint64_t bytes_ = 0;    ///< this epoch
  uint64_t lifetime_records_ = 0;  ///< across Create/OpenForAppend calls
  uint64_t lifetime_bytes_ = 0;

  Counter* m_appends_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Counter* m_forces_ = nullptr;
  HistogramMetric* m_fsync_ns_ = nullptr;
};

}  // namespace oodb
