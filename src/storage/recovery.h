// Crash recovery: ARIES-shaped, but with logical (compensation-based)
// undo, as open nesting requires.
//
// Recovery runs over the current epoch's WAL (everything since the last
// consistent checkpoint — the checkpoint image itself was loaded by
// StorageEngine::Open) in three passes:
//
//   Analysis   one scan sorts transactions into winners (a commit
//              record), resolved (an abort record — their compensations
//              already ran and were logged), and losers (neither: the
//              crash cut them off).
//
//   Redo       *repeat history*: every op and CLR record re-executes in
//              LSN order through the real method implementations —
//              winners, resolved, and losers alike. Because conflicting
//              root operations hold their semantic locks until top-level
//              commit, WAL order agrees with the dependency order, and
//              replaying it serially reconstructs exactly the pre-crash
//              object state (page images are never logged or replayed).
//
//   Undo       each loser's compensations run in reverse LSN order
//              across all losers — the same invocations a live abort
//              would have executed. Every applied compensation appends
//              a CLR naming the op LSN it undoes, so a crash during
//              recovery resumes where it left off instead of undoing
//              twice; a loser's already-logged runtime compensations
//              (from a partial abort that was mid-flight at the crash)
//              are themselves ops of the loser and get compensated
//              back, netting out correctly.
//
// Recovery finishes with a fresh checkpoint, which rotates the WAL
// epoch and makes the recovered state the new durable image.

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cc/database.h"
#include "obs/metrics.h"
#include "storage/engine.h"

namespace oodb {

struct RecoveryOptions {
  /// Test hook simulating a crash *during recovery*: stop (returning
  /// Aborted) after appending this many CLRs. 0 = off.
  uint64_t stop_after_clrs = 0;
};

/// The recovery phase taxonomy — the restart-time analogue of the
/// root-transaction phases in obs/phases.h. `finish` is the residual
/// (WAL re-open, loser abort records, the final force), computed as
/// total minus the measured phases so the six durations always sum
/// exactly to measured recovery wall time (coverage 1.0).
enum class RecoveryPhase : uint8_t {
  kScan = 0,    ///< read + CRC-check + decode the epoch WAL
  kAnalysis,    ///< sort transactions into winners/resolved/losers
  kRedo,        ///< repeat history: re-execute ops and CLRs in LSN order
  kUndo,        ///< compensate the losers, newest first, appending CLRs
  kCheckpoint,  ///< the fresh checkpoint that rotates the epoch
  kFinish,      ///< residual: everything between the measured phases
};

inline constexpr size_t kRecoveryPhaseCount = 6;

/// Stable lowercase name ("scan", "analysis", ...). Part of the
/// exported-surface vocabulary, like the obs/phases names.
const char* RecoveryPhaseName(RecoveryPhase phase);

/// Metric-name suffix ("scan", ..., used as "recovery.phase.<suffix>_ns").
const char* RecoveryPhaseSuffix(RecoveryPhase phase);

/// Per-phase durations and record throughput of one recovery run.
struct RecoveryTimeline {
  std::array<uint64_t, kRecoveryPhaseCount> phase_ns{};
  /// Records the phase processed (scan/analysis: scanned records,
  /// redo: re-executed records, undo: CLRs appended; 0 elsewhere).
  std::array<uint64_t, kRecoveryPhaseCount> phase_records{};
  uint64_t total_ns = 0;  ///< measured recovery wall time

  uint64_t Ns(RecoveryPhase phase) const {
    return phase_ns[static_cast<size_t>(phase)];
  }
  /// Sum over the phase durations; equals total_ns by construction
  /// (kFinish is the residual).
  uint64_t SumNs() const;
  /// SumNs()/total_ns — 1.0 exactly whenever total_ns > 0.
  double Coverage() const;

  /// Deterministic-schema JSON ("oodb-recovery-timeline-v1"): total,
  /// coverage, and one row per phase with ns, records, records/sec.
  std::string Json() const;
};

struct RecoveryStats {
  uint64_t scanned_records = 0;
  uint64_t torn_bytes = 0;  ///< dropped from the WAL tail
  uint64_t winners = 0;
  uint64_t resolved = 0;  ///< cleanly aborted before the crash
  uint64_t losers = 0;
  uint64_t redo_records = 0;  ///< op + CLR records re-executed
  uint64_t undo_records = 0;  ///< compensations applied (CLRs appended)
  uint64_t unundoable = 0;    ///< loser ops that had no compensation
  RecoveryTimeline timeline;  ///< where the recovery wall time went

  /// Copies the values onto recovery.* gauges (end-state counts plus
  /// recovery.phase.<suffix>_ns and recovery.total_ns).
  void PublishTo(MetricsRegistry* registry) const;
};

/// Replays the current epoch's WAL into `db` and checkpoints. Call
/// after StorageEngine::Open and after every persistent root has been
/// created/attached; attach the engine as the database's durability
/// hook only *afterwards* (recovery's own replay transactions must not
/// be re-logged).
Status Recover(StorageEngine* engine, Database* db,
               RecoveryStats* stats = nullptr, RecoveryOptions options = {});

}  // namespace oodb
