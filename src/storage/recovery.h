// Crash recovery: ARIES-shaped, but with logical (compensation-based)
// undo, as open nesting requires.
//
// Recovery runs over the current epoch's WAL (everything since the last
// consistent checkpoint — the checkpoint image itself was loaded by
// StorageEngine::Open) in three passes:
//
//   Analysis   one scan sorts transactions into winners (a commit
//              record), resolved (an abort record — their compensations
//              already ran and were logged), and losers (neither: the
//              crash cut them off).
//
//   Redo       *repeat history*: every op and CLR record re-executes in
//              LSN order through the real method implementations —
//              winners, resolved, and losers alike. Because conflicting
//              root operations hold their semantic locks until top-level
//              commit, WAL order agrees with the dependency order, and
//              replaying it serially reconstructs exactly the pre-crash
//              object state (page images are never logged or replayed).
//
//   Undo       each loser's compensations run in reverse LSN order
//              across all losers — the same invocations a live abort
//              would have executed. Every applied compensation appends
//              a CLR naming the op LSN it undoes, so a crash during
//              recovery resumes where it left off instead of undoing
//              twice; a loser's already-logged runtime compensations
//              (from a partial abort that was mid-flight at the crash)
//              are themselves ops of the loser and get compensated
//              back, netting out correctly.
//
// Recovery finishes with a fresh checkpoint, which rotates the WAL
// epoch and makes the recovered state the new durable image.

#pragma once

#include <cstdint>

#include "cc/database.h"
#include "obs/metrics.h"
#include "storage/engine.h"

namespace oodb {

struct RecoveryOptions {
  /// Test hook simulating a crash *during recovery*: stop (returning
  /// Aborted) after appending this many CLRs. 0 = off.
  uint64_t stop_after_clrs = 0;
};

struct RecoveryStats {
  uint64_t scanned_records = 0;
  uint64_t torn_bytes = 0;  ///< dropped from the WAL tail
  uint64_t winners = 0;
  uint64_t resolved = 0;  ///< cleanly aborted before the crash
  uint64_t losers = 0;
  uint64_t redo_records = 0;  ///< op + CLR records re-executed
  uint64_t undo_records = 0;  ///< compensations applied (CLRs appended)
  uint64_t unundoable = 0;    ///< loser ops that had no compensation

  /// Copies the values onto recovery.* gauges.
  void PublishTo(MetricsRegistry* registry) const;
};

/// Replays the current epoch's WAL into `db` and checkpoints. Call
/// after StorageEngine::Open and after every persistent root has been
/// created/attached; attach the engine as the database's durability
/// hook only *afterwards* (recovery's own replay transactions must not
/// be re-logged).
Status Recover(StorageEngine* engine, Database* db,
               RecoveryStats* stats = nullptr, RecoveryOptions options = {});

}  // namespace oodb
