#include "storage/wal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "storage/serde.h"

namespace oodb {

namespace {

constexpr char kWalMagic[8] = {'O', 'O', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr size_t kWalHeaderSize = 16;  // magic + u64 first_lsn

std::string EncodePayload(const WalRecord& rec) {
  BlobWriter w;
  w.U8(static_cast<uint8_t>(rec.type));
  w.U64(rec.lsn);
  w.U64(rec.txn);
  switch (rec.type) {
    case WalRecordType::kBegin:
      w.Str(rec.txn_name);
      break;
    case WalRecordType::kOp:
      w.Str(rec.root);
      w.Invoke(rec.op);
      w.U8(rec.has_comp ? 1 : 0);
      if (rec.has_comp) w.Invoke(rec.comp);
      break;
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      break;
    case WalRecordType::kClr:
      w.Str(rec.root);
      w.Invoke(rec.comp);
      w.U64(rec.undoes_lsn);
      break;
  }
  return w.Take();
}

bool DecodePayload(const std::string& payload, WalRecord* rec) {
  BlobReader r(payload);
  uint8_t type;
  if (!r.U8(&type) || !r.U64(&rec->lsn) || !r.U64(&rec->txn)) return false;
  if (type < 1 || type > 5) return false;
  rec->type = static_cast<WalRecordType>(type);
  switch (rec->type) {
    case WalRecordType::kBegin:
      return r.Str(&rec->txn_name) && r.Done();
    case WalRecordType::kOp: {
      uint8_t has_comp;
      if (!r.Str(&rec->root) || !r.Invoke(&rec->op) || !r.U8(&has_comp)) {
        return false;
      }
      rec->has_comp = has_comp != 0;
      if (rec->has_comp && !r.Invoke(&rec->comp)) return false;
      return r.Done();
    }
    case WalRecordType::kCommit:
    case WalRecordType::kAbort:
      return r.Done();
    case WalRecordType::kClr:
      return r.Str(&rec->root) && r.Invoke(&rec->comp) &&
             r.U64(&rec->undoes_lsn) && r.Done();
  }
  return false;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin:
      return "begin";
    case WalRecordType::kOp:
      return "op";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kClr:
      return "clr";
  }
  return "?";
}

std::string WalRecord::ToString() const {
  std::string out = "lsn=" + std::to_string(lsn) + " " +
                    WalRecordTypeName(type) + " txn=" + std::to_string(txn);
  switch (type) {
    case WalRecordType::kBegin:
      out += " '" + txn_name + "'";
      break;
    case WalRecordType::kOp:
      out += " " + root + "." + op.ToString();
      if (has_comp) out += " / undo " + comp.ToString();
      break;
    case WalRecordType::kClr:
      out += " " + root + "." + comp.ToString() + " undoes lsn=" +
             std::to_string(undoes_lsn);
      break;
    default:
      break;
  }
  return out;
}

Wal::~Wal() { Close(); }

Status Wal::WriteHeader(uint64_t first_lsn) {
  BlobWriter w;
  for (char c : kWalMagic) w.U8(static_cast<uint8_t>(c));
  w.U64(first_lsn);
  const std::string& h = w.blob();
  if (::write(fd_, h.data(), h.size()) !=
      static_cast<ssize_t>(h.size())) {
    return Status::Internal(std::string("wal header write failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status Wal::Create(const std::string& path, uint64_t first_lsn,
                   WalOptions options) {
  Close();
  options_ = options;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::Internal("open wal '" + path +
                            "' failed: " + std::strerror(errno));
  }
  path_ = path;
  next_lsn_ = first_lsn;
  records_ = 0;
  bytes_ = 0;
  return WriteHeader(first_lsn);
}

Status Wal::OpenForAppend(const std::string& path, uint64_t valid_bytes,
                          uint64_t next_lsn, WalOptions options) {
  Close();
  options_ = options;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) {
    return Status::Internal("open wal '" + path +
                            "' failed: " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(kWalHeaderSize + valid_bytes)) !=
      0) {
    return Status::Internal(std::string("wal truncate failed: ") +
                            std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::Internal(std::string("wal seek failed: ") +
                            std::strerror(errno));
  }
  path_ = path;
  next_lsn_ = next_lsn;
  records_ = 0;
  bytes_ = valid_bytes;
  return Status::OK();
}

void Wal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Wal::MaybeCrash() {
  bool fire = false;
  if (options_.crash_after_appends >= 0 &&
      lifetime_records_ >=
          static_cast<uint64_t>(options_.crash_after_appends)) {
    fire = true;
  }
  if (options_.crash_after_bytes >= 0 &&
      lifetime_bytes_ >
          static_cast<uint64_t>(options_.crash_after_bytes)) {
    fire = true;
  }
  if (fire) {
    // The harness's injected power cut: no destructors, no flushes.
    ::raise(SIGKILL);
  }
}

Result<uint64_t> Wal::Append(WalRecord rec) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (fd_ < 0) return Status::Internal("append to closed wal");
  rec.lsn = next_lsn_;
  const std::string payload = EncodePayload(rec);
  BlobWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  const std::string head = frame.Take();
  std::string buf = head + payload;
  if (::write(fd_, buf.data(), buf.size()) !=
      static_cast<ssize_t>(buf.size())) {
    return Status::Internal(std::string("wal append failed: ") +
                            std::strerror(errno));
  }
  ++next_lsn_;
  ++records_;
  ++lifetime_records_;
  bytes_ += buf.size();
  lifetime_bytes_ += buf.size();
  if (m_appends_) m_appends_->Increment();
  if (m_bytes_) m_bytes_->Increment(buf.size());
  MaybeCrash();
  return rec.lsn;
}

Status Wal::Force() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (fd_ < 0) return Status::Internal("force on closed wal");
  if (!options_.fsync) return Status::OK();
  auto start = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("wal fsync failed: ") +
                            std::strerror(errno));
  }
  if (m_forces_) m_forces_->Increment();
  if (m_fsync_ns_) {
    m_fsync_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return next_lsn_;
}

uint64_t Wal::appended_records() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return records_;
}

uint64_t Wal::appended_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return bytes_;
}

void Wal::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (registry == nullptr) {
    m_appends_ = m_bytes_ = m_forces_ = nullptr;
    m_fsync_ns_ = nullptr;
    return;
  }
  m_appends_ = registry->GetCounter("wal.appends");
  m_bytes_ = registry->GetCounter("wal.bytes");
  m_forces_ = registry->GetCounter("wal.forces");
  m_fsync_ns_ = registry->GetHistogram("wal.fsync_ns");
}

const char* WalTornKindName(WalTornKind kind) {
  switch (kind) {
    case WalTornKind::kNone:
      return "clean";
    case WalTornKind::kShortHeader:
      return "short-header";
    case WalTornKind::kShortPayload:
      return "short-payload";
    case WalTornKind::kBadCrc:
      return "bad-crc";
    case WalTornKind::kBadPayload:
      return "bad-payload";
  }
  return "?";
}

Status Wal::ScanDetailed(const std::string& path, WalScanResult* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no wal file '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < kWalHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a wal file");
  }
  *out = WalScanResult{};
  out->file_bytes = data.size();
  BlobReader header(data.data() + sizeof(kWalMagic), 8);
  header.U64(&out->first_lsn);

  uint64_t last_lsn = out->first_lsn - 1;
  size_t pos = kWalHeaderSize;
  while (pos < data.size()) {
    // [u32 len][u32 crc][payload]; any mismatch is the torn tail.
    if (pos + 8 > data.size()) {
      out->torn = WalTornKind::kShortHeader;
      break;
    }
    BlobReader head(data.data() + pos, 8);
    uint32_t len = 0, crc = 0;
    head.U32(&len);
    head.U32(&crc);
    if (pos + 8 + len > data.size()) {
      out->torn = WalTornKind::kShortPayload;
      break;
    }
    if (Crc32(data.data() + pos + 8, len) != crc) {
      out->torn = WalTornKind::kBadCrc;
      break;
    }
    WalScannedRecord scanned;
    if (!DecodePayload(std::string(data, pos + 8, len), &scanned.record)) {
      out->torn = WalTornKind::kBadPayload;
      break;
    }
    scanned.offset = pos;
    scanned.frame_bytes = 8 + len;
    last_lsn = scanned.record.lsn;
    out->records.push_back(std::move(scanned));
    pos += 8 + len;
  }
  out->valid_bytes = pos - kWalHeaderSize;
  out->next_lsn = last_lsn + 1;
  if (out->torn != WalTornKind::kNone) {
    out->torn_offset = pos;
    out->torn_bytes = data.size() - pos;
  }
  return Status::OK();
}

Status Wal::Scan(const std::string& path, std::vector<WalRecord>* out,
                 uint64_t* valid_bytes, uint64_t* next_lsn) {
  WalScanResult scan;
  OODB_RETURN_IF_ERROR(ScanDetailed(path, &scan));
  out->clear();
  out->reserve(scan.records.size());
  for (WalScannedRecord& rec : scan.records) {
    out->push_back(std::move(rec.record));
  }
  if (valid_bytes != nullptr) *valid_bytes = scan.valid_bytes;
  if (next_lsn != nullptr) *next_lsn = scan.next_lsn;
  return Status::OK();
}

}  // namespace oodb
