#include "storage/serde.h"

namespace oodb {

namespace {

/// Lazily built reflected CRC-32 table (polynomial 0xEDB88320).
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  const uint32_t* table = CrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<uint8_t>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace oodb
