// StorageEngine: the persistent store under a Database.
//
// One engine owns one directory:
//
//   pages.db   paged file: two meta slots (pages 0 and 1) + data pages
//   wal.<N>    the WAL of epoch N (records since the checkpoint that
//              opened the epoch); older epochs are the archive
//
// The design is checkpoint + logical log. A *consistent* checkpoint —
// taken while the database is quiesced through its transaction gate —
// serializes every registered persistent root into freshly allocated
// shadow pages, syncs, and then atomically flips the meta: the slot
// with the higher valid version wins, and it carries the catalog
// (root name -> page chain), the page-allocator bitmap, the epoch
// number, and the next LSN. A crash at any byte of that sequence
// leaves either the old image (shadow pages are simply forgotten by
// the old bitmap) or the new one, never a mix.
//
// Between checkpoints the engine is the Database's DurabilityHook: it
// logs completed root-level operations (with their registered
// compensating invocations) to the epoch WAL and forces it at commit.
// Restart = Open (load the winning image) + Recover (replay the epoch
// WAL — see recovery.h) + a fresh checkpoint that opens a new epoch.
//
// Roots are serialized through per-type hooks (RootSerde) registered
// by tag, so the engine knows nothing about Directory or HashIndex
// internals; containers/persist.h provides the standard hooks.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/database.h"
#include "cc/durability.h"
#include "storage/page_allocator.h"
#include "storage/page_cache.h"
#include "storage/paged_file.h"
#include "storage/wal.h"
#include "util/result.h"

namespace oodb {

/// How to move one root type between the object store and a byte blob.
struct RootSerde {
  /// State -> blob (called quiesced; may read state directly).
  std::function<std::string(Database&, ObjectId)> serialize;
  /// Blob -> fresh object(s) named `name` in `db`; returns the root id.
  std::function<Result<ObjectId>(Database*, const std::string& name,
                                 const std::string& blob)>
      deserialize;
  /// Canonical *semantic* dump (sorted key=value lines): two states
  /// that dump equal are equal as abstract objects, even when internal
  /// structure (bucket layout, object ids) differs. The crash harness
  /// compares recovered state to its oracle with this.
  std::function<std::string(Database&, ObjectId)> dump;
};

struct StorageEngineOptions {
  /// Directory holding pages.db and the wal.<epoch> files (created on
  /// Open when missing).
  std::string dir;
  /// Buffer-manager frames over pages.db.
  size_t cache_frames = 64;
  /// Data pages managed by the allocator bitmap (pages 2 .. 2+max).
  uint64_t max_pages = 4096;
  WalOptions wal;
  /// Take a checkpoint after this many commits that logged records;
  /// 0 = only explicit Checkpoint() calls and the one recovery takes.
  uint64_t checkpoint_every_commits = 0;
  /// Keep finished wal.<epoch> files (the archive the crash harness
  /// replays for its committed-only oracle). Off unlinks them at
  /// rotation.
  bool keep_archived_wals = true;
};

struct StorageEngineStats {
  uint64_t checkpoints = 0;
  uint64_t log_failures = 0;  ///< WAL appends that failed (data at risk)
};

class StorageEngine : public DurabilityHook {
 public:
  explicit StorageEngine(StorageEngineOptions options);
  ~StorageEngine() override;

  /// Registers the serde hooks for roots tagged `tag` ("directory",
  /// "hash-index", ...). Must precede Open.
  Status RegisterType(const std::string& tag, RootSerde serde);

  /// Opens (creating) the store and restores every checkpointed root
  /// into `db`. Does NOT replay the WAL: create/attach any roots the
  /// checkpoint does not know yet, then call Recover(), and only then
  /// AttachDurability. Order matters — recovery re-executes logged
  /// invocations and needs every root to exist.
  Status Open(Database* db);

  /// Declares `root` (already created in `db`) persistent under
  /// `name`. No-op state: the root is written by the next checkpoint.
  Status AttachRoot(const std::string& name, const std::string& tag,
                    ObjectId root);

  /// The id of the root checkpointed/attached as `name`, or an invalid
  /// id when unknown.
  ObjectId RootId(const std::string& name) const;
  std::vector<std::string> RootNames() const;

  /// Quiesces `db` and writes a consistent checkpoint: all roots to
  /// shadow pages, meta flip, fresh WAL epoch.
  Status Checkpoint(Database* db);

  /// Semantic dump of every root (sorted by name) — the engine-level
  /// equality oracle.
  std::string DumpRoots(Database& db) const;

  // --- DurabilityHook -------------------------------------------------
  bool IsPersistent(ObjectId obj) const override;
  Lsn LogOp(uint64_t top, const std::string& txn_name,
            const std::string& root_name, const Invocation& inv,
            const Invocation* comp) override;
  Lsn OnCommit(uint64_t top) override;
  void OnAbort(uint64_t top) override;
  void MaybeCheckpoint(Database* db) override;

  // --- observability ---------------------------------------------------

  /// Wires wal.* metrics, the buffer cache's counters/histograms
  /// (storage.cache.*, see PageCache::AttachMetrics), the
  /// storage.checkpoints and storage.log_failures counters, and the
  /// checkpoint cost-split histograms storage.ckpt.{writeback_ns,
  /// meta_flip_ns,wal_rotate_ns,total_ns}. Keeps `registry` for the
  /// gauges PublishStorageStats refreshes.
  void AttachMetrics(MetricsRegistry* registry);
  MetricsRegistry* metrics() const { return metrics_; }
  /// Refreshes the point-in-time storage gauges: storage.cache.pinned,
  /// storage.pages.allocated, and the keep-last-value hot-page slots
  /// storage.cache.hot.<i>.{page,pins} (top-4 lifetime-pinned pages;
  /// page -1 / pins 0 marks an empty slot). Monotone tallies are
  /// counters fed inline by the cache, not published here.
  void PublishStorageStats();
  /// Registers a probe on `sampler` that refreshes the storage.*
  /// gauges on every sampler tick. AttachMetrics with the sampler's
  /// registry first.
  void InstallSamplerProbes(MetricsSampler* sampler);

  // --- introspection (recovery, harness, tests) ------------------------
  const StorageEngineOptions& options() const { return options_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t next_lsn() const;
  std::string WalPath(uint64_t epoch) const;
  Wal& wal() { return wal_; }
  PageCache* cache() { return cache_.get(); }
  PageAllocator* allocator() { return allocator_.get(); }
  StorageEngineStats stats() const;
  const RootSerde* SerdeFor(const std::string& tag) const;

 private:
  struct CatalogEntry {
    std::string tag;
    PageNo first_page = 0;  ///< 0 = no checkpointed image yet
    uint64_t bytes = 0;
    ObjectId id;  ///< runtime id in the attached database
  };

  std::string EncodeMeta(uint64_t version, uint64_t epoch,
                         uint64_t next_lsn) const;
  Status WriteMetaSlot(uint64_t version, uint64_t epoch,
                       uint64_t next_lsn);
  /// Parses slot `slot`; false when absent/torn (not an error).
  bool ReadMetaSlot(PageNo slot, uint64_t* version, std::string* payload);

  /// Pages of the chain starting at `first` holding `bytes` bytes.
  Result<std::vector<PageNo>> ChainPages(PageNo first, uint64_t bytes);
  Result<std::string> ReadBlob(PageNo first, uint64_t bytes);
  /// Writes `blob` into freshly allocated pages; returns the first.
  Result<PageNo> WriteBlob(const std::string& blob);

  Status CheckpointQuiesced(Database* db);

  StorageEngineOptions options_;
  PagedFile file_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<PageAllocator> allocator_;
  Wal wal_;

  std::map<std::string, RootSerde> serdes_;  ///< by tag
  std::map<std::string, CatalogEntry> roots_;  ///< by root name (sorted)
  /// Runtime ids of the roots; read lock-free on the hot path, so all
  /// AttachRoot calls must precede AttachDurability.
  std::unordered_set<uint64_t> persistent_ids_;

  uint64_t meta_version_ = 0;
  uint64_t epoch_ = 0;
  /// Next LSN when the WAL is closed (meta value); once wal_ is open it
  /// is the authority.
  uint64_t next_lsn_ = 1;
  bool opened_ = false;

  /// Guards the begin-before-first-op protocol and the stats.
  mutable std::mutex log_mutex_;
  std::unordered_set<uint64_t> begun_;  ///< txns with a kBegin this epoch
  StorageEngineStats stats_;
  std::atomic<uint64_t> commits_since_ckpt_{0};
  std::mutex ckpt_mutex_;  ///< one MaybeCheckpoint at a time

  MetricsRegistry* metrics_ = nullptr;
  Counter* m_checkpoints_ = nullptr;
  Counter* m_log_failures_ = nullptr;
  /// Checkpoint cost split: page writeback (serialize + shadow pages +
  /// flush + sync), the meta flip (synced slot write), and the WAL
  /// rotation (fresh epoch file), plus the quiesced total.
  HistogramMetric* h_ckpt_writeback_ns_ = nullptr;
  HistogramMetric* h_ckpt_meta_flip_ns_ = nullptr;
  HistogramMetric* h_ckpt_wal_rotate_ns_ = nullptr;
  HistogramMetric* h_ckpt_total_ns_ = nullptr;
};

}  // namespace oodb
