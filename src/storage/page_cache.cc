#include "storage/page_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace oodb {

namespace {

uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

PageCache::PageCache(PagedFile* file, size_t frames) : file_(file) {
  frames_.resize(frames);
  free_.reserve(frames);
  for (size_t i = frames; i > 0; --i) {
    frames_[i - 1].data.resize(kPageSize);
    free_.push_back(i - 1);
  }
}

Result<size_t> PageCache::EvictLocked() {
  if (!free_.empty()) {
    size_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Capacity("every page-cache frame is pinned (" +
                            std::to_string(frames_.size()) + " frames)");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    OODB_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
    ++stats_.writebacks;
    if (m_writebacks_ != nullptr) m_writebacks_->Increment();
    f.dirty = false;
  }
  ++stats_.evictions;
  if (m_evictions_ != nullptr) {
    m_evictions_->Increment();
    // idle_since is unset for frames that went idle before attach.
    if (f.idle_since != std::chrono::steady_clock::time_point{}) {
      h_evict_age_ns_->Observe(NanosSince(f.idle_since));
    }
  }
  map_.erase(f.page);
  f.valid = false;
  return idx;
}

Result<char*> PageCache::Pin(PageNo page) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = map_.find(page);
  if (it != map_.end()) {
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    if (m_hits_ != nullptr) {
      m_hits_->Increment();
      if (f.pins == 0) f.pinned_at = std::chrono::steady_clock::now();
      ++pin_tally_[page];
    }
    ++f.pins;
    ++stats_.hits;
    return f.data.data();
  }
  Result<size_t> idx = EvictLocked();
  OODB_RETURN_IF_ERROR(idx.status());
  Frame& f = frames_[*idx];
  OODB_RETURN_IF_ERROR(file_->ReadPage(page, f.data.data()));
  f.page = page;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  map_[page] = *idx;
  ++stats_.misses;
  if (m_misses_ != nullptr) {
    m_misses_->Increment();
    f.pinned_at = std::chrono::steady_clock::now();
    ++pin_tally_[page];
  }
  return f.data.data();
}

Status PageCache::Unpin(PageNo page, bool dirty) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = map_.find(page);
  if (it == map_.end() || frames_[it->second].pins == 0) {
    OODB_ERROR("unpin of page " << page << " that is not pinned");
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page));
  }
  Frame& f = frames_[it->second];
  f.dirty = f.dirty || dirty;
  if (--f.pins == 0) {
    f.lru_pos = lru_.insert(lru_.end(), it->second);
    f.in_lru = true;
    if (h_pin_ns_ != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      // pinned_at is unset for pins taken before attach.
      if (f.pinned_at != std::chrono::steady_clock::time_point{}) {
        h_pin_ns_->Observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - f.pinned_at)
                .count()));
      }
      f.idle_since = now;
    }
  }
  return Status::OK();
}

Status PageCache::FlushAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      OODB_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
      ++stats_.writebacks;
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status PageCache::InvalidateClean() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (Frame& f : frames_) {
    if (f.valid && (f.dirty || f.pins > 0)) {
      return Status::Internal("invalidate would drop a " +
                              std::string(f.dirty ? "dirty" : "pinned") +
                              " frame (page " + std::to_string(f.page) +
                              ")");
    }
  }
  map_.clear();
  lru_.clear();
  free_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    frames_[i - 1].valid = false;
    frames_[i - 1].in_lru = false;
    free_.push_back(i - 1);
  }
  return Status::OK();
}

size_t PageCache::PinnedCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t n = 0;
  for (const Frame& f : frames_) n += f.pins;
  return n;
}

PageCacheStats PageCache::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

void PageCache::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<std::mutex> guard(mutex_);
  m_hits_ = registry->GetCounter("storage.cache.hits");
  m_misses_ = registry->GetCounter("storage.cache.misses");
  m_evictions_ = registry->GetCounter("storage.cache.evictions");
  m_writebacks_ = registry->GetCounter("storage.cache.writebacks");
  h_pin_ns_ = registry->GetHistogram("storage.cache.pin_ns");
  h_evict_age_ns_ = registry->GetHistogram("storage.cache.eviction_age_ns");
  // Seed the counters with what already happened detached, so counter
  // values always match stats() and sampler deltas start meaningful.
  if (stats_.hits > m_hits_->Value()) {
    m_hits_->Increment(stats_.hits - m_hits_->Value());
  }
  if (stats_.misses > m_misses_->Value()) {
    m_misses_->Increment(stats_.misses - m_misses_->Value());
  }
  if (stats_.evictions > m_evictions_->Value()) {
    m_evictions_->Increment(stats_.evictions - m_evictions_->Value());
  }
  if (stats_.writebacks > m_writebacks_->Value()) {
    m_writebacks_->Increment(stats_.writebacks - m_writebacks_->Value());
  }
}

std::vector<PageCache::HotPage> PageCache::HotPages(size_t k) const {
  std::vector<HotPage> hot;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    hot.reserve(pin_tally_.size());
    for (const auto& entry : pin_tally_) {
      hot.push_back(HotPage{entry.first, entry.second});
    }
  }
  std::sort(hot.begin(), hot.end(), [](const HotPage& a, const HotPage& b) {
    if (a.pins != b.pins) return a.pins > b.pins;
    return a.page < b.page;
  });
  if (hot.size() > k) hot.resize(k);
  return hot;
}

}  // namespace oodb
