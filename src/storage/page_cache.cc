#include "storage/page_cache.h"

#include "util/logging.h"

namespace oodb {

PageCache::PageCache(PagedFile* file, size_t frames) : file_(file) {
  frames_.resize(frames);
  free_.reserve(frames);
  for (size_t i = frames; i > 0; --i) {
    frames_[i - 1].data.resize(kPageSize);
    free_.push_back(i - 1);
  }
}

Result<size_t> PageCache::EvictLocked() {
  if (!free_.empty()) {
    size_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Capacity("every page-cache frame is pinned (" +
                            std::to_string(frames_.size()) + " frames)");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    OODB_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
    ++stats_.writebacks;
    f.dirty = false;
  }
  ++stats_.evictions;
  map_.erase(f.page);
  f.valid = false;
  return idx;
}

Result<char*> PageCache::Pin(PageNo page) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = map_.find(page);
  if (it != map_.end()) {
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    ++stats_.hits;
    return f.data.data();
  }
  Result<size_t> idx = EvictLocked();
  OODB_RETURN_IF_ERROR(idx.status());
  Frame& f = frames_[*idx];
  OODB_RETURN_IF_ERROR(file_->ReadPage(page, f.data.data()));
  f.page = page;
  f.valid = true;
  f.dirty = false;
  f.pins = 1;
  map_[page] = *idx;
  ++stats_.misses;
  return f.data.data();
}

Status PageCache::Unpin(PageNo page, bool dirty) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = map_.find(page);
  if (it == map_.end() || frames_[it->second].pins == 0) {
    OODB_ERROR("unpin of page " << page << " that is not pinned");
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page));
  }
  Frame& f = frames_[it->second];
  f.dirty = f.dirty || dirty;
  if (--f.pins == 0) {
    f.lru_pos = lru_.insert(lru_.end(), it->second);
    f.in_lru = true;
  }
  return Status::OK();
}

Status PageCache::FlushAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (Frame& f : frames_) {
    if (f.valid && f.dirty) {
      OODB_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
      ++stats_.writebacks;
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status PageCache::InvalidateClean() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (Frame& f : frames_) {
    if (f.valid && (f.dirty || f.pins > 0)) {
      return Status::Internal("invalidate would drop a " +
                              std::string(f.dirty ? "dirty" : "pinned") +
                              " frame (page " + std::to_string(f.page) +
                              ")");
    }
  }
  map_.clear();
  lru_.clear();
  free_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    frames_[i - 1].valid = false;
    frames_[i - 1].in_lru = false;
    free_.push_back(i - 1);
  }
  return Status::OK();
}

size_t PageCache::PinnedCount() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t n = 0;
  for (const Frame& f : frames_) n += f.pins;
  return n;
}

PageCacheStats PageCache::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

}  // namespace oodb
