#include "apps/document.h"

#include <memory>

#include "containers/codec.h"
#include "containers/page_ops.h"
#include "model/type_registry.h"

namespace oodb {

namespace {

Result<ObjectId> SectionAt(MethodContext& ctx, int64_t index) {
  ObjectId section = ctx.WithState<DocumentState>([&](DocumentState* s) {
    if (index < 0 || static_cast<size_t>(index) >= s->sections.size()) {
      return ObjectId();
    }
    return s->sections[index];
  });
  if (!section.valid()) {
    return Status::InvalidArgument("no section " + std::to_string(index));
  }
  return section;
}

Status DocEditSection(MethodContext& ctx, const ValueList& params,
                      Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("editSection needs index, text");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId section,
                        SectionAt(ctx, params[0].AsInt()));
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(section, Invocation("edit", {params[1]}), &old));
  ctx.SetCompensation(Invocation("editSection", {params[0], old}));
  *result = old;
  return Status::OK();
}

Status DocReadSection(MethodContext& ctx, const ValueList& params,
                      Value* result) {
  if (params.empty()) {
    return Status::InvalidArgument("readSection needs an index");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId section,
                        SectionAt(ctx, params[0].AsInt()));
  return ctx.Call(section, Invocation("read"), result);
}

Status DocReadAll(MethodContext& ctx, const ValueList&, Value* result) {
  std::vector<ObjectId> sections = ctx.WithState<DocumentState>(
      [](DocumentState* s) { return s->sections; });
  std::vector<std::string> texts;
  texts.reserve(sections.size());
  for (ObjectId section : sections) {
    Value text;
    OODB_RETURN_IF_ERROR(ctx.Call(section, Invocation("read"), &text));
    texts.push_back(text.AsString());
  }
  *result = Value(JoinFields(texts));
  return Status::OK();
}

Status SectionEdit(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.empty()) return Status::InvalidArgument("edit needs text");
  ObjectId page =
      ctx.WithState<SectionState>([](SectionState* s) { return s->page; });
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(page, Invocation("read", {Value("text")}), &old));
  OODB_RETURN_IF_ERROR(
      ctx.Call(page, Invocation("write", {Value("text"), params[0]})));
  ctx.SetCompensation(
      Invocation("edit", {Value(old.IsNone() ? "" : old.AsString())}));
  *result = old.IsNone() ? Value("") : old;
  return Status::OK();
}

Status SectionRead(MethodContext& ctx, const ValueList&, Value* result) {
  ObjectId page =
      ctx.WithState<SectionState>([](SectionState* s) { return s->page; });
  Value text;
  OODB_RETURN_IF_ERROR(
      ctx.Call(page, Invocation("read", {Value("text")}), &text));
  *result = text.IsNone() ? Value("") : text;
  return Status::OK();
}

}  // namespace

const ObjectType* SectionObjectType() {
  static const ObjectType* type = [] {
    // Composite (calls into Page), so pass 6 delegates to this spec;
    // read/read is re-derived by the deep-observer rule, edit pairs
    // stay conflicting (edit returns the old text, so order shows).
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("read", "read");
    return new ObjectType("Section", std::move(spec), /*primitive=*/false);
  }();
  return type;
}

const ObjectType* DocumentObjectType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("editSection", "editSection", diff);
    spec->SetPredicate("editSection", "readSection", diff);
    spec->SetCommutes("readSection", "readSection");
    spec->SetCommutes("readAll", "readAll");
    spec->SetCommutes("readAll", "readSection");
    // editSection vs readAll conflicts (unregistered).
    return new ObjectType("Document", std::move(spec), /*primitive=*/false);
  }();
  return type;
}

void Document::RegisterMethods(Database* db) {
  TypeRegistry::Global().Register(DocumentObjectType());
  TypeRegistry::Global().Register(SectionObjectType());
  RegisterPageMethods(db);
  db->Register(DocumentObjectType(), "editSection", DocEditSection);
  db->Register(DocumentObjectType(), "readSection", DocReadSection);
  db->Register(DocumentObjectType(), "readAll", DocReadAll);
  db->Register(SectionObjectType(), "edit", SectionEdit);
  db->Register(SectionObjectType(), "read", SectionRead);

  // Schema traits.
  db->DeclareTraits(DocumentObjectType(), "editSection",
                    {.observer = false,
                     .calls = {{"Section", "edit"}},
                     .samples = {{Value(0), Value("t1")},
                                 {Value(1), Value("t2")}},
                     .compensations = {"editSection"}});
  db->DeclareTraits(DocumentObjectType(), "readSection",
                    {.observer = true,
                     .calls = {{"Section", "read"}},
                     .samples = {{Value(0)}, {Value(1)}},
                     .compensations = {}});
  db->DeclareTraits(DocumentObjectType(), "readAll",
                    {.observer = true,
                     .calls = {{"Section", "read"}},
                     .samples = {{}},
                     .compensations = {}});
  db->DeclareTraits(SectionObjectType(), "edit",
                    {.observer = false,
                     .calls = {{"Page", "read"}, {"Page", "write"}},
                     .samples = {{Value("a")}, {Value("b")}},
                     .compensations = {"edit"}});
  db->DeclareTraits(SectionObjectType(), "read",
                    {.observer = true,
                     .calls = {{"Page", "read"}},
                     .samples = {{}},
                     .compensations = {}});
}

ObjectId Document::Create(Database* db, const std::string& name,
                          size_t sections) {
  auto doc_state = std::make_unique<DocumentState>();
  for (size_t i = 0; i < sections; ++i) {
    ObjectId page = CreatePage(
        db, name + ".SectionPage" + std::to_string(i), /*capacity=*/4);
    auto section_state = std::make_unique<SectionState>();
    section_state->page = page;
    doc_state->sections.push_back(db->CreateObject(
        SectionObjectType(), name + ".Section" + std::to_string(i),
        std::move(section_state)));
  }
  return db->CreateObject(DocumentObjectType(), name, std::move(doc_state));
}

}  // namespace oodb
