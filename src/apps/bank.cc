#include "apps/bank.h"

#include <memory>
#include <utility>
#include <vector>

#include "model/type_registry.h"

namespace oodb {

namespace {

/// How an invocation touches one account.
enum class Touch { kRead, kDeposit, kWithdraw };

/// The (account, touch) footprint of a bank invocation. audit is handled
/// separately (it reads every account).
std::vector<std::pair<int64_t, Touch>> Footprint(const Invocation& inv) {
  std::vector<std::pair<int64_t, Touch>> out;
  if (inv.method == "transfer" && inv.params.size() >= 2) {
    out.push_back({inv.params[0].AsInt(), Touch::kWithdraw});
    out.push_back({inv.params[1].AsInt(), Touch::kDeposit});
  } else if (inv.method == "deposit" && !inv.params.empty()) {
    out.push_back({inv.params[0].AsInt(), Touch::kDeposit});
  } else if (inv.method == "withdraw" && !inv.params.empty()) {
    out.push_back({inv.params[0].AsInt(), Touch::kWithdraw});
  } else if (inv.method == "balance" && !inv.params.empty()) {
    out.push_back({inv.params[0].AsInt(), Touch::kRead});
  }
  return out;
}

bool IsMutator(const Invocation& inv) {
  return inv.method == "transfer" || inv.method == "deposit" ||
         inv.method == "withdraw";
}

bool IsBankOp(const Invocation& inv) {
  return IsMutator(inv) || inv.method == "balance" ||
         inv.method == "audit";
}

/// Do two touches on the *same* account commute under the variant?
bool TouchesCommute(BankSemantics semantics, Touch a, Touch b) {
  switch (semantics) {
    case BankSemantics::kEscrow:
      // Escrow: mutators commute with each other; exact reads conflict
      // with mutators.
      return !((a == Touch::kRead) != (b == Touch::kRead));
    case BankSemantics::kNameOnly:
      return (a == Touch::kDeposit && b == Touch::kDeposit) ||
             (a == Touch::kRead && b == Touch::kRead);
    case BankSemantics::kReadWrite:
      return a == Touch::kRead && b == Touch::kRead;
  }
  return false;
}

/// Parameter-aware bank commutativity: derived from the footprint on
/// shared accounts, per variant. Bank is composite (Def 5), so pass 6
/// keeps this spec as declared evidence; the account types it fans out
/// to are probed directly, where the name-only and read-write variants
/// show their deliberately lost concurrency (the escrow variant infers
/// exactly as declared).
class BankCommutativity : public CommutativitySpec {
 public:
  explicit BankCommutativity(BankSemantics semantics)
      : semantics_(semantics) {}

  bool Commutes(const Invocation& a, const Invocation& b) const override {
    if (!IsBankOp(a) || !IsBankOp(b)) return false;
    if (a.method == "audit" || b.method == "audit") {
      // audit reads every account: commutes only with reads.
      const Invocation& other = a.method == "audit" ? b : a;
      if (other.method == "audit" || other.method == "balance") return true;
      return false;
    }
    for (const auto& [acct_a, touch_a] : Footprint(a)) {
      for (const auto& [acct_b, touch_b] : Footprint(b)) {
        if (acct_a != acct_b) continue;
        if (!TouchesCommute(semantics_, touch_a, touch_b)) return false;
      }
    }
    return true;
  }

  // Purely footprint-driven (method + parameters), no state.
  CommutativityMemo memo() const override {
    return CommutativityMemo::kInvocationPair;
  }

 private:
  BankSemantics semantics_;
};

Result<ObjectId> AccountAt(MethodContext& ctx, int64_t index) {
  ObjectId account = ctx.WithState<BankState>([&](BankState* s) {
    if (index < 0 || static_cast<size_t>(index) >= s->accounts.size()) {
      return ObjectId();
    }
    return s->accounts[index];
  });
  if (!account.valid()) {
    return Status::InvalidArgument("no account " + std::to_string(index));
  }
  return account;
}

Status BankTransfer(MethodContext& ctx, const ValueList& params,
                    Value* result) {
  if (params.size() < 3) {
    return Status::InvalidArgument("transfer needs from, to, amount");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId from, AccountAt(ctx, params[0].AsInt()));
  OODB_ASSIGN_OR_RETURN(ObjectId to, AccountAt(ctx, params[1].AsInt()));
  // Withdraw first: the admissibility test refuses overdrafts atomically.
  OODB_RETURN_IF_ERROR(
      ctx.Call(from, Invocation("withdraw", {params[2]})));
  OODB_RETURN_IF_ERROR(ctx.Call(to, Invocation("deposit", {params[2]})));
  ctx.SetCompensation(
      Invocation("transfer", {params[1], params[0], params[2]}));
  *result = Value();
  return Status::OK();
}

Status BankDeposit(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("deposit needs account, amount");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId account,
                        AccountAt(ctx, params[0].AsInt()));
  OODB_RETURN_IF_ERROR(
      ctx.Call(account, Invocation("deposit", {params[1]}), result));
  ctx.SetCompensation(Invocation("withdraw", {params[0], params[1]}));
  return Status::OK();
}

Status BankWithdraw(MethodContext& ctx, const ValueList& params,
                    Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("withdraw needs account, amount");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId account,
                        AccountAt(ctx, params[0].AsInt()));
  OODB_RETURN_IF_ERROR(
      ctx.Call(account, Invocation("withdraw", {params[1]}), result));
  ctx.SetCompensation(Invocation("deposit", {params[0], params[1]}));
  return Status::OK();
}

Status BankBalance(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.empty()) {
    return Status::InvalidArgument("balance needs an account");
  }
  OODB_ASSIGN_OR_RETURN(ObjectId account,
                        AccountAt(ctx, params[0].AsInt()));
  return ctx.Call(account, Invocation("balance"), result);
}

Status BankAudit(MethodContext& ctx, const ValueList&, Value* result) {
  std::vector<ObjectId> accounts =
      ctx.WithState<BankState>([](BankState* s) { return s->accounts; });
  int64_t total = 0;
  for (ObjectId account : accounts) {
    Value balance;
    OODB_RETURN_IF_ERROR(
        ctx.Call(account, Invocation("balance"), &balance));
    total += balance.AsInt();
  }
  *result = Value(total);
  return Status::OK();
}

}  // namespace

const char* BankSemanticsName(BankSemantics semantics) {
  switch (semantics) {
    case BankSemantics::kEscrow:
      return "escrow";
    case BankSemantics::kNameOnly:
      return "name-only";
    case BankSemantics::kReadWrite:
      return "read-write";
  }
  return "?";
}

const ObjectType* BankObjectType(BankSemantics semantics) {
  static const ObjectType* escrow = new ObjectType(
      "Bank(escrow)", std::make_unique<BankCommutativity>(
                          BankSemantics::kEscrow));
  static const ObjectType* name_only = new ObjectType(
      "Bank(name-only)", std::make_unique<BankCommutativity>(
                             BankSemantics::kNameOnly));
  static const ObjectType* rw = new ObjectType(
      "Bank(read-write)", std::make_unique<BankCommutativity>(
                              BankSemantics::kReadWrite));
  switch (semantics) {
    case BankSemantics::kEscrow:
      return escrow;
    case BankSemantics::kNameOnly:
      return name_only;
    case BankSemantics::kReadWrite:
      return rw;
  }
  return escrow;
}

const ObjectType* AccountTypeFor(BankSemantics semantics) {
  switch (semantics) {
    case BankSemantics::kEscrow:
      return EscrowAccountType();
    case BankSemantics::kNameOnly:
      return NameOnlyAccountType();
    case BankSemantics::kReadWrite:
      return RWAccountType();
  }
  return EscrowAccountType();
}

void Bank::RegisterMethods(Database* db, BankSemantics semantics) {
  TypeRegistry::Global().Register(BankObjectType(semantics));
  RegisterAccountMethods(db, AccountTypeFor(semantics));
  const ObjectType* type = BankObjectType(semantics);
  db->Register(type, "transfer", BankTransfer);
  db->Register(type, "deposit", BankDeposit);
  db->Register(type, "withdraw", BankWithdraw);
  db->Register(type, "balance", BankBalance);
  db->Register(type, "audit", BankAudit);

  // Schema traits. Bank methods only ever reach the matching account
  // variant; audit reads every account (hence its conflict with
  // mutators must be justified at the account layer too).
  const std::string acct = AccountTypeFor(semantics)->name();
  db->DeclareTraits(type, "transfer",
                    {.observer = false,
                     .calls = {{acct, "withdraw"}, {acct, "deposit"}},
                     .samples = {{Value(0), Value(1), Value(5)},
                                 {Value(2), Value(3), Value(7)}},
                     .compensations = {"transfer"}});
  db->DeclareTraits(type, "deposit",
                    {.observer = false,
                     .calls = {{acct, "deposit"}},
                     .samples = {{Value(0), Value(5)},
                                 {Value(1), Value(7)}},
                     .compensations = {"withdraw"}});
  db->DeclareTraits(type, "withdraw",
                    {.observer = false,
                     .calls = {{acct, "withdraw"}},
                     .samples = {{Value(0), Value(5)},
                                 {Value(1), Value(7)}},
                     .compensations = {"deposit"}});
  db->DeclareTraits(type, "balance",
                    {.observer = true,
                     .calls = {{acct, "balance"}},
                     .samples = {{Value(0)}, {Value(1)}},
                     .compensations = {}});
  db->DeclareTraits(type, "audit",
                    {.observer = true,
                     .calls = {{acct, "balance"}},
                     .samples = {{}},
                     .compensations = {}});
}

ObjectId Bank::Create(Database* db, const std::string& name,
                      BankSemantics semantics, size_t accounts,
                      int64_t initial_balance) {
  auto state = std::make_unique<BankState>();
  for (size_t i = 0; i < accounts; ++i) {
    state->accounts.push_back(
        CreateAccount(db, AccountTypeFor(semantics),
                      name + ".Account" + std::to_string(i),
                      initial_balance));
  }
  return db->CreateObject(BankObjectType(semantics), name,
                          std::move(state));
}

}  // namespace oodb
