#include "apps/encyclopedia.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "containers/bptree.h"
#include "containers/codec.h"
#include "containers/page_ops.h"
#include "model/type_registry.h"

namespace oodb {

namespace {

std::string SeqKey(uint64_t seq) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

// ---------------------------------------------------------------------
// Item methods
// ---------------------------------------------------------------------

Status ItemRead(MethodContext& ctx, const ValueList&, Value* result) {
  auto snap = ctx.WithState<ItemState>(
      [](ItemState* s) { return std::make_pair(s->page, s->key); });
  return ctx.Call(snap.first, Invocation("read", {Value(snap.second)}),
                  result);
}

Status ItemChange(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("change needs data");
  auto snap = ctx.WithState<ItemState>(
      [](ItemState* s) { return std::make_pair(s->page, s->key); });
  Value old;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.first, Invocation("read", {Value(snap.second)}), &old));
  OODB_RETURN_IF_ERROR(ctx.Call(
      snap.first, Invocation("write", {Value(snap.second), params[0]})));
  if (old.IsNone()) {
    ctx.SetCompensation(Invocation("clear"));
  } else {
    ctx.SetCompensation(Invocation("change", {old}));
  }
  *result = old;
  return Status::OK();
}

Status ItemClear(MethodContext& ctx, const ValueList&, Value* result) {
  auto snap = ctx.WithState<ItemState>(
      [](ItemState* s) { return std::make_pair(s->page, s->key); });
  Value old;
  OODB_RETURN_IF_ERROR(ctx.Call(
      snap.first, Invocation("erase", {Value(snap.second)}), &old));
  if (!old.IsNone()) {
    ctx.SetCompensation(Invocation("change", {old}));
  }
  *result = old;
  return Status::OK();
}

// ---------------------------------------------------------------------
// LinkedList methods
// ---------------------------------------------------------------------

Status ListAppend(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("append needs item key, item id");
  }
  // Entry: seq -> "<item key> US <item id>".
  uint64_t seq = 0;
  ObjectId page;
  size_t capacity = 0;
  ctx.WithState<LinkedListState>([&](LinkedListState* s) {
    seq = s->next_seq++;
    page = s->pages.empty() ? ObjectId() : s->pages.back();
    capacity = s->page_capacity;
    return 0;
  });
  const std::string entry =
      JoinPair(params[0].AsString(), params[1].AsString());
  const std::string key = SeqKey(seq);
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (page.valid()) {
      Status st = ctx.Call(
          page, Invocation("write", {Value(key), Value(entry)}));
      if (st.ok()) {
        ctx.SetCompensation(Invocation("removeSeq", {Value(key)}));
        *result = Value(static_cast<int64_t>(seq));
        return Status::OK();
      }
      if (st.code() != StatusCode::kCapacity) return st;
    }
    // Last page full (or none yet): extend the list. Pages are named by
    // their index in this list, not a process-global counter, so repeated
    // runs in one process produce identical object names (golden traces).
    size_t page_index = ctx.WithState<LinkedListState>(
        [](LinkedListState* s) { return s->pages.size(); });
    ObjectId fresh = CreatePage(
        ctx.db(), "ListPage" + std::to_string(page_index), capacity);
    page = ctx.WithState<LinkedListState>([&](LinkedListState* s) {
      if (s->pages.empty() || s->pages.back() == page || !page.valid()) {
        s->pages.push_back(fresh);
        return fresh;
      }
      return s->pages.back();  // someone else already extended
    });
  }
  return Status::Capacity("list pages keep filling up");
}

Status ListReadSeq(MethodContext& ctx, const ValueList&, Value* result) {
  std::vector<ObjectId> pages = ctx.WithState<LinkedListState>(
      [](LinkedListState* s) { return s->pages; });
  // Collect (seq -> entry) across pages; seq keys sort lexicographically.
  std::vector<std::pair<std::string, std::string>> entries;
  for (ObjectId page : pages) {
    Value scan;
    OODB_RETURN_IF_ERROR(ctx.Call(page, Invocation("scan"), &scan));
    std::vector<std::string> fields = SplitFields(scan.AsString());
    for (size_t i = 0; i + 1 < fields.size(); i += 2) {
      entries.emplace_back(fields[i], fields[i + 1]);
    }
  }
  std::sort(entries.begin(), entries.end());
  // Read every item in sequence order.
  std::vector<std::string> out;
  for (const auto& [seq, entry] : entries) {
    (void)seq;
    auto [item_key, item_id] = SplitPair(entry);
    if (item_id.empty()) continue;
    Value data;
    OODB_RETURN_IF_ERROR(ctx.Call(ObjectId(std::stoull(item_id)),
                                  Invocation("read"), &data));
    out.push_back(item_key);
    out.push_back(data.AsString());
  }
  *result = Value(JoinFields(out));
  return Status::OK();
}

/// Finds the page holding `seq` and erases it (compensation of append).
Status ListRemoveSeq(MethodContext& ctx, const ValueList& params,
                     Value* result) {
  if (params.empty()) return Status::InvalidArgument("removeSeq needs seq");
  std::vector<ObjectId> pages = ctx.WithState<LinkedListState>(
      [](LinkedListState* s) { return s->pages; });
  for (ObjectId page : pages) {
    Value present;
    OODB_RETURN_IF_ERROR(
        ctx.Call(page, Invocation("contains", {params[0]}), &present));
    if (present.AsInt() == 1) {
      Value old;
      OODB_RETURN_IF_ERROR(
          ctx.Call(page, Invocation("erase", {params[0]}), &old));
      ctx.SetCompensation(Invocation("restore", {params[0], old}));
      *result = old;
      return Status::OK();
    }
  }
  *result = Value();
  return Status::OK();
}

/// Removes the entry whose *item key* is `key` (used by Enc.erase).
Status ListRemove(MethodContext& ctx, const ValueList& params,
                  Value* result) {
  if (params.empty()) return Status::InvalidArgument("remove needs a key");
  std::vector<ObjectId> pages = ctx.WithState<LinkedListState>(
      [](LinkedListState* s) { return s->pages; });
  const std::string target = params[0].AsString();
  for (ObjectId page : pages) {
    Value scan;
    OODB_RETURN_IF_ERROR(ctx.Call(page, Invocation("scan"), &scan));
    std::vector<std::string> fields = SplitFields(scan.AsString());
    for (size_t i = 0; i + 1 < fields.size(); i += 2) {
      auto [item_key, item_id] = SplitPair(fields[i + 1]);
      if (!item_id.empty() && item_key == target) {
        Value old;
        OODB_RETURN_IF_ERROR(ctx.Call(
            page, Invocation("erase", {Value(fields[i])}), &old));
        ctx.SetCompensation(
            Invocation("restore", {Value(fields[i]), old}));
        *result = old;
        return Status::OK();
      }
    }
  }
  *result = Value();
  return Status::OK();
}

/// Re-inserts a (seq, entry) pair (compensation of remove/removeSeq).
Status ListRestore(MethodContext& ctx, const ValueList& params,
                   Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("restore needs seq, entry");
  }
  std::vector<ObjectId> pages = ctx.WithState<LinkedListState>(
      [](LinkedListState* s) { return s->pages; });
  for (ObjectId page : pages) {
    Status st = ctx.Call(page, Invocation("write", {params[0], params[1]}));
    if (st.ok()) {
      ctx.SetCompensation(Invocation("removeSeq", {params[0]}));
      *result = Value();
      return Status::OK();
    }
    if (st.code() != StatusCode::kCapacity) return st;
  }
  return Status::Capacity("no list page has room for the restore");
}

// ---------------------------------------------------------------------
// Enc methods
// ---------------------------------------------------------------------

struct EncSnapshot {
  ObjectId tree, list;
};

EncSnapshot SnapEnc(MethodContext& ctx) {
  return ctx.WithState<EncState>(
      [](EncState* s) { return EncSnapshot{s->tree, s->list}; });
}

Status EncInsert(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("insert needs key, data");
  }
  EncSnapshot snap = SnapEnc(ctx);
  const std::string key = params[0].AsString();

  // Duplicate keys are an application error (the caller may search
  // first); refuse rather than silently link a second item.
  Value existing;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.tree, Invocation("search", {params[0]}), &existing));
  if (!existing.IsNone()) {
    return Status::AlreadyExists("item '" + key + "' already present");
  }

  // Allocate a slot on a shared item page (several items per page: the
  // Fig 7 situation where item operations conflict at the page level).
  ObjectId item_page = ctx.WithState<EncState>([&](EncState* s) {
    if (!s->item_pages.empty() &&
        (s->item_count % s->items_per_page) != 0) {
      ++s->item_count;
      return s->item_pages.back();
    }
    return ObjectId();
  });
  if (!item_page.valid()) {
    // Named by page index within this encyclopedia (deterministic across
    // runs; ids, not names, are what must be unique).
    auto [per_page, page_index] = ctx.WithState<EncState>([](EncState* s) {
      return std::make_pair(s->items_per_page, s->item_pages.size());
    });
    ObjectId fresh = CreatePage(
        ctx.db(), "ItemPage" + std::to_string(page_index), per_page);
    item_page = ctx.WithState<EncState>([&](EncState* s) {
      s->item_pages.push_back(fresh);
      ++s->item_count;
      return fresh;
    });
  }

  auto item_state = std::make_unique<ItemState>();
  item_state->page = item_page;
  item_state->key = key;
  ObjectId item =
      ctx.CreateObject(ItemObjectType(), "Item_" + key,
                       std::move(item_state));
  OODB_RETURN_IF_ERROR(ctx.Call(item, Invocation("change", {params[1]})));
  OODB_RETURN_IF_ERROR(ctx.Call(
      snap.tree,
      Invocation("insert", {params[0],
                            Value(std::to_string(item.value))})));
  OODB_RETURN_IF_ERROR(ctx.Call(
      snap.list,
      Invocation("append", {params[0],
                            Value(std::to_string(item.value))})));
  ctx.SetCompensation(Invocation("erase", {params[0]}));
  *result = Value(static_cast<int64_t>(item.value));
  return Status::OK();
}

Status EncSearch(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.empty()) return Status::InvalidArgument("search needs a key");
  EncSnapshot snap = SnapEnc(ctx);
  Value item_id;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.tree, Invocation("search", {params[0]}), &item_id));
  if (item_id.IsNone()) {
    *result = Value();
    return Status::OK();
  }
  return ctx.Call(ObjectId(std::stoull(item_id.AsString())),
                  Invocation("read"), result);
}

Status EncChange(MethodContext& ctx, const ValueList& params,
                 Value* result) {
  if (params.size() < 2) {
    return Status::InvalidArgument("change needs key, data");
  }
  EncSnapshot snap = SnapEnc(ctx);
  Value item_id;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.tree, Invocation("search", {params[0]}), &item_id));
  if (item_id.IsNone()) {
    return Status::NotFound("no item '" + params[0].AsString() + "'");
  }
  Value old;
  OODB_RETURN_IF_ERROR(ctx.Call(ObjectId(std::stoull(item_id.AsString())),
                                Invocation("change", {params[1]}), &old));
  ctx.SetCompensation(Invocation("change", {params[0], old}));
  *result = old;
  return Status::OK();
}

Status EncErase(MethodContext& ctx, const ValueList& params,
                Value* result) {
  if (params.empty()) return Status::InvalidArgument("erase needs a key");
  EncSnapshot snap = SnapEnc(ctx);
  Value item_id;
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.tree, Invocation("search", {params[0]}), &item_id));
  if (item_id.IsNone()) {
    *result = Value();
    return Status::OK();
  }
  ObjectId item(std::stoull(item_id.AsString()));
  Value data;
  OODB_RETURN_IF_ERROR(ctx.Call(item, Invocation("read"), &data));
  OODB_RETURN_IF_ERROR(ctx.Call(item, Invocation("clear")));
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.tree, Invocation("erase", {params[0]})));
  OODB_RETURN_IF_ERROR(
      ctx.Call(snap.list, Invocation("remove", {params[0]})));
  ctx.SetCompensation(
      Invocation("insert", {params[0], Value(data.AsString())}));
  *result = data;
  return Status::OK();
}

Status EncReadSeq(MethodContext& ctx, const ValueList&, Value* result) {
  EncSnapshot snap = SnapEnc(ctx);
  return ctx.Call(snap.list, Invocation("readSeq"), result);
}

}  // namespace

const ObjectType* ItemObjectType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("read", "read");
    return new ObjectType("Item", std::move(spec), /*primitive=*/false);
  }();
  return type;
}

const ObjectType* LinkedListObjectType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("append", "append", diff);
    spec->SetPredicate("append", "remove", diff);
    spec->SetPredicate("remove", "remove", diff);
    spec->SetCommutes("readSeq", "readSeq");
    // removeSeq / restore (compensations) conflict with everything.
    return new ObjectType("LinkedList", std::move(spec),
                          /*primitive=*/false);
  }();
  return type;
}

const ObjectType* EncObjectType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "search", diff);
    spec->SetPredicate("insert", "change", diff);
    spec->SetPredicate("insert", "erase", diff);
    spec->SetPredicate("change", "change", diff);
    spec->SetPredicate("change", "search", diff);
    spec->SetPredicate("change", "erase", diff);
    spec->SetPredicate("erase", "erase", diff);
    spec->SetPredicate("erase", "search", diff);
    spec->SetCommutes("search", "search");
    spec->SetCommutes("readSeq", "readSeq");
    spec->SetCommutes("readSeq", "search");
    // insert/change/erase vs readSeq conflict (phantoms). All three
    // observer pairs above are independently re-derived by pass 6's
    // deep-observer rule (search and readSeq only reach observers), so
    // the inference drift gate pins this spec as exactly tight.
    return new ObjectType("Enc", std::move(spec), /*primitive=*/false);
  }();
  return type;
}

void Encyclopedia::RegisterMethods(Database* db) {
  TypeRegistry::Global().Register(ItemObjectType());
  TypeRegistry::Global().Register(LinkedListObjectType());
  TypeRegistry::Global().Register(EncObjectType());
  RegisterPageMethods(db);
  BpTree::RegisterMethods(db);
  db->Register(ItemObjectType(), "read", ItemRead);
  db->Register(ItemObjectType(), "change", ItemChange);
  db->Register(ItemObjectType(), "clear", ItemClear);
  db->Register(LinkedListObjectType(), "append", ListAppend);
  db->Register(LinkedListObjectType(), "readSeq", ListReadSeq);
  db->Register(LinkedListObjectType(), "remove", ListRemove);
  db->Register(LinkedListObjectType(), "removeSeq", ListRemoveSeq);
  db->Register(LinkedListObjectType(), "restore", ListRestore);
  db->Register(EncObjectType(), "insert", EncInsert);
  db->Register(EncObjectType(), "search", EncSearch);
  db->Register(EncObjectType(), "change", EncChange);
  db->Register(EncObjectType(), "erase", EncErase);
  db->Register(EncObjectType(), "readSeq", EncReadSeq);

  // Schema traits: the Fig 2 layering — Enc over BpTree, LinkedList and
  // Items; items and list entries live on shared pages.
  const std::vector<ValueList> keyed1 = {{Value("k1")}, {Value("k2")}};
  const std::vector<ValueList> keyed2 = {{Value("k1"), Value("d1")},
                                         {Value("k2"), Value("d2")}};
  db->DeclareTraits(ItemObjectType(), "read",
                    {.observer = true,
                     .calls = {{"Page", "read"}},
                     .samples = {{}},
                     .compensations = {}});
  db->DeclareTraits(ItemObjectType(), "change",
                    {.observer = false,
                     .calls = {{"Page", "read"}, {"Page", "write"}},
                     .samples = {{Value("d1")}, {Value("d2")}},
                     .compensations = {"clear", "change"}});
  db->DeclareTraits(ItemObjectType(), "clear",
                    {.observer = false,
                     .calls = {{"Page", "erase"}},
                     .samples = {{}},
                     .compensations = {"change"},
                     .undo_free = true});
  db->DeclareTraits(LinkedListObjectType(), "append",
                    {.observer = false,
                     .calls = {{"Page", "write"}},
                     .samples = {{Value("k1"), Value("7")},
                                 {Value("k2"), Value("9")}},
                     .compensations = {"removeSeq"}});
  db->DeclareTraits(LinkedListObjectType(), "readSeq",
                    {.observer = true,
                     .calls = {{"Page", "scan"}, {"Item", "read"}},
                     .samples = {{}},
                     .compensations = {}});
  db->DeclareTraits(LinkedListObjectType(), "remove",
                    {.observer = false,
                     .calls = {{"Page", "scan"}, {"Page", "erase"}},
                     .samples = keyed1,
                     .compensations = {"restore"},
                     .undo_free = true});
  db->DeclareTraits(LinkedListObjectType(), "removeSeq",
                    {.observer = false,
                     .calls = {{"Page", "contains"}, {"Page", "erase"}},
                     .samples = {{Value("000000000001")},
                                 {Value("000000000002")}},
                     .compensations = {"restore"},
                     .undo_free = true});
  db->DeclareTraits(LinkedListObjectType(), "restore",
                    {.observer = false,
                     .calls = {{"Page", "write"}},
                     .samples = {{Value("000000000001"), Value("e1")},
                                 {Value("000000000002"), Value("e2")}},
                     .compensations = {"removeSeq"}});
  db->DeclareTraits(EncObjectType(), "insert",
                    {.observer = false,
                     .calls = {{"BpTree", "search"},
                               {"BpTree", "insert"},
                               {"Item", "change"},
                               {"LinkedList", "append"}},
                     .samples = keyed2,
                     .compensations = {"erase"}});
  db->DeclareTraits(EncObjectType(), "search",
                    {.observer = true,
                     .calls = {{"BpTree", "search"}, {"Item", "read"}},
                     .samples = keyed1,
                     .compensations = {}});
  db->DeclareTraits(EncObjectType(), "change",
                    {.observer = false,
                     .calls = {{"BpTree", "search"}, {"Item", "change"}},
                     .samples = keyed2,
                     .compensations = {"change"}});
  db->DeclareTraits(EncObjectType(), "erase",
                    {.observer = false,
                     .calls = {{"BpTree", "search"},
                               {"BpTree", "erase"},
                               {"Item", "read"},
                               {"Item", "clear"},
                               {"LinkedList", "remove"}},
                     .samples = keyed1,
                     .compensations = {"insert"},
                     .undo_free = true});
  db->DeclareTraits(EncObjectType(), "readSeq",
                    {.observer = true,
                     .calls = {{"LinkedList", "readSeq"}},
                     .samples = {{}},
                     .compensations = {}});
}

ObjectId Encyclopedia::Create(Database* db, const std::string& name,
                              size_t leaf_capacity, size_t fanout,
                              size_t items_per_page,
                              size_t list_page_capacity) {
  ObjectId tree =
      BpTree::Create(db, name + ".BpTree", leaf_capacity, fanout);
  auto list_state = std::make_unique<LinkedListState>();
  list_state->page_capacity = list_page_capacity;
  ObjectId list = db->CreateObject(LinkedListObjectType(),
                                   name + ".LinkedList",
                                   std::move(list_state));
  auto enc_state = std::make_unique<EncState>();
  enc_state->tree = tree;
  enc_state->list = list;
  enc_state->items_per_page = items_per_page;
  return db->CreateObject(EncObjectType(), name, std::move(enc_state));
}

}  // namespace oodb
