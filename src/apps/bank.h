// Bank over accounts: the paper's Fig 1 "financial markets" column —
// short transactions on small objects — and the playground for the
// commutativity-granularity ablation (S4).
//
// The key modeling point (section 2: "the implementor of an object type
// ... can specify the semantics of the implemented object type ... the
// DBMS can connect the specified semantics of different object types in
// one framework"): the Bank type's commutativity must be *justified by*
// the account semantics underneath, because once a transfer action
// completes, its account-level locks pass up and only the bank-level
// lock keeps protecting it. Hence three bank/account semantic variants:
//
//   kEscrow     escrow accounts [9,14,17]: transfers/deposits/withdraws
//               commute unconditionally (admissibility is checked
//               atomically inside the account),
//   kNameOnly   accounts where only deposit/deposit commutes: two bank
//               operations commute iff every account they share is
//               touched by deposits (or reads) on both sides,
//   kReadWrite  classical R/W accounts: two bank operations commute iff
//               they share no account, or only read shared ones.

#pragma once

#include <string>
#include <vector>

#include "cc/database.h"
#include "containers/escrow.h"

namespace oodb {

enum class BankSemantics { kEscrow, kNameOnly, kReadWrite };

const char* BankSemanticsName(BankSemantics semantics);

struct BankState : public ObjectState {
  std::vector<ObjectId> accounts;
};

/// The Bank type for the given semantics (parameter-aware commutativity
/// over the account indices mentioned by each invocation).
const ObjectType* BankObjectType(BankSemantics semantics);

/// The matching account type (EscrowAccountType / NameOnlyAccountType /
/// RWAccountType).
const ObjectType* AccountTypeFor(BankSemantics semantics);

class Bank {
 public:
  /// Registers bank methods for the variant plus its account methods.
  static void RegisterMethods(Database* db, BankSemantics semantics);

  /// Creates a bank with `accounts` accounts, each holding
  /// `initial_balance`.
  static ObjectId Create(Database* db, const std::string& name,
                         BankSemantics semantics, size_t accounts,
                         int64_t initial_balance);

  static Invocation Transfer(int64_t from, int64_t to, int64_t amount) {
    return Invocation("transfer", {Value(from), Value(to), Value(amount)});
  }
  static Invocation Deposit(int64_t account, int64_t amount) {
    return Invocation("deposit", {Value(account), Value(amount)});
  }
  static Invocation Withdraw(int64_t account, int64_t amount) {
    return Invocation("withdraw", {Value(account), Value(amount)});
  }
  static Invocation Balance(int64_t account) {
    return Invocation("balance", {Value(account)});
  }
  /// Sums all balances (the consistency probe: the total is invariant
  /// under transfers).
  static Invocation Audit() { return Invocation("audit"); }
};

}  // namespace oodb
