// Cooperative document editing — the paper's opening motivation: "consider
// a publication system which allows the cooperative editing of documents
// by several authors (like this paper). Every author wants to write down
// his ideas immediately... If a system ensures that all authors see a
// consistent view, concurrent work is possible."
//
// A Document is a composite object over Section objects, each backed by
// a page. Edits of different sections commute; reading the whole
// document conflicts with every edit. Under the object-exclusive
// strawman, one author's open edit blocks all others; under open nested
// semantic locking, authors in different sections proceed concurrently.

#pragma once

#include <string>
#include <vector>

#include "cc/database.h"

namespace oodb {

struct SectionState : public ObjectState {
  ObjectId page;
};

struct DocumentState : public ObjectState {
  std::vector<ObjectId> sections;
};

/// read Θ read; edit conflicts with edit and read.
const ObjectType* SectionObjectType();

/// editSection(i, ..) Θ editSection(j, ..) iff i != j;
/// readSection(i) Θ editSection(j) iff i != j; readAll conflicts with
/// every edit; readAll Θ readAll Θ readSection.
const ObjectType* DocumentObjectType();

class Document {
 public:
  static void RegisterMethods(Database* db);

  /// Creates a document with `sections` empty sections.
  static ObjectId Create(Database* db, const std::string& name,
                         size_t sections);

  static Invocation EditSection(int64_t index, const std::string& text) {
    return Invocation("editSection", {Value(index), Value(text)});
  }
  static Invocation ReadSection(int64_t index) {
    return Invocation("readSection", {Value(index)});
  }
  static Invocation ReadAll() { return Invocation("readAll"); }
};

}  // namespace oodb
