// The paper's running application (section 2, Fig 2): an encyclopedia
// with often-changing items, indexed by a B+ tree and threaded through a
// linked list:
//
//   Enc ── BpTree ── Node* ── Leaf* ── LeafPage*   (keys -> item ids)
//    └──── LinkedList ── ListPage*                 (sequence of items)
//    └──── Item* ── ItemPage*                      (item contents)
//
// Every arrow is a message; items share pages (several items per item
// page, so concurrent changes to different items conflict at the page
// and commute at the item — the Fig 7 situation at Item8/Page4713).

#pragma once

#include <string>
#include <vector>

#include "cc/database.h"

namespace oodb {

/// Item: a handle onto (shared item page, key).
struct ItemState : public ObjectState {
  ObjectId page;
  std::string key;
};

/// LinkedList: item ids in insertion order, stored on list pages.
struct LinkedListState : public ObjectState {
  std::vector<ObjectId> pages;  ///< list pages, in order
  size_t page_capacity;
  uint64_t next_seq = 0;        ///< position counter for ordering
};

/// Enc: the encyclopedia root.
struct EncState : public ObjectState {
  ObjectId tree;
  ObjectId list;
  std::vector<ObjectId> item_pages;  ///< shared item pages
  size_t items_per_page;
  uint64_t item_count = 0;
};

/// read Θ read; change conflicts with read and change.
const ObjectType* ItemObjectType();

/// append Θ append (different keys); readSeq conflicts with append and
/// remove; readSeq Θ readSeq.
const ObjectType* LinkedListObjectType();

/// Keyed operations commute on distinct keys; readSeq conflicts with all
/// mutations; search Θ search Θ readSeq.
const ObjectType* EncObjectType();

/// The encyclopedia public interface.
class Encyclopedia {
 public:
  /// Registers all methods this app needs (pages, tree, list, item, enc).
  static void RegisterMethods(Database* db);

  /// Creates an empty encyclopedia.
  ///   leaf_capacity: keys per B+ tree leaf page (the paper notes real
  ///                  pages hold "rough up to 500" keys);
  ///   fanout:        routing entries per inner node;
  ///   items_per_page: items sharing one item page.
  static ObjectId Create(Database* db, const std::string& name,
                         size_t leaf_capacity = 64, size_t fanout = 64,
                         size_t items_per_page = 16,
                         size_t list_page_capacity = 256);

  // Invocation builders for the Enc methods.
  static Invocation Insert(const std::string& key, const std::string& data) {
    return Invocation("insert", {Value(key), Value(data)});
  }
  static Invocation Search(const std::string& key) {
    return Invocation("search", {Value(key)});
  }
  static Invocation Change(const std::string& key, const std::string& data) {
    return Invocation("change", {Value(key), Value(data)});
  }
  static Invocation Erase(const std::string& key) {
    return Invocation("erase", {Value(key)});
  }
  static Invocation ReadSeq() { return Invocation("readSeq"); }
};

}  // namespace oodb
