#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace oodb {

namespace hist_layout {

size_t BucketFor(uint64_t value) {
  if (value < 4) return static_cast<size_t>(value);
  // Octave = position of the highest set bit; 4 linear sub-buckets each.
  int octave = 63 - std::countl_zero(value);
  uint64_t base = uint64_t{1} << octave;
  uint64_t sub = (value - base) / ((base + 3) / 4);
  size_t idx = static_cast<size_t>(octave) * 4 + static_cast<size_t>(sub);
  return std::min(idx, kBucketCount - 1);
}

uint64_t BucketUpperBound(size_t bucket) {
  if (bucket < 4) return bucket;
  size_t octave = bucket / 4;
  size_t sub = bucket % 4;
  uint64_t base = uint64_t{1} << octave;
  return base + (base / 4) * (sub + 1);
}

uint64_t Quantile(const uint64_t* buckets, uint64_t count, uint64_t max,
                  double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * double(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets[i];
    if (seen > rank) return std::min(BucketUpperBound(i), max);
  }
  return max;
}

}  // namespace hist_layout

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

void Histogram::Add(uint64_t value) {
  ++buckets_[hist_layout::BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : double(sum_) / double(count_);
}

uint64_t Histogram::Quantile(double q) const {
  return hist_layout::Quantile(buckets_.data(), count_, max_, q);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Quantile(0.50)),
                static_cast<unsigned long long>(Quantile(0.95)),
                static_cast<unsigned long long>(Quantile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace oodb
