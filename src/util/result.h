// Result<T>: a value-or-Status type (the StatusOr idiom).

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace oodb {

/// Holds either a T or a non-OK Status.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) status_ = Status::Internal("OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

/// Propagates the error of a Result expression, else binds its value.
#define OODB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto OODB_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!OODB_CONCAT_(_res_, __LINE__).ok())        \
    return OODB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(OODB_CONCAT_(_res_, __LINE__)).value()

#define OODB_CONCAT_INNER_(a, b) a##b
#define OODB_CONCAT_(a, b) OODB_CONCAT_INNER_(a, b)

}  // namespace oodb
