#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace oodb {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
std::mutex g_mutex;
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

void LogLine(LogLevel level, const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kNone:
      return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace oodb
