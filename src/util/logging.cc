#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace oodb {

namespace {

int LevelFromEnv() {
  const char* env = std::getenv("OODB_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kError);
  }
  if (std::strcmp(env, "none") == 0) return 0;
  if (std::strcmp(env, "error") == 0) return 1;
  if (std::strcmp(env, "info") == 0) return 2;
  if (std::strcmp(env, "debug") == 0) return 3;
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') return env[0] - '0';
  std::fprintf(stderr,
               "[E] OODB_LOG_LEVEL='%s' not recognized "
               "(none|error|info|debug|0-3); using 'error'\n",
               env);
  return static_cast<int>(LogLevel::kError);
}

std::atomic<int>& LevelHolder() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

std::mutex g_mutex;

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelHolder().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelHolder().store(static_cast<int>(level), std::memory_order_relaxed);
}

uint64_t LogMonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point base = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           base)
          .count());
}

uint32_t LogThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void LogLine(LogLevel level, const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kNone:
      return;
  }
  uint64_t ns = LogMonotonicNanos();
  uint32_t tid = LogThreadId();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10.6f] [T%u] [%s] %s\n", double(ns) * 1e-9, tid,
               tag, message.c_str());
}

}  // namespace oodb
