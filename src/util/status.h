// Status: the error model used across the library.
//
// Following the RocksDB/Arrow idiom, no exceptions cross library
// boundaries; fallible operations return a Status (or a Result<T>, see
// util/result.h) that callers must inspect.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace oodb {

/// Error categories used throughout the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< Key / object / action does not exist.
  kAlreadyExists,     ///< Unique key or identifier collision.
  kConflict,          ///< Semantic conflict detected by concurrency control.
  kDeadlock,          ///< Wait-for cycle; transaction selected as victim.
  kAborted,           ///< Transaction aborted (voluntarily or by the system).
  kNotSerializable,   ///< Schedule fails an (oo-)serializability condition.
  kCapacity,          ///< Fixed-size structure (e.g. page) is full.
  kInternal,          ///< Invariant violation inside the library.
  kUnsupported,       ///< Operation not implemented for this object type.
};

/// Human-readable name of a StatusCode ("OK", "Conflict", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, value-semantic success-or-error type.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are ordered-comparable only on the code.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status NotSerializable(std::string msg) {
    return Status(StatusCode::kNotSerializable, std::move(msg));
  }
  static Status Capacity(std::string msg) {
    return Status(StatusCode::kCapacity, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsNotSerializable() const {
    return code_ == StatusCode::kNotSerializable;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define OODB_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::oodb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace oodb
