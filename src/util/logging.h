// Minimal leveled logging. Off by default; benchmarks and examples can
// raise the level, and the OODB_LOG_LEVEL environment variable
// ("none"/"error"/"info"/"debug" or 0-3) overrides the default without
// code changes. Thread-safe via a single mutex (logging is not on any
// hot path when disabled).
//
// Each line carries a monotonic timestamp (seconds since the first log
// call of the process) and a compact per-thread id, so interleaved
// output from harness workers can be read back in order:
//
//   [  0.003217] [T2] [I] message

#pragma once

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>

namespace oodb {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log level; default kError, overridable by OODB_LOG_LEVEL (read
/// once, at the first query). SetLogLevel wins over the environment.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Monotonic nanoseconds since the first logging call of this process
/// (the timestamp base of every LogLine prefix).
uint64_t LogMonotonicNanos();

/// Small dense id of the calling thread (1, 2, ... in first-log order).
uint32_t LogThreadId();

/// Writes one line to stderr with timestamp, thread-id, and level tags.
/// Prefer the macros below.
void LogLine(LogLevel level, const std::string& message);

}  // namespace oodb

#define OODB_LOG(level, expr)                                      \
  do {                                                             \
    if (static_cast<int>(::oodb::GetLogLevel()) >=                 \
        static_cast<int>(level)) {                                 \
      std::ostringstream _oss;                                     \
      _oss << expr;                                                \
      ::oodb::LogLine(level, _oss.str());                          \
    }                                                              \
  } while (0)

#define OODB_ERROR(expr) OODB_LOG(::oodb::LogLevel::kError, expr)
#define OODB_INFO(expr) OODB_LOG(::oodb::LogLevel::kInfo, expr)
#define OODB_DEBUG(expr) OODB_LOG(::oodb::LogLevel::kDebug, expr)
