// Minimal leveled logging. Off by default; benchmarks and examples can
// raise the level. Thread-safe via a single mutex (logging is not on any
// hot path when disabled).

#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace oodb {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log level; default kError.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Writes one line to stderr with a level tag. Prefer the macros below.
void LogLine(LogLevel level, const std::string& message);

}  // namespace oodb

#define OODB_LOG(level, expr)                                      \
  do {                                                             \
    if (static_cast<int>(::oodb::GetLogLevel()) >=                 \
        static_cast<int>(level)) {                                 \
      std::ostringstream _oss;                                     \
      _oss << expr;                                                \
      ::oodb::LogLine(level, _oss.str());                          \
    }                                                              \
  } while (0)

#define OODB_ERROR(expr) OODB_LOG(::oodb::LogLevel::kError, expr)
#define OODB_INFO(expr) OODB_LOG(::oodb::LogLevel::kInfo, expr)
#define OODB_DEBUG(expr) OODB_LOG(::oodb::LogLevel::kDebug, expr)
