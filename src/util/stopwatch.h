// Stopwatch: steady-clock timing helper for the harness.

#pragma once

#include <chrono>
#include <cstdint>

namespace oodb {

/// Measures elapsed wall time on the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const { return double(ElapsedNanos()) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oodb
