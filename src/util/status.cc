#include "util/status.h"

namespace oodb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kNotSerializable:
      return "NotSerializable";
    case StatusCode::kCapacity:
      return "Capacity";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace oodb
