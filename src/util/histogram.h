// Histogram and counter types for the benchmark harness.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace oodb {

/// A fixed-layout log-bucketed histogram of nonnegative values
/// (typically latencies in nanoseconds). Thread-compatible; use one per
/// thread and Merge for cross-thread aggregation.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Approximate quantile (q in [0,1]) from bucket boundaries.
  uint64_t Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr size_t kBucketCount = 64 * 4;  // 4 sub-buckets per octave
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// A set of named monotonic counters shared across worker threads.
struct RunCounters {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> conflicts{0};     ///< lock waits observed
  std::atomic<uint64_t> operations{0};    ///< leaf-level operations executed
  std::atomic<uint64_t> retries{0};

  void Reset() {
    committed = aborted = deadlocks = conflicts = operations = retries = 0;
  }
};

}  // namespace oodb
