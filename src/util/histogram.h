// Histogram and counter types for the benchmark harness.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace oodb {

/// The one log-bucketed layout shared by every histogram in the
/// repository (the thread-compatible Histogram below and the atomic
/// obs::HistogramMetric): 4 linear sub-buckets per octave. Keeping the
/// bucket math here means harness latency quantiles, lock-wait
/// histograms, and metric snapshots all agree on boundaries.
namespace hist_layout {

constexpr size_t kBucketCount = 64 * 4;

/// Bucket index of `value`.
size_t BucketFor(uint64_t value);

/// Inclusive upper bound of `bucket`.
uint64_t BucketUpperBound(size_t bucket);

/// Approximate quantile (q in [0,1]) from a bucket array of this
/// layout; `max` caps the answer at the largest observed value.
uint64_t Quantile(const uint64_t* buckets, uint64_t count, uint64_t max,
                  double q);

}  // namespace hist_layout

/// A fixed-layout log-bucketed histogram of nonnegative values
/// (typically latencies in nanoseconds). Thread-compatible; use one per
/// thread and Merge for cross-thread aggregation. For a thread-safe
/// variant registered by name, see obs::HistogramMetric, which shares
/// this bucket layout.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Approximate quantile (q in [0,1]) from bucket boundaries.
  uint64_t Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr size_t kBucketCount = hist_layout::kBucketCount;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace oodb
