// Open-addressing hash containers for u64 id keys (action, object, and
// transaction ids). The node-based std containers pay one heap
// allocation per element and scatter elements across the heap; the
// dependency analysis inserts and probes hundreds of thousands of graph
// edges, where both costs dominate. These containers keep elements in
// one dense vector (which is also the iteration order: insertion order,
// deterministic across platforms) and probe through a separate
// linear-probing index table of element positions.
//
// Deliberately minimal: no erase (the analysis only grows relations),
// keys are plain u64, and growth doubles the table. Not thread-safe.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oodb {

namespace flat_internal {

/// splitmix64 finalizer: ids are small sequential integers, so identity
/// hashing (std::hash) would pile them into neighboring buckets;
/// mixing spreads the probe sequences.
inline size_t Mix(uint64_t key) {
  uint64_t x = key + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return size_t(x ^ (x >> 31));
}

}  // namespace flat_internal

/// Insertion-ordered set of u64 keys.
class FlatSet64 {
 public:
  using value_type = uint64_t;
  using const_iterator = const uint64_t*;

  /// Inserts `key`; returns true when it was not yet present.
  bool insert(uint64_t key) {
    if (4 * (elements_.size() + 1) > 3 * table_.size()) Grow();
    const size_t mask = table_.size() - 1;
    size_t idx = flat_internal::Mix(key) & mask;
    for (;;) {
      const uint32_t slot = table_[idx];
      if (slot == kEmpty) {
        table_[idx] = uint32_t(elements_.size());
        elements_.push_back(key);
        return true;
      }
      if (elements_[slot] == key) return false;
      idx = (idx + 1) & mask;
    }
  }

  bool contains(uint64_t key) const {
    if (elements_.empty()) return false;
    const size_t mask = table_.size() - 1;
    size_t idx = flat_internal::Mix(key) & mask;
    for (;;) {
      const uint32_t slot = table_[idx];
      if (slot == kEmpty) return false;
      if (elements_[slot] == key) return true;
      idx = (idx + 1) & mask;
    }
  }
  size_t count(uint64_t key) const { return contains(key) ? 1 : 0; }

  void reserve(size_t n) {
    size_t want = 16;
    while (3 * want < 4 * n) want *= 2;
    if (want > table_.size()) Rebuild(want);
  }

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const_iterator begin() const { return elements_.data(); }
  const_iterator end() const { return elements_.data() + elements_.size(); }

  void clear() {
    elements_.clear();
    table_.clear();
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  void Grow() { Rebuild(table_.empty() ? 16 : table_.size() * 2); }

  void Rebuild(size_t capacity) {
    table_.assign(capacity, kEmpty);
    const size_t mask = capacity - 1;
    for (size_t i = 0; i < elements_.size(); ++i) {
      size_t idx = flat_internal::Mix(elements_[i]) & mask;
      while (table_[idx] != kEmpty) idx = (idx + 1) & mask;
      table_[idx] = uint32_t(i);
    }
  }

  std::vector<uint64_t> elements_;  ///< insertion order; the iteration
  std::vector<uint32_t> table_;     ///< element positions, linear probing
};

/// Map from u64 keys to `V`, same layout as FlatSet64. operator[]
/// default-constructs absent entries, like std::unordered_map.
template <typename V>
class FlatMap64 {
 public:
  V& operator[](uint64_t key) {
    if (4 * (keys_.size() + 1) > 3 * table_.size()) Grow();
    const size_t mask = table_.size() - 1;
    size_t idx = flat_internal::Mix(key) & mask;
    for (;;) {
      const uint32_t slot = table_[idx];
      if (slot == kEmpty) {
        table_[idx] = uint32_t(keys_.size());
        keys_.push_back(key);
        values_.emplace_back();
        return values_.back();
      }
      if (keys_[slot] == key) return values_[slot];
      idx = (idx + 1) & mask;
    }
  }

  V* find(uint64_t key) {
    if (keys_.empty()) return nullptr;
    const size_t mask = table_.size() - 1;
    size_t idx = flat_internal::Mix(key) & mask;
    for (;;) {
      const uint32_t slot = table_[idx];
      if (slot == kEmpty) return nullptr;
      if (keys_[slot] == key) return &values_[slot];
      idx = (idx + 1) & mask;
    }
  }

  void reserve(size_t n) {
    size_t want = 16;
    while (3 * want < 4 * n) want *= 2;
    if (want > table_.size()) Rebuild(want);
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  void clear() {
    keys_.clear();
    values_.clear();
    table_.clear();
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  void Grow() { Rebuild(table_.empty() ? 16 : table_.size() * 2); }

  void Rebuild(size_t capacity) {
    table_.assign(capacity, kEmpty);
    const size_t mask = capacity - 1;
    for (size_t i = 0; i < keys_.size(); ++i) {
      size_t idx = flat_internal::Mix(keys_[i]) & mask;
      while (table_[idx] != kEmpty) idx = (idx + 1) & mask;
      table_[idx] = uint32_t(i);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  std::vector<uint32_t> table_;
};

}  // namespace oodb
