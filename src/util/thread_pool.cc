#include "util/thread_pool.h"

namespace oodb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(num_threads(), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Stack state is safe: we block below until every worker finished.
  std::atomic<size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t finished = 0;
  for (size_t w = 0; w < workers; ++w) {
    Submit([&, n] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++finished == workers) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return finished == workers; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace oodb
