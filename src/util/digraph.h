// Digraph: a small directed-graph toolkit.
//
// The serializability machinery of the paper reduces to relations over
// actions and transactions: dependency relations are edge sets, acyclicity
// is Def 13(ii)/Def 16(ii), equivalence to a serial schedule is the
// existence of a topological order, and dependency inheritance uses
// reachability. Digraph supplies exactly those primitives.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_hash.h"

namespace oodb {

/// A directed graph over dense uint64 node identifiers.
///
/// Nodes exist implicitly once mentioned by AddNode/AddEdge. Parallel
/// edges collapse (the graph stores a relation, not a multigraph).
class Digraph {
 public:
  using NodeId = uint64_t;
  /// Successor sets iterate in edge-insertion order (deterministic
  /// across platforms, unlike a node-based hash set) and probe without
  /// per-element allocations — the dependency fixpoint inserts and
  /// tests hundreds of thousands of edges.
  using SuccessorSet = FlatSet64;

  /// Pre-sizes the adjacency structures for `nodes` nodes (an upper
  /// bound; growing past it stays correct, just slower).
  void Reserve(size_t nodes);

  /// Ensures `n` exists (isolated nodes matter for topological orders).
  void AddNode(NodeId n);

  /// Ensures `n` exists and pre-sizes its successor set for `count`
  /// edges. Bulk loaders that know out-degrees up front (e.g. from a
  /// counting pre-pass) avoid every rehash of the successor set.
  void ReserveSuccessors(NodeId n, size_t count);

  /// Adds the edge `from -> to` (and both endpoints). Self-loops allowed;
  /// a self-loop makes the graph cyclic. Returns true when the edge is
  /// new, false when it already existed — so callers running a fixpoint
  /// need no separate HasEdge probe.
  bool AddEdge(NodeId from, NodeId to);

  bool HasNode(NodeId n) const;
  bool HasEdge(NodeId from, NodeId to) const;

  size_t NodeCount() const { return adjacency_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// Successors of `n` (empty if unknown node), in insertion order.
  const SuccessorSet& Successors(NodeId n) const;

  /// All nodes, in insertion order.
  const std::vector<NodeId>& Nodes() const { return node_order_; }

  /// True iff the graph contains a directed cycle.
  bool HasCycle() const;

  /// True iff the union of this graph with `extra` contains a directed
  /// cycle, without materializing the union (Def 16 ii runs this per
  /// object; copying the action-dependency relation just to test
  /// acyclicity dominated the check's cost).
  bool HasCycleWith(const Digraph& extra) const;

  /// Returns one directed cycle as a node sequence (first == last), or
  /// nullopt when acyclic. Useful for diagnostics.
  std::optional<std::vector<NodeId>> FindCycle() const;

  /// The shortest cycle through `node` (first == last == `node`), found
  /// by BFS, or nullopt when no cycle passes through it. Deterministic:
  /// ties are broken by successor insertion order.
  std::optional<std::vector<NodeId>> FindShortestCycleThrough(
      NodeId node) const;

  /// A minimum-length cycle of the whole graph, or nullopt when
  /// acyclic. Deterministic: among equally short cycles the one through
  /// the earliest-inserted start node wins, then insertion-order BFS
  /// tie-breaks. Witness extraction wants the smallest explanation, not
  /// whichever back edge a DFS happens to hit first.
  std::optional<std::vector<NodeId>> FindShortestCycle() const;

  /// FindShortestCycle over the union of this graph with `extra`,
  /// without materializing the union (the Def 16 ii witness runs on
  /// action_deps ∪ added_deps per object).
  std::optional<std::vector<NodeId>> FindShortestCycleWith(
      const Digraph& extra) const;

  /// A topological order of all nodes, or nullopt when cyclic.
  std::optional<std::vector<NodeId>> TopologicalOrder() const;

  /// True iff `to` is reachable from `from` via >= 1 edge.
  bool Reaches(NodeId from, NodeId to) const;

  /// All nodes reachable from `from` via >= 1 edge.
  std::unordered_set<NodeId> ReachableFrom(NodeId from) const;

  /// The transitive closure as a new graph (edge a->b iff Reaches(a,b)).
  Digraph TransitiveClosure() const;

  /// Merges all edges (and nodes) of `other` into this graph.
  void UnionWith(const Digraph& other);

  /// Strongly connected components (Tarjan), each a list of nodes.
  /// Components are returned in reverse topological order.
  std::vector<std::vector<NodeId>> StronglyConnectedComponents() const;

  /// Renders "a->b, c->d, ..." with a node formatter, for diagnostics.
  std::string ToString(
      const std::function<std::string(NodeId)>& fmt = nullptr) const;

 private:
  std::optional<std::vector<NodeId>> internal_ShortestCycleThrough(
      NodeId node, const Digraph* extra) const;
  std::optional<std::vector<NodeId>> internal_ShortestCycle(
      const Digraph* extra) const;

  std::unordered_map<NodeId, SuccessorSet> adjacency_;
  std::vector<NodeId> node_order_;
  size_t edge_count_ = 0;
};

}  // namespace oodb
