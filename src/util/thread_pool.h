// ThreadPool: a fixed-size worker pool for the benchmark harness and
// stress tests.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oodb {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// Submit is thread-safe. The destructor drains outstanding tasks and
/// joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  /// Runs `fn(i)` for every i in [0, n), distributing indices across
  /// the workers, and blocks until all calls returned. Indices are
  /// handed out dynamically, so uneven per-index cost balances itself.
  /// Must not be called from inside a pool task (it would wait on the
  /// worker it occupies).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace oodb
