#include "util/digraph.h"

#include <algorithm>
#include <deque>

namespace oodb {

namespace {
const std::unordered_set<Digraph::NodeId>& EmptySet() {
  static const std::unordered_set<Digraph::NodeId> kEmpty;
  return kEmpty;
}
}  // namespace

void Digraph::AddNode(NodeId n) {
  auto [it, inserted] = adjacency_.try_emplace(n);
  if (inserted) node_order_.push_back(n);
}

void Digraph::AddEdge(NodeId from, NodeId to) {
  AddNode(from);
  AddNode(to);
  if (adjacency_[from].insert(to).second) ++edge_count_;
}

bool Digraph::HasNode(NodeId n) const { return adjacency_.count(n) > 0; }

bool Digraph::HasEdge(NodeId from, NodeId to) const {
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) > 0;
}

const std::unordered_set<Digraph::NodeId>& Digraph::Successors(
    NodeId n) const {
  auto it = adjacency_.find(n);
  return it == adjacency_.end() ? EmptySet() : it->second;
}

bool Digraph::HasCycle() const { return FindCycle().has_value(); }

std::optional<std::vector<Digraph::NodeId>> Digraph::FindCycle() const {
  // Iterative DFS with colors; reconstructs the cycle from the DFS stack.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<NodeId, Color> color;
  color.reserve(adjacency_.size());
  for (NodeId n : node_order_) color[n] = kWhite;

  struct Frame {
    NodeId node;
    std::unordered_set<NodeId>::const_iterator next;
  };

  for (NodeId start : node_order_) {
    if (color[start] != kWhite) continue;
    std::vector<Frame> stack;
    std::vector<NodeId> path;
    color[start] = kGray;
    stack.push_back({start, Successors(start).begin()});
    path.push_back(start);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = Successors(f.node);
      if (f.next == succ.end()) {
        color[f.node] = kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      NodeId child = *f.next;
      ++f.next;
      if (color[child] == kGray) {
        // Found a back edge; slice the path from child to the top.
        std::vector<NodeId> cycle;
        auto it = std::find(path.begin(), path.end(), child);
        cycle.assign(it, path.end());
        cycle.push_back(child);
        return cycle;
      }
      if (color[child] == kWhite) {
        color[child] = kGray;
        stack.push_back({child, Successors(child).begin()});
        path.push_back(child);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<Digraph::NodeId>> Digraph::TopologicalOrder()
    const {
  // Kahn's algorithm; preserves insertion order among ready nodes so the
  // result is deterministic.
  std::unordered_map<NodeId, size_t> in_degree;
  for (NodeId n : node_order_) in_degree[n] = 0;
  for (const auto& [n, succ] : adjacency_) {
    (void)n;
    for (NodeId s : succ) ++in_degree[s];
  }
  std::deque<NodeId> ready;
  for (NodeId n : node_order_) {
    if (in_degree[n] == 0) ready.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(node_order_.size());
  while (!ready.empty()) {
    NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeId s : Successors(n)) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != node_order_.size()) return std::nullopt;
  return order;
}

bool Digraph::Reaches(NodeId from, NodeId to) const {
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> frontier;
  for (NodeId s : Successors(from)) {
    if (visited.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    if (n == to) return true;
    for (NodeId s : Successors(n)) {
      if (visited.insert(s).second) frontier.push_back(s);
    }
  }
  return false;
}

std::unordered_set<Digraph::NodeId> Digraph::ReachableFrom(
    NodeId from) const {
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> frontier;
  for (NodeId s : Successors(from)) {
    if (visited.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    for (NodeId s : Successors(n)) {
      if (visited.insert(s).second) frontier.push_back(s);
    }
  }
  return visited;
}

Digraph Digraph::TransitiveClosure() const {
  Digraph closure;
  for (NodeId n : node_order_) {
    closure.AddNode(n);
    for (NodeId r : ReachableFrom(n)) closure.AddEdge(n, r);
  }
  return closure;
}

void Digraph::UnionWith(const Digraph& other) {
  for (NodeId n : other.node_order_) AddNode(n);
  for (const auto& [n, succ] : other.adjacency_) {
    for (NodeId s : succ) AddEdge(n, s);
  }
}

std::vector<std::vector<Digraph::NodeId>>
Digraph::StronglyConnectedComponents() const {
  // Iterative Tarjan.
  struct NodeState {
    uint32_t index = 0;
    uint32_t lowlink = 0;
    bool on_stack = false;
    bool visited = false;
  };
  std::unordered_map<NodeId, NodeState> state;
  state.reserve(adjacency_.size());
  std::vector<NodeId> scc_stack;
  std::vector<std::vector<NodeId>> components;
  uint32_t next_index = 0;

  struct Frame {
    NodeId node;
    std::unordered_set<NodeId>::const_iterator next;
  };

  for (NodeId root : node_order_) {
    if (state[root].visited) continue;
    std::vector<Frame> stack;
    auto push = [&](NodeId n) {
      NodeState& st = state[n];
      st.visited = true;
      st.index = st.lowlink = next_index++;
      st.on_stack = true;
      scc_stack.push_back(n);
      stack.push_back({n, Successors(n).begin()});
    };
    push(root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = Successors(f.node);
      if (f.next != succ.end()) {
        NodeId child = *f.next;
        ++f.next;
        if (!state[child].visited) {
          push(child);
        } else if (state[child].on_stack) {
          state[f.node].lowlink =
              std::min(state[f.node].lowlink, state[child].index);
        }
        continue;
      }
      // Finished f.node.
      NodeState& st = state[f.node];
      if (st.lowlink == st.index) {
        std::vector<NodeId> component;
        NodeId member;
        do {
          member = scc_stack.back();
          scc_stack.pop_back();
          state[member].on_stack = false;
          component.push_back(member);
        } while (member != f.node);
        components.push_back(std::move(component));
      }
      NodeId done = f.node;
      stack.pop_back();
      if (!stack.empty()) {
        state[stack.back().node].lowlink =
            std::min(state[stack.back().node].lowlink, state[done].lowlink);
      }
    }
  }
  return components;
}

std::string Digraph::ToString(
    const std::function<std::string(NodeId)>& fmt) const {
  auto name = [&](NodeId n) {
    return fmt ? fmt(n) : std::to_string(n);
  };
  std::string out;
  bool first = true;
  for (NodeId n : node_order_) {
    // Deterministic edge order for readable output.
    std::vector<NodeId> succ(Successors(n).begin(), Successors(n).end());
    std::sort(succ.begin(), succ.end());
    for (NodeId s : succ) {
      if (!first) out += ", ";
      first = false;
      out += name(n) + "->" + name(s);
    }
  }
  return out;
}

}  // namespace oodb
