#include "util/digraph.h"

#include <algorithm>
#include <deque>

namespace oodb {

namespace {
const Digraph::SuccessorSet& EmptySet() {
  static const Digraph::SuccessorSet kEmpty;
  return kEmpty;
}
}  // namespace

void Digraph::Reserve(size_t nodes) {
  adjacency_.reserve(nodes);
  node_order_.reserve(nodes);
}

void Digraph::AddNode(NodeId n) {
  auto [it, inserted] = adjacency_.try_emplace(n);
  if (inserted) node_order_.push_back(n);
}

void Digraph::ReserveSuccessors(NodeId n, size_t count) {
  auto [it, inserted] = adjacency_.try_emplace(n);
  if (inserted) node_order_.push_back(n);
  it->second.reserve(count);
}

bool Digraph::AddEdge(NodeId from, NodeId to) {
  auto [fit, fins] = adjacency_.try_emplace(from);
  if (fins) node_order_.push_back(from);
  auto [tit, tins] = adjacency_.try_emplace(to);
  if (tins) node_order_.push_back(to);
  // Inserting `to` may have rehashed the table and invalidated `fit`;
  // refetch only in that (cold) case — the hot fixpoint path adds edges
  // between known nodes and keeps the single lookup.
  auto& successors = tins ? adjacency_.find(from)->second : fit->second;
  if (successors.insert(to)) {
    ++edge_count_;
    return true;
  }
  return false;
}

bool Digraph::HasNode(NodeId n) const { return adjacency_.count(n) > 0; }

bool Digraph::HasEdge(NodeId from, NodeId to) const {
  // Fast path for the fixpoint's hottest query: relations start empty
  // and most stay small, so skip the hashing when there is nothing to
  // find.
  if (edge_count_ == 0) return false;
  auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) > 0;
}

const Digraph::SuccessorSet& Digraph::Successors(NodeId n) const {
  auto it = adjacency_.find(n);
  return it == adjacency_.end() ? EmptySet() : it->second;
}

bool Digraph::HasCycle() const { return FindCycle().has_value(); }

bool Digraph::HasCycleWith(const Digraph& extra) const {
  // Colored DFS like FindCycle, but each node's successor list is the
  // concatenation of both graphs' lists, read in place.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  // FlatMap64 default-constructs absent entries to 0 == kWhite, so the
  // map needs no seeding pass.
  FlatMap64<uint8_t> color;
  color.reserve(adjacency_.size() + extra.adjacency_.size());

  struct Frame {
    NodeId node;
    SuccessorSet::const_iterator next;
    bool in_extra;  // currently walking extra's successor list
  };
  auto roots = [&](const std::vector<NodeId>& order) -> bool {
    for (NodeId start : order) {
      if (color[start] != kWhite) continue;
      std::vector<Frame> stack;
      color[start] = kGray;
      stack.push_back({start, Successors(start).begin(), false});
      while (!stack.empty()) {
        Frame& f = stack.back();
        const auto& succ =
            f.in_extra ? extra.Successors(f.node) : Successors(f.node);
        if (f.next == succ.end()) {
          if (!f.in_extra) {
            f.in_extra = true;
            f.next = extra.Successors(f.node).begin();
            continue;
          }
          color[f.node] = kBlack;
          stack.pop_back();
          continue;
        }
        NodeId child = *f.next;
        ++f.next;
        if (color[child] == kGray) return true;
        if (color[child] == kWhite) {
          color[child] = kGray;
          stack.push_back({child, Successors(child).begin(), false});
        }
      }
    }
    return false;
  };
  return roots(node_order_) || roots(extra.node_order_);
}

std::optional<std::vector<Digraph::NodeId>> Digraph::FindCycle() const {
  // Iterative DFS with colors; reconstructs the cycle from the DFS stack.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  FlatMap64<uint8_t> color;  // absent == 0 == kWhite
  color.reserve(adjacency_.size());

  struct Frame {
    NodeId node;
    SuccessorSet::const_iterator next;
  };

  for (NodeId start : node_order_) {
    if (color[start] != kWhite) continue;
    std::vector<Frame> stack;
    std::vector<NodeId> path;
    color[start] = kGray;
    stack.push_back({start, Successors(start).begin()});
    path.push_back(start);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = Successors(f.node);
      if (f.next == succ.end()) {
        color[f.node] = kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      NodeId child = *f.next;
      ++f.next;
      if (color[child] == kGray) {
        // Found a back edge; slice the path from child to the top.
        std::vector<NodeId> cycle;
        auto it = std::find(path.begin(), path.end(), child);
        cycle.assign(it, path.end());
        cycle.push_back(child);
        return cycle;
      }
      if (color[child] == kWhite) {
        color[child] = kGray;
        stack.push_back({child, Successors(child).begin()});
        path.push_back(child);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<Digraph::NodeId>>
Digraph::FindShortestCycleThrough(NodeId node) const {
  return internal_ShortestCycleThrough(node, nullptr);
}

std::optional<std::vector<Digraph::NodeId>> Digraph::FindShortestCycle()
    const {
  return internal_ShortestCycle(nullptr);
}

std::optional<std::vector<Digraph::NodeId>> Digraph::FindShortestCycleWith(
    const Digraph& extra) const {
  return internal_ShortestCycle(&extra);
}

std::optional<std::vector<Digraph::NodeId>>
Digraph::internal_ShortestCycleThrough(NodeId node,
                                       const Digraph* extra) const {
  // BFS from `node` back to itself. The first rediscovery of `node` is
  // at minimal depth, and scanning successors in insertion order makes
  // the tie-break among equally short cycles deterministic.
  auto successors_of = [&](NodeId n, const std::function<void(NodeId)>& fn) {
    for (NodeId s : Successors(n)) fn(s);
    if (extra != nullptr) {
      for (NodeId s : extra->Successors(n)) fn(s);
    }
  };
  FlatMap64<uint64_t> parent;  // child -> predecessor on the BFS tree
  std::deque<NodeId> frontier;
  std::optional<NodeId> closing;  // predecessor of node on the cycle
  auto visit = [&](NodeId from, NodeId to) {
    if (closing) return;
    if (to == node) {
      closing = from;
      return;
    }
    if (parent.find(to) == nullptr) {
      parent[to] = from;
      frontier.push_back(to);
    }
  };
  successors_of(node, [&](NodeId s) { visit(node, s); });
  while (!closing && !frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop_front();
    successors_of(cur, [&](NodeId s) { visit(cur, s); });
  }
  if (!closing) return std::nullopt;
  std::vector<NodeId> cycle{node};
  for (NodeId cur = *closing; cur != node; cur = NodeId(parent[cur])) {
    cycle.push_back(cur);
  }
  cycle.push_back(node);
  // The parent walk listed the interior in reverse; the closing `node`
  // copies are already in place at both ends.
  std::reverse(cycle.begin() + 1, cycle.end() - 1);
  return cycle;
}

std::optional<std::vector<Digraph::NodeId>> Digraph::internal_ShortestCycle(
    const Digraph* extra) const {
  std::optional<std::vector<NodeId>> best;
  auto consider = [&](NodeId start) {
    if (best && best->size() == 2) return;  // a self-loop cannot be beaten
    auto cycle = internal_ShortestCycleThrough(start, extra);
    // Strictly-shorter wins, so among equal lengths the
    // earliest-inserted start node's cycle is kept.
    if (cycle && (!best || cycle->size() < best->size())) {
      best = std::move(cycle);
    }
  };
  for (NodeId start : node_order_) consider(start);
  if (extra != nullptr) {
    for (NodeId start : extra->node_order_) {
      if (!HasNode(start)) consider(start);
    }
  }
  return best;
}

std::optional<std::vector<Digraph::NodeId>> Digraph::TopologicalOrder()
    const {
  // Kahn's algorithm; preserves insertion order among ready nodes so the
  // result is deterministic.
  std::unordered_map<NodeId, size_t> in_degree;
  for (NodeId n : node_order_) in_degree[n] = 0;
  for (const auto& [n, succ] : adjacency_) {
    (void)n;
    for (NodeId s : succ) ++in_degree[s];
  }
  std::deque<NodeId> ready;
  for (NodeId n : node_order_) {
    if (in_degree[n] == 0) ready.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(node_order_.size());
  while (!ready.empty()) {
    NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeId s : Successors(n)) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != node_order_.size()) return std::nullopt;
  return order;
}

bool Digraph::Reaches(NodeId from, NodeId to) const {
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> frontier;
  for (NodeId s : Successors(from)) {
    if (visited.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    if (n == to) return true;
    for (NodeId s : Successors(n)) {
      if (visited.insert(s).second) frontier.push_back(s);
    }
  }
  return false;
}

std::unordered_set<Digraph::NodeId> Digraph::ReachableFrom(
    NodeId from) const {
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> frontier;
  for (NodeId s : Successors(from)) {
    if (visited.insert(s).second) frontier.push_back(s);
  }
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    for (NodeId s : Successors(n)) {
      if (visited.insert(s).second) frontier.push_back(s);
    }
  }
  return visited;
}

Digraph Digraph::TransitiveClosure() const {
  Digraph closure;
  for (NodeId n : node_order_) {
    closure.AddNode(n);
    // ReachableFrom hands back a hash set; sort before inserting so the
    // closure's successor sets are deterministic.
    std::unordered_set<NodeId> reachable = ReachableFrom(n);
    std::vector<NodeId> sorted(reachable.begin(), reachable.end());
    std::sort(sorted.begin(), sorted.end());
    for (NodeId r : sorted) closure.AddEdge(n, r);
  }
  return closure;
}

void Digraph::UnionWith(const Digraph& other) {
  // Walk other's nodes and successors in insertion order — NOT its
  // adjacency hash map — so the merged graph's node_order_ and
  // successor sets (and therefore every cycle a later walk renders) are
  // byte-stable across runs and platforms.
  for (NodeId n : other.node_order_) AddNode(n);
  for (NodeId n : other.node_order_) {
    for (NodeId s : other.Successors(n)) AddEdge(n, s);
  }
}

std::vector<std::vector<Digraph::NodeId>>
Digraph::StronglyConnectedComponents() const {
  // Iterative Tarjan.
  struct NodeState {
    uint32_t index = 0;
    uint32_t lowlink = 0;
    bool on_stack = false;
    bool visited = false;
  };
  std::unordered_map<NodeId, NodeState> state;
  state.reserve(adjacency_.size());
  std::vector<NodeId> scc_stack;
  std::vector<std::vector<NodeId>> components;
  uint32_t next_index = 0;

  struct Frame {
    NodeId node;
    SuccessorSet::const_iterator next;
  };

  for (NodeId root : node_order_) {
    if (state[root].visited) continue;
    std::vector<Frame> stack;
    auto push = [&](NodeId n) {
      NodeState& st = state[n];
      st.visited = true;
      st.index = st.lowlink = next_index++;
      st.on_stack = true;
      scc_stack.push_back(n);
      stack.push_back({n, Successors(n).begin()});
    };
    push(root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& succ = Successors(f.node);
      if (f.next != succ.end()) {
        NodeId child = *f.next;
        ++f.next;
        if (!state[child].visited) {
          push(child);
        } else if (state[child].on_stack) {
          state[f.node].lowlink =
              std::min(state[f.node].lowlink, state[child].index);
        }
        continue;
      }
      // Finished f.node.
      NodeState& st = state[f.node];
      if (st.lowlink == st.index) {
        std::vector<NodeId> component;
        NodeId member;
        do {
          member = scc_stack.back();
          scc_stack.pop_back();
          state[member].on_stack = false;
          component.push_back(member);
        } while (member != f.node);
        components.push_back(std::move(component));
      }
      NodeId done = f.node;
      stack.pop_back();
      if (!stack.empty()) {
        state[stack.back().node].lowlink =
            std::min(state[stack.back().node].lowlink, state[done].lowlink);
      }
    }
  }
  return components;
}

std::string Digraph::ToString(
    const std::function<std::string(NodeId)>& fmt) const {
  auto name = [&](NodeId n) {
    return fmt ? fmt(n) : std::to_string(n);
  };
  std::string out;
  bool first = true;
  for (NodeId n : node_order_) {
    // Deterministic edge order for readable output.
    std::vector<NodeId> succ(Successors(n).begin(), Successors(n).end());
    std::sort(succ.begin(), succ.end());
    for (NodeId s : succ) {
      if (!first) out += ", ";
      first = false;
      // Sequential appends, not a temporary-chaining `a + "->" + b`:
      // this runs once per edge.
      out += name(n);
      out += "->";
      out += name(s);
    }
  }
  return out;
}

}  // namespace oodb
