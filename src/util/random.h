// Deterministic pseudo-random utilities for workloads and property tests.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oodb {

/// A small, fast, seedable PRNG (xorshift128+). Deterministic across
/// platforms so tests and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian key distribution over [0, n) with skew theta in [0, 1).
///
/// theta = 0 is uniform; theta near 1 is highly skewed. Uses the standard
/// YCSB-style rejection-free generator with precomputed zeta.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next key in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng rng_;
};

/// Hot-set key distribution over [0, n): with probability
/// `hot_op_fraction` the key is uniform over the first `hot_keys` keys
/// (the hot set), otherwise uniform over the remaining cold keys. The
/// classic "90% of operations touch 10% of the data" shape, with the
/// two knobs independent — unlike Zipf, the hot set has a hard edge,
/// which is what a contention benchmark wants when it needs a known
/// number of keys carrying a known share of the traffic.
class HotSetGenerator {
 public:
  /// `hot_keys` is clamped to [1, n]; `hot_op_fraction` to [0, 1].
  HotSetGenerator(uint64_t n, uint64_t hot_keys, double hot_op_fraction,
                  uint64_t seed = 42);

  /// Next key in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  uint64_t hot_keys() const { return hot_keys_; }
  double hot_op_fraction() const { return hot_op_fraction_; }

 private:
  uint64_t n_;
  uint64_t hot_keys_;
  double hot_op_fraction_;
  Rng rng_;
};

}  // namespace oodb
