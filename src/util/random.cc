#include "util/random.h"

#include <cmath>

namespace oodb {

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding to avoid weak states.
  auto splitmix = [&seed]() {
    uint64_t z = (seed += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  s0_ = splitmix();
  s1_ = splitmix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Debiased modulo via rejection on the tail.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

HotSetGenerator::HotSetGenerator(uint64_t n, uint64_t hot_keys,
                                 double hot_op_fraction, uint64_t seed)
    : n_(n == 0 ? 1 : n),
      hot_keys_(hot_keys == 0 ? 1 : hot_keys),
      hot_op_fraction_(hot_op_fraction),
      rng_(seed) {
  if (hot_keys_ > n_) hot_keys_ = n_;
  if (hot_op_fraction_ < 0.0) hot_op_fraction_ = 0.0;
  if (hot_op_fraction_ > 1.0) hot_op_fraction_ = 1.0;
}

uint64_t HotSetGenerator::Next() {
  if (hot_keys_ == n_ || rng_.NextBool(hot_op_fraction_)) {
    return rng_.NextBelow(hot_keys_);
  }
  return hot_keys_ + rng_.NextBelow(n_ - hot_keys_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t k = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return k >= n_ ? n_ - 1 : k;
}

}  // namespace oodb
