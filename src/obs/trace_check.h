// Trace schema validation: the machine-checkable contract of the JSON
// lines trace export (docs/OBSERVABILITY.md).
//
// Checked per file:
//   * line 1 is a meta record with a version;
//   * every other line is a span or instant with its required fields;
//   * span ids are unique, start <= end, outcome is nonempty;
//   * every non-root span's parent exists, contains the child's
//     [start, end] window, belongs to the same top-level transaction,
//     and sits exactly one level above it — i.e. the flat file really
//     encodes the nested transaction tree.
//
// The checker parses only what the emitter writes (flat one-line JSON
// objects with known keys); it is a schema gate for CI, not a general
// JSON parser.

#pragma once

#include <string>

#include "util/status.h"

namespace oodb {

/// Validates a full JSON-lines trace document. Returns OK or an error
/// naming the first offending line.
Status ValidateTraceLines(const std::string& jsonl);

/// Validates a sampler time-series document (obs/sampler.h JSON lines):
/// one series-meta line first, known version, contiguous 1-based ticks,
/// well-formed samples, histogram bucket indexes inside the shared
/// hist_layout, and each histogram's count equal to the sum of its
/// bucket deltas (every observation lands in exactly one bucket).
Status ValidateSeriesLines(const std::string& jsonl);

}  // namespace oodb
