// Trace schema validation: the machine-checkable contract of the JSON
// lines trace export (docs/OBSERVABILITY.md).
//
// Checked per file:
//   * line 1 is a meta record with a version;
//   * every other line is a span or instant with its required fields;
//   * span ids are unique, start <= end, outcome is nonempty;
//   * every non-root span's parent exists, contains the child's
//     [start, end] window, belongs to the same top-level transaction,
//     and sits exactly one level above it — i.e. the flat file really
//     encodes the nested transaction tree.
//
// The checker parses only what the emitter writes (flat one-line JSON
// objects with known keys); it is a schema gate for CI, not a general
// JSON parser.

#pragma once

#include <string>

#include "util/status.h"

namespace oodb {

/// Validates a full JSON-lines trace document. Returns OK or an error
/// naming the first offending line.
Status ValidateTraceLines(const std::string& jsonl);

}  // namespace oodb
