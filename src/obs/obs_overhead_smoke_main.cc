// obs_overhead_smoke: asserts the detached-observability path is cheap.
//
// The instrumentation contract (src/obs/metrics.h) is that with no
// registry attached every hook costs one null-pointer branch. This
// binary measures (a) the per-transaction cost of the s2-style
// single-thread encyclopedia micro row with observability detached,
// (b) the cost of one detached hook (a branch on a null Counter*), and
// (c) how many hooks that row executes per transaction — and asserts
// that (b) x (c) stays below 5% of (a). The primitive-cost form is
// deliberate: an attached-vs-detached wall-clock A/B on a short run is
// noise-bound, so the A/B ratio is only reported, never asserted.
//
// A second phase covers the validator's provenance switch: with
// record_provenance=false (the default) the report must stay free of
// provenance, chains, and schedules, the verdict must be identical to
// the recording run, and validation must not be slower than the
// recording path (a deliberately loose bound — the off path pays
// nothing, so only gross regressions can trip it).
//
// Exit codes: 0 = bounds hold, 1 = a bound was exceeded.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "schedule/validator.h"
#include "util/stopwatch.h"

using namespace oodb;

namespace {

constexpr size_t kTxns = 2000;

/// One s2-style micro transaction: insert a fresh key, then search it.
Status MicroTxn(MethodContext& txn, ObjectId enc, size_t i) {
  std::string key = "K" + std::to_string(i);
  OODB_RETURN_IF_ERROR(
      txn.Call(enc, Encyclopedia::Insert(key, "d" + std::to_string(i))));
  Value out;
  return txn.Call(enc, Encyclopedia::Search(key), &out);
}

/// Runs the micro row on a fresh database; returns per-txn nanoseconds.
/// With a registry the run is attached (and the registry accumulates
/// the event counts the caller reads back).
double RunRow(MetricsRegistry* registry) {
  Database db;
  if (registry != nullptr) db.AttachObservability(registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 64, 64, 16);
  Stopwatch clock;
  for (size_t i = 0; i < kTxns; ++i) {
    (void)db.RunTransaction("M" + std::to_string(i),
                            [&](MethodContext& txn) {
                              return MicroTxn(txn, enc, i);
                            });
  }
  return double(clock.ElapsedNanos()) / double(kTxns);
}

/// Cost of one detached hook: the branch on a null metric pointer. The
/// pointer is volatile so the loop survives optimization the same way
/// the real (runtime-loaded) member pointers do.
double DetachedHookNanos() {
  Counter* volatile hook = nullptr;
  constexpr size_t kIters = 50'000'000;
  Stopwatch clock;
  uint64_t touched = 0;
  for (size_t i = 0; i < kIters; ++i) {
    Counter* c = hook;
    if (c != nullptr) c->Increment();
    ++touched;
  }
  double ns = double(clock.ElapsedNanos()) / double(kIters);
  if (touched != kIters) std::abort();  // defeat dead-code elimination
  return ns;
}

/// Runs a fresh micro row (execution is deterministic, so every build
/// yields the same history) and validates it with or without provenance
/// recording. Returns validation nanoseconds.
double ValidateRow(size_t txns, bool provenance, ValidationReport* out) {
  auto db = std::make_unique<Database>();
  Encyclopedia::RegisterMethods(db.get());
  ObjectId enc = Encyclopedia::Create(db.get(), "Enc", 64, 64, 16);
  for (size_t i = 0; i < txns; ++i) {
    (void)db->RunTransaction("M" + std::to_string(i),
                             [&](MethodContext& txn) {
                               return MicroTxn(txn, enc, i);
                             });
  }
  ValidationOptions options;
  options.record_provenance = provenance;
  Stopwatch clock;
  *out = Validator::Validate(&db->ts(), options);
  return double(clock.ElapsedNanos());
}

/// The provenance phase: off must cost nothing and change nothing.
int ProvenancePhase() {
  constexpr size_t kValTxns = 200;
  constexpr int kReps = 3;
  double off_ns = 0, on_ns = 0;
  ValidationReport off, on;
  for (int rep = 0; rep < kReps; ++rep) {
    double o = ValidateRow(kValTxns, false, &off);
    double p = ValidateRow(kValTxns, true, &on);
    off_ns = (rep == 0) ? o : std::min(off_ns, o);
    on_ns = (rep == 0) ? p : std::min(on_ns, p);
  }

  std::printf("provenance phase (%zu-txn row, min of %d):\n", kValTxns,
              kReps);
  std::printf("  validate (off):         %10.0f ns\n", off_ns);
  std::printf("  validate (recording):   %10.0f ns  (x%.3f)\n", on_ns,
              on_ns / off_ns);

  if (off.provenance != nullptr || !off.schedules.empty()) {
    std::printf("FAIL: record_provenance=false left evidence on the "
                "report\n");
    return 1;
  }
  if (on.provenance == nullptr || on.provenance->EdgeCount() == 0) {
    std::printf("FAIL: record_provenance=true recorded nothing\n");
    return 1;
  }
  if (off.oo_serializable != on.oo_serializable ||
      off.conventionally_serializable != on.conventionally_serializable ||
      off.conform != on.conform || off.diagnostics != on.diagnostics ||
      off.witnesses.size() != on.witnesses.size()) {
    std::printf("FAIL: recording changed the verdict\n");
    return 1;
  }
  // Loose bound: the off path does strictly less work, so it must not
  // be meaningfully slower than the recording path (1ms noise slack).
  if (off_ns > on_ns * 1.5 + 1e6) {
    std::printf("FAIL: provenance-off validation slower than recording\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  // Warm-up run absorbs first-touch effects (allocator, page faults).
  (void)RunRow(nullptr);

  double detached_ns = RunRow(nullptr);

  MetricsRegistry registry;
  double attached_ns = RunRow(&registry);

  // Hooks per transaction, from the attached run's own counters: every
  // lock acquire, primitive operation, and top-level verdict ran one
  // hook (their histogram/trace twins are behind the same branches).
  uint64_t events = registry.GetCounter("db.lock.acquires")->Value() +
                    registry.GetCounter("db.call.operations")->Value() +
                    registry.GetCounter("db.call.conflicts")->Value() +
                    registry.GetCounter("db.txn.committed")->Value() +
                    registry.GetCounter("db.txn.aborted")->Value();
  double events_per_txn = double(events) / double(kTxns);

  double hook_ns = DetachedHookNanos();
  double disabled_overhead = events_per_txn * hook_ns;
  double fraction = disabled_overhead / detached_ns;

  std::printf("obs_overhead_smoke:\n");
  std::printf("  micro row (detached):   %10.0f ns/txn\n", detached_ns);
  std::printf("  micro row (attached):   %10.0f ns/txn  (x%.3f, reported "
              "only)\n",
              attached_ns, attached_ns / detached_ns);
  std::printf("  hooks per txn:          %10.1f\n", events_per_txn);
  std::printf("  detached hook cost:     %10.3f ns\n", hook_ns);
  std::printf("  disabled-path overhead: %10.1f ns/txn = %.3f%% (bound "
              "5%%)\n",
              disabled_overhead, fraction * 100.0);

  if (fraction >= 0.05) {
    std::printf("FAIL: disabled-path overhead above 5%% bound\n");
    return 1;
  }
  if (ProvenancePhase() != 0) return 1;
  std::printf("OK\n");
  return 0;
}
