// obs_overhead_smoke: asserts the detached-observability path is cheap.
//
// The instrumentation contract (src/obs/metrics.h) is that with no
// registry attached every hook costs one null-pointer branch. This
// binary measures (a) the per-transaction cost of the s2-style
// single-thread encyclopedia micro row with observability detached,
// (b) the cost of one detached hook (a branch on a null Counter*), and
// (c) how many hooks that row executes per transaction — and asserts
// that (b) x (c) stays below 5% of (a). The primitive-cost form is
// deliberate: an attached-vs-detached wall-clock A/B on a short run is
// noise-bound, so the A/B ratio is only reported, never asserted.
//
// A second phase covers the validator's provenance switch: with
// record_provenance=false (the default) the report must stay free of
// provenance, chains, and schedules, the verdict must be identical to
// the recording run, and validation must not be slower than the
// recording path (a deliberately loose bound — the off path pays
// nothing, so only gross regressions can trip it).
//
// A third phase gates the flight recorder: a MetricsSampler ticking at
// 10 ms over an 8-worker contended run must cost <= 1% sustained — the
// sampler's cumulative tick time against the workers' aggregate wall
// time. The workers never block on the sampler (bounded staleness, see
// obs/sampler.h), so its only footprint is the machine time the fold
// and the contention probes consume; this phase pins that down. On
// failure it prints the per-phase latency histograms so the offending
// phase is visible in the CI log.
//
// Exit codes: 0 = bounds hold, 1 = a bound was exceeded.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/encyclopedia.h"
#include "containers/directory.h"
#include "containers/persist.h"
#include "obs/metrics.h"
#include "obs/phases.h"
#include "obs/sampler.h"
#include "schedule/validator.h"
#include "storage/recovery.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace oodb;

namespace {

constexpr size_t kTxns = 2000;

/// One s2-style micro transaction: insert a fresh key, then search it.
Status MicroTxn(MethodContext& txn, ObjectId enc, size_t i) {
  std::string key = "K" + std::to_string(i);
  OODB_RETURN_IF_ERROR(
      txn.Call(enc, Encyclopedia::Insert(key, "d" + std::to_string(i))));
  Value out;
  return txn.Call(enc, Encyclopedia::Search(key), &out);
}

/// Runs the micro row on a fresh database; returns per-txn nanoseconds.
/// With a registry the run is attached (and the registry accumulates
/// the event counts the caller reads back).
double RunRow(MetricsRegistry* registry) {
  Database db;
  if (registry != nullptr) db.AttachObservability(registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 64, 64, 16);
  Stopwatch clock;
  for (size_t i = 0; i < kTxns; ++i) {
    (void)db.RunTransaction("M" + std::to_string(i),
                            [&](MethodContext& txn) {
                              return MicroTxn(txn, enc, i);
                            });
  }
  return double(clock.ElapsedNanos()) / double(kTxns);
}

/// Cost of one detached hook: the branch on a null metric pointer. The
/// pointer is volatile so the loop survives optimization the same way
/// the real (runtime-loaded) member pointers do.
double DetachedHookNanos() {
  Counter* volatile hook = nullptr;
  constexpr size_t kIters = 50'000'000;
  Stopwatch clock;
  uint64_t touched = 0;
  for (size_t i = 0; i < kIters; ++i) {
    Counter* c = hook;
    if (c != nullptr) c->Increment();
    ++touched;
  }
  double ns = double(clock.ElapsedNanos()) / double(kIters);
  if (touched != kIters) std::abort();  // defeat dead-code elimination
  return ns;
}

/// Runs a fresh micro row (execution is deterministic, so every build
/// yields the same history) and validates it with or without provenance
/// recording. Returns validation nanoseconds.
double ValidateRow(size_t txns, bool provenance, ValidationReport* out) {
  auto db = std::make_unique<Database>();
  Encyclopedia::RegisterMethods(db.get());
  ObjectId enc = Encyclopedia::Create(db.get(), "Enc", 64, 64, 16);
  for (size_t i = 0; i < txns; ++i) {
    (void)db->RunTransaction("M" + std::to_string(i),
                             [&](MethodContext& txn) {
                               return MicroTxn(txn, enc, i);
                             });
  }
  ValidationOptions options;
  options.record_provenance = provenance;
  Stopwatch clock;
  *out = Validator::Validate(&db->ts(), options);
  return double(clock.ElapsedNanos());
}

/// The provenance phase: off must cost nothing and change nothing.
int ProvenancePhase() {
  constexpr size_t kValTxns = 200;
  constexpr int kReps = 3;
  double off_ns = 0, on_ns = 0;
  ValidationReport off, on;
  for (int rep = 0; rep < kReps; ++rep) {
    double o = ValidateRow(kValTxns, false, &off);
    double p = ValidateRow(kValTxns, true, &on);
    off_ns = (rep == 0) ? o : std::min(off_ns, o);
    on_ns = (rep == 0) ? p : std::min(on_ns, p);
  }

  std::printf("provenance phase (%zu-txn row, min of %d):\n", kValTxns,
              kReps);
  std::printf("  validate (off):         %10.0f ns\n", off_ns);
  std::printf("  validate (recording):   %10.0f ns  (x%.3f)\n", on_ns,
              on_ns / off_ns);

  if (off.provenance != nullptr || !off.schedules.empty()) {
    std::printf("FAIL: record_provenance=false left evidence on the "
                "report\n");
    return 1;
  }
  if (on.provenance == nullptr || on.provenance->EdgeCount() == 0) {
    std::printf("FAIL: record_provenance=true recorded nothing\n");
    return 1;
  }
  if (off.oo_serializable != on.oo_serializable ||
      off.conventionally_serializable != on.conventionally_serializable ||
      off.conform != on.conform || off.diagnostics != on.diagnostics ||
      off.witnesses.size() != on.witnesses.size()) {
    std::printf("FAIL: recording changed the verdict\n");
    return 1;
  }
  // Loose bound: the off path does strictly less work, so it must not
  // be meaningfully slower than the recording path (1ms noise slack).
  if (off_ns > on_ns * 1.5 + 1e6) {
    std::printf("FAIL: provenance-off validation slower than recording\n");
    return 1;
  }
  return 0;
}

/// On a gate failure, show where transaction time went: the six phase
/// histograms plus the end-to-end total, count/sum/p50/p99 each.
void PrintPhaseHistograms(MetricsRegistry& registry) {
  std::printf("  per-phase latency histograms at failure:\n");
  auto print_one = [&registry](const char* label, const std::string& name) {
    HistogramSnapshot snap = registry.GetHistogram(name)->Snapshot();
    std::printf("    %-16s count=%8llu sum=%12llu ns  p50=%8llu ns  "
                "p99=%8llu ns\n",
                label, (unsigned long long)snap.count(),
                (unsigned long long)snap.sum(),
                (unsigned long long)snap.Quantile(0.50),
                (unsigned long long)snap.Quantile(0.99));
  };
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    print_one(PhaseName(phase),
              std::string("phase.") + PhaseSuffix(phase) + "_ns");
  }
  print_one("total", "phase.total_ns");
}

/// The sampler phase: 8 contended workers, a 10 ms flight recorder, and
/// a <= 1% sustained-overhead bound on the recorder's machine-time
/// share.
int SamplerPhase() {
  constexpr size_t kThreads = 8;
  constexpr size_t kTxnsPerThread = 3000;
  constexpr double kBound = 0.01;

  MetricsRegistry registry;
  Database db;
  db.AttachObservability(&registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 64, 64, 16);

  // A small persistent store on the same registry: its sampler probe
  // (storage.* gauges, hot-page slots) ticks alongside the contention
  // probes, so the <= 1% bound also covers the storage introspection.
  Database store_db;
  RegisterDirectoryMethods(&store_db);
  StorageEngineOptions eoptions;
  eoptions.dir =
      "/tmp/oodb_obs_smoke_store_" + std::to_string(::getpid());
  std::filesystem::remove_all(eoptions.dir);
  StorageEngine engine(eoptions);
  engine.AttachMetrics(&registry);
  if (!RegisterStandardSerdes(&engine).ok() ||
      !engine.Open(&store_db).ok() ||
      !engine
           .AttachRoot("D", "directory", CreateDirectory(&store_db, "D"))
           .ok() ||
      !Recover(&engine, &store_db).ok()) {
    std::printf("FAIL: sampler phase could not open its storage engine\n");
    return 1;
  }
  store_db.AttachDurability(&engine);
  // Seed real storage traffic (pins, writebacks, a checkpoint) so the
  // probes publish live values rather than zeros.
  for (size_t i = 0; i < 64; ++i) {
    (void)store_db.RunTransaction("P", [&](MethodContext& txn) {
      return txn.Call(engine.RootId("D"),
                      Invocation("insert", {Value("k" + std::to_string(i)),
                                            Value("v")}));
    });
  }
  if (!engine.Checkpoint(&store_db).ok()) {
    std::printf("FAIL: sampler phase storage checkpoint failed\n");
    return 1;
  }

  SamplerOptions soptions;
  soptions.interval = std::chrono::milliseconds(10);
  soptions.tag = "overhead-smoke";
  MetricsSampler sampler(&registry, soptions);
  db.InstallSamplerProbes(&sampler);
  engine.InstallSamplerProbes(&sampler);
  sampler.Start();

  Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, enc, t] {
      Rng rng(t * 31 + 5);
      for (size_t i = 0; i < kTxnsPerThread; ++i) {
        // A contended mix: half the keys are shared across workers, so
        // the recorder has real lock traffic and waits-for churn to
        // snapshot.
        std::string key = rng.NextBelow(2) == 0
                              ? "S" + std::to_string(rng.NextBelow(16))
                              : "K" + std::to_string(t * kTxnsPerThread + i);
        (void)db.RunTransaction(
            "W" + std::to_string(t), [&](MethodContext& txn) -> Status {
              Status st = txn.Call(
                  enc, Encyclopedia::Insert(key, "d" + std::to_string(i)));
              if (st.code() == StatusCode::kAlreadyExists) st = Status::OK();
              OODB_RETURN_IF_ERROR(st);
              Value out;
              return txn.Call(enc, Encyclopedia::Search(key), &out);
            });
      }
    });
  }
  for (auto& w : workers) w.join();
  const uint64_t elapsed_ns = clock.ElapsedNanos();
  sampler.Stop();
  std::filesystem::remove_all(eoptions.dir);

  const SamplerStats stats = sampler.Stats();
  // Sustained overhead: the recorder's cumulative fold time against the
  // aggregate machine time the workload occupied (workers x wall).
  const double worker_ns = double(elapsed_ns) * double(kThreads);
  const double fraction =
      worker_ns > 0 ? double(stats.total_tick_ns) / worker_ns : 0.0;

  std::printf("sampler phase (%zu threads x %zu txns, 10 ms tick):\n",
              kThreads, kTxnsPerThread);
  std::printf("  run wall time:          %10.0f ns\n", double(elapsed_ns));
  std::printf("  sampler ticks:          %10llu  (max %llu ns, avg %.0f "
              "ns)\n",
              (unsigned long long)stats.ticks,
              (unsigned long long)stats.max_tick_ns,
              stats.ticks > 0
                  ? double(stats.total_tick_ns) / double(stats.ticks)
                  : 0.0);
  std::printf("  sustained overhead:     %10.4f%% (bound %.0f%%)\n",
              fraction * 100.0, kBound * 100.0);
  if (stats.nonmonotone_counters != 0) {
    std::printf("FAIL: sampler observed %llu non-monotone counter "
                "deltas\n",
                (unsigned long long)stats.nonmonotone_counters);
    PrintPhaseHistograms(registry);
    return 1;
  }
  if (stats.ticks == 0) {
    std::printf("FAIL: sampler took no ticks over the run\n");
    PrintPhaseHistograms(registry);
    return 1;
  }
  if (fraction >= kBound) {
    std::printf("FAIL: sampler overhead above %.0f%% sustained bound\n",
                kBound * 100.0);
    PrintPhaseHistograms(registry);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  // Warm-up run absorbs first-touch effects (allocator, page faults).
  (void)RunRow(nullptr);

  double detached_ns = RunRow(nullptr);

  MetricsRegistry registry;
  double attached_ns = RunRow(&registry);

  // Hooks per transaction, from the attached run's own counters: every
  // lock acquire, primitive operation, and top-level verdict ran one
  // hook (their histogram/trace twins are behind the same branches).
  uint64_t events = registry.GetCounter("db.lock.acquires")->Value() +
                    registry.GetCounter("db.call.operations")->Value() +
                    registry.GetCounter("db.call.conflicts")->Value() +
                    registry.GetCounter("db.txn.committed")->Value() +
                    registry.GetCounter("db.txn.aborted")->Value();
  double events_per_txn = double(events) / double(kTxns);

  double hook_ns = DetachedHookNanos();
  double disabled_overhead = events_per_txn * hook_ns;
  double fraction = disabled_overhead / detached_ns;

  std::printf("obs_overhead_smoke:\n");
  std::printf("  micro row (detached):   %10.0f ns/txn\n", detached_ns);
  std::printf("  micro row (attached):   %10.0f ns/txn  (x%.3f, reported "
              "only)\n",
              attached_ns, attached_ns / detached_ns);
  std::printf("  hooks per txn:          %10.1f\n", events_per_txn);
  std::printf("  detached hook cost:     %10.3f ns\n", hook_ns);
  std::printf("  disabled-path overhead: %10.1f ns/txn = %.3f%% (bound "
              "5%%)\n",
              disabled_overhead, fraction * 100.0);

  if (fraction >= 0.05) {
    std::printf("FAIL: disabled-path overhead above 5%% bound\n");
    return 1;
  }
  if (ProvenancePhase() != 0) return 1;
  if (SamplerPhase() != 0) return 1;
  std::printf("OK\n");
  return 0;
}
