// oodb_top: the bottleneck inspector over a sampler time-series.
//
// Consumes the JSON-lines series a MetricsSampler exports (live, or
// replayed from a file) and renders two views:
//
//   * RenderScreen — a human "top"-style page: throughput sparkline,
//     per-phase latency breakdown with share bars, hottest lock stripes,
//     top-K hot objects, cache hit ratio, waits-for graph size;
//   * RenderReport — a machine-readable JSON report whose
//     "dominant_phase" field names the phase with the largest share of
//     root-transaction time, plus a "coverage" figure tying the phase
//     sums back to measured end-to-end latency (the acceptance check).
//
// Both renders are pure functions of the parsed series, so a committed
// series file yields byte-stable output (the golden test's contract).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace oodb {

/// One parsed sample line (mirrors obs/sampler.h Sample).
struct SeriesSample {
  uint64_t tick = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  struct Hist {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<std::pair<uint32_t, uint64_t>> buckets;
  };
  std::vector<Hist> hists;
};

/// A whole parsed series: the meta line plus every sample, in order.
struct SeriesData {
  uint64_t version = 0;
  uint64_t interval_ms = 0;
  bool logical = false;
  std::string tag;
  std::vector<SeriesSample> samples;
};

/// Parses sampler JSON lines. Rejects a missing/duplicate meta line,
/// non-contiguous ticks, and malformed JSON.
Result<SeriesData> ParseSeries(const std::string& jsonl);

struct TopOptions {
  size_t top_k = 8;          ///< hot objects / stripes shown
  size_t sparkline_width = 48;  ///< ticks folded into the sparkline
};

/// The human view of the series (or of its last `window` ticks when
/// window > 0). Deterministic for a fixed series.
std::string RenderScreen(const SeriesData& series, const TopOptions& options,
                         size_t window = 0);

/// The machine view: "oodb-top-report-v1" JSON with throughput, phase
/// shares, dominant_phase, coverage, hot objects/stripes, cache, and
/// waits-for peaks. Deterministic for a fixed series.
std::string RenderReport(const SeriesData& series, const TopOptions& options);

}  // namespace oodb
