// oodb_top: the bottleneck inspector.
//
// Replays a sampler time-series from a file — or records one live from
// a built-in contended encyclopedia mix — and renders either the
// "top"-style screen (throughput sparkline, phase breakdown, hottest
// stripes and objects, cache ratio) or the machine-readable
// "oodb-top-report-v1" JSON whose dominant_phase field names the
// bottleneck.
//
// Examples:
//   oodb_top series.jsonl                    # screen view of a recording
//   oodb_top --report series.jsonl           # bottleneck report (JSON)
//   oodb_top --live --threads=8 --txns=500   # record + watch a mix
//   oodb_top --live --series-out=series.jsonl --report

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/top.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

struct Options {
  std::string series_file;  ///< replay source (empty with --live)
  bool report = false;
  bool live = false;
  size_t window = 0;
  size_t top_k = 8;
  std::string scheduler = "open";
  size_t threads = 8;
  size_t txns = 500;
  size_t interval_ms = 10;
  size_t refresh_ms = 500;
  std::string series_out;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: oodb_top [options] [SERIES_FILE]\n"
      "  oodb_top series.jsonl            replay a recorded series\n"
      "  oodb_top --report series.jsonl   machine-readable bottleneck "
      "report\n"
      "  oodb_top --live                  record + inspect a built-in mix\n"
      "options:\n"
      "  --report            JSON report instead of the screen view\n"
      "  --window=N          screen: fold only the last N ticks (0 = all)\n"
      "  --top-k=N           rows in the hot lists (default 8)\n"
      "  --scheduler=open|closed|flat2pl|exclusive  live mix (default "
      "open)\n"
      "  --threads=N         live: mix workers (default 8)\n"
      "  --txns=N            live: transactions per worker (default 500)\n"
      "  --interval=MS       live: sampler tick (default 10)\n"
      "  --refresh=MS        live: screen refresh when on a tty (default "
      "500)\n"
      "  --series-out=PATH   live: also write the recorded series\n");
}

bool ParseFlag(const std::string& arg, const char* name,
               std::string* value) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--report") {
      opts->report = true;
    } else if (arg == "--live") {
      opts->live = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (ParseFlag(arg, "--scheduler", &opts->scheduler) ||
               ParseFlag(arg, "--series-out", &opts->series_out)) {
      // handled
    } else if (ParseFlag(arg, "--window", &value)) {
      opts->window = std::stoul(value);
    } else if (ParseFlag(arg, "--top-k", &value)) {
      opts->top_k = std::stoul(value);
    } else if (ParseFlag(arg, "--threads", &value)) {
      opts->threads = std::stoul(value);
    } else if (ParseFlag(arg, "--txns", &value)) {
      opts->txns = std::stoul(value);
    } else if (ParseFlag(arg, "--interval", &value)) {
      opts->interval_ms = std::stoul(value);
    } else if (ParseFlag(arg, "--refresh", &value)) {
      opts->refresh_ms = std::stoul(value);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "oodb_top: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    } else if (opts->series_file.empty()) {
      opts->series_file = arg;
    } else {
      std::fprintf(stderr, "oodb_top: extra argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts->live == opts->series_file.empty()) return true;
  std::fprintf(stderr,
               opts->live ? "oodb_top: --live takes no SERIES_FILE\n"
                          : "oodb_top: need a SERIES_FILE or --live\n");
  return false;
}

bool SchedulerFromName(const std::string& name, SchedulerKind* out) {
  if (name == "open") {
    *out = SchedulerKind::kOpenNested;
  } else if (name == "closed") {
    *out = SchedulerKind::kClosedNested;
  } else if (name == "flat2pl") {
    *out = SchedulerKind::kFlat2PL;
  } else if (name == "exclusive") {
    *out = SchedulerKind::kObjectExclusive;
  } else {
    return false;
  }
  return true;
}

/// The in-memory samples as a SeriesData, skipping the JSON round-trip
/// (live screen refreshes).
SeriesData SeriesFromRing(const MetricsSampler& sampler,
                          const SamplerOptions& soptions) {
  SeriesData series;
  series.version = 1;
  series.interval_ms =
      static_cast<uint64_t>(soptions.interval.count());
  series.logical = soptions.logical_clock;
  series.tag = soptions.tag;
  for (const Sample& s : sampler.Series()) {
    SeriesSample out;
    out.tick = s.tick;
    out.ts_ns = s.ts_ns;
    out.dur_ns = s.dur_ns;
    out.counters = s.counters;
    out.gauges = s.gauges;
    for (const Sample::HistDelta& h : s.hists) {
      SeriesSample::Hist hist;
      hist.name = h.name;
      hist.count = h.count;
      hist.sum = h.sum;
      hist.buckets = h.buckets;
      out.hists.push_back(std::move(hist));
    }
    series.samples.push_back(std::move(out));
  }
  return series;
}

int RunLive(const Options& opts) {
  SchedulerKind kind;
  if (!SchedulerFromName(opts.scheduler, &kind)) {
    std::fprintf(stderr, "oodb_top: unknown scheduler '%s'\n",
                 opts.scheduler.c_str());
    return 2;
  }

  MetricsRegistry registry;
  DatabaseOptions db_options;
  db_options.scheduler = kind;
  Database db(db_options);
  db.AttachObservability(&registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 16, 16, 4);

  SamplerOptions soptions;
  soptions.interval = std::chrono::milliseconds(opts.interval_ms);
  soptions.tag = "live:mix:" + opts.scheduler;
  MetricsSampler sampler(&registry, soptions);
  db.InstallSamplerProbes(&sampler);
  sampler.Start();

  // The same contended mix oodb_trace runs, on a worker thread so the
  // main thread can refresh the screen while it runs.
  HarnessResult result;
  std::thread worker([&] {
    HarnessConfig config;
    config.threads = opts.threads;
    config.txns_per_thread = opts.txns;
    config.metrics = &registry;
    result = Harness::Run(
        &db, config, [enc](size_t thread, size_t index) -> TransactionBody {
          return [enc, thread, index](MethodContext& txn) -> Status {
            Rng rng(thread * 7919 + index);
            std::string key = "K" + std::to_string(rng.NextBelow(64));
            switch (rng.NextBelow(10)) {
              case 0:
                return txn.Call(enc, Encyclopedia::ReadSeq());
              case 1:
              case 2: {
                Value out;
                return txn.Call(enc, Encyclopedia::Search(key), &out);
              }
              case 3:
              case 4:
              case 5: {
                Status st = txn.Call(
                    enc,
                    Encyclopedia::Change(key, "v" + std::to_string(index)));
                return st.IsNotFound() ? Status::OK() : st;
              }
              default: {
                Status st = txn.Call(
                    enc,
                    Encyclopedia::Insert(key, "d" + std::to_string(index)));
                return st.code() == StatusCode::kAlreadyExists
                           ? Status::OK()
                           : st;
              }
            }
          };
        });
  });

  TopOptions toptions;
  toptions.top_k = opts.top_k;
  const bool tty = isatty(STDOUT_FILENO) != 0 && !opts.report;
  if (tty) {
    // Refresh the screen until the mix drains; \x1b[H\x1b[J repaints in
    // place like top(1).
    std::mutex done_mu;
    bool done = false;
    std::thread waiter([&] {
      worker.join();
      std::lock_guard<std::mutex> lock(done_mu);
      done = true;
    });
    for (;;) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.refresh_ms));
      const SeriesData live = SeriesFromRing(sampler, soptions);
      std::string screen = RenderScreen(live, toptions, opts.window);
      std::fputs("\x1b[H\x1b[J", stdout);
      std::fputs(screen.c_str(), stdout);
      std::fflush(stdout);
      std::lock_guard<std::mutex> lock(done_mu);
      if (done) break;
    }
    waiter.join();
  } else {
    worker.join();
  }
  sampler.Stop();
  std::fprintf(stderr, "mix: %s\n", result.Row().c_str());

  if (!opts.series_out.empty()) {
    Status st = sampler.WriteJsonLines(opts.series_out);
    if (!st.ok()) {
      std::fprintf(stderr, "oodb_top: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const SeriesData series = SeriesFromRing(sampler, soptions);
  std::string out = opts.report ? RenderReport(series, toptions)
                                : RenderScreen(series, toptions, opts.window);
  if (tty) std::fputs("\x1b[H\x1b[J", stdout);
  std::fputs(out.c_str(), stdout);
  return 0;
}

int RunReplay(const Options& opts) {
  std::ifstream in(opts.series_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "oodb_top: cannot open '%s'\n",
                 opts.series_file.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<SeriesData> series = ParseSeries(buffer.str());
  if (!series.ok()) {
    std::fprintf(stderr, "oodb_top: %s\n",
                 series.status().ToString().c_str());
    return 1;
  }
  TopOptions toptions;
  toptions.top_k = opts.top_k;
  std::string out = opts.report
                        ? RenderReport(*series, toptions)
                        : RenderScreen(*series, toptions, opts.window);
  std::fputs(out.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }
  return opts.live ? RunLive(opts) : RunReplay(opts);
}
