// trace_schema_check: validate a JSON-lines trace against the span
// schema (docs/OBSERVABILITY.md). The CI gate behind `oodb_trace
// --format=jsonl | trace_schema_check -`.
//
// Exit codes: 0 = valid, 1 = schema violation, 2 = usage/IO error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_schema_check FILE  ('-' = stdin)\n");
    return 2;
  }
  std::string path = argv[1];
  std::string content;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    content = buf.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_schema_check: cannot open '%s'\n",
                   path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    content = buf.str();
  }

  oodb::Status st = oodb::ValidateTraceLines(content);
  if (!st.ok()) {
    std::fprintf(stderr, "trace_schema_check: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trace_schema_check: OK\n");
  return 0;
}
