// trace_schema_check: validate a JSON-lines trace against the span
// schema, or (with --series) a sampler time-series against the series
// schema (both documented in docs/OBSERVABILITY.md). The CI gates
// behind `oodb_trace --format=jsonl | trace_schema_check -` and
// `s11_throughput --series=F && trace_schema_check --series F`.
//
// Exit codes: 0 = valid, 1 = schema violation, 2 = usage/IO error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  bool series = false;
  const char* path_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--series") == 0) {
      series = true;
    } else if (path_arg == nullptr) {
      path_arg = argv[i];
    } else {
      path_arg = nullptr;  // too many positionals
      break;
    }
  }
  if (path_arg == nullptr) {
    std::fprintf(stderr,
                 "usage: trace_schema_check [--series] FILE  ('-' = stdin)\n");
    return 2;
  }
  std::string path = path_arg;
  std::string content;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    content = buf.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_schema_check: cannot open '%s'\n",
                   path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    content = buf.str();
  }

  oodb::Status st = series ? oodb::ValidateSeriesLines(content)
                           : oodb::ValidateTraceLines(content);
  if (!st.ok()) {
    std::fprintf(stderr, "trace_schema_check: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trace_schema_check: OK (%s)\n", series ? "series" : "trace");
  return 0;
}
