// Phase-latency attribution: where a root transaction's wall-clock time
// actually goes.
//
// Every root transaction owns one PhaseAccumulator for its whole
// lifetime (all retry attempts included). Instrumented layers credit
// nanoseconds to a phase at the exact point the time is spent, through
// a thread-local "current accumulator" pointer — so the lock manager
// can credit a blocked wait and the storage engine a WAL force without
// either knowing about the Database's control flow. Parallel branches
// (MethodContext::CallParallel) propagate the pointer into their worker
// threads, so a branch blocked on a lock still bills its root.
//
// The taxonomy (see docs/OBSERVABILITY.md for the instrumentation point
// of each phase):
//
//   admission       gate + top-level context setup, before the body runs
//   lock-wait       blocked time inside LockManager::Acquire
//   execute         the residual: total minus every measured phase
//   wal-force       DurabilityHook::LogOp appends + the commit-time force
//   commit-publish  commit bookkeeping after the body: history/epoch
//                   publish, lock release, compensation cleanup (minus
//                   the WAL force, which bills wal-force)
//   retry-backoff   deadlock-retry sleeps between attempts
//
// Computing execute as the residual is a deliberate accounting choice:
// the six phases always sum exactly to the measured end-to-end latency,
// so per-phase histograms reconcile against harness latency with no
// double counting, at the cost of "execute" absorbing measurement slop.
//
// With no accumulator installed every credit point is one thread-local
// load and a branch; the detached cost rides under obs_overhead_smoke's
// bound like the rest of the metrics hooks.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace oodb {

class MetricsRegistry;
class HistogramMetric;

enum class Phase : uint8_t {
  kAdmission = 0,
  kLockWait,
  kExecute,
  kWalForce,
  kCommitPublish,
  kRetryBackoff,
};

inline constexpr size_t kPhaseCount = 6;

/// Stable lowercase name ("admission", "lock-wait", ...). Part of the
/// exported-surface vocabulary, like metric names.
const char* PhaseName(Phase phase);

/// Metric-name suffix form ("admission", "lock_wait", ...): phase
/// histograms register as "phase.<suffix>_ns".
const char* PhaseSuffix(Phase phase);

/// Per-transaction phase ledger. Credits are relaxed atomic adds so
/// parallel branches of one transaction can bill concurrently.
class PhaseAccumulator {
 public:
  PhaseAccumulator() { Reset(); }

  void Add(Phase phase, uint64_t ns) {
    ns_[static_cast<size_t>(phase)].fetch_add(ns, std::memory_order_relaxed);
  }
  uint64_t Get(Phase phase) const {
    return ns_[static_cast<size_t>(phase)].load(std::memory_order_relaxed);
  }
  /// Sum over the explicitly measured phases (everything but execute).
  uint64_t MeasuredTotal() const;
  void Reset() {
    for (auto& slot : ns_) slot.store(0, std::memory_order_relaxed);
  }

  /// The calling thread's active accumulator (null when detached).
  static PhaseAccumulator* Current();
  static void SetCurrent(PhaseAccumulator* acc);
  /// Credit the calling thread's accumulator, if any. The detached
  /// path is one thread-local load and a branch.
  static void AddCurrent(Phase phase, uint64_t ns) {
    PhaseAccumulator* acc = Current();
    if (acc != nullptr) acc->Add(phase, ns);
  }

 private:
  std::array<std::atomic<uint64_t>, kPhaseCount> ns_;
};

/// RAII install/restore of the thread-local current accumulator. Used
/// per attempt in Database::RunTransaction and per branch thread in
/// CallParallel.
class PhaseScope {
 public:
  explicit PhaseScope(PhaseAccumulator* acc)
      : previous_(PhaseAccumulator::Current()) {
    PhaseAccumulator::SetCurrent(acc);
  }
  ~PhaseScope() { PhaseAccumulator::SetCurrent(previous_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseAccumulator* previous_;
};

/// The per-phase histograms ("phase.<suffix>_ns" plus "phase.total_ns"),
/// registered once per registry and fed one observation per finished
/// root transaction.
class PhaseHistograms {
 public:
  explicit PhaseHistograms(MetricsRegistry* registry);

  /// Record one finished root transaction: each measured phase as
  /// accumulated, execute as total minus the measured sum (clamped at
  /// zero), and the end-to-end total. After this, summing the phase
  /// histograms' sums reproduces phase.total_ns's sum exactly.
  void Observe(const PhaseAccumulator& acc, uint64_t total_ns);

  HistogramMetric* histogram(Phase phase) const {
    return phase_[static_cast<size_t>(phase)];
  }
  HistogramMetric* total() const { return total_; }

 private:
  std::array<HistogramMetric*, kPhaseCount> phase_;
  HistogramMetric* total_;
};

/// Render an accumulator as a flat JSON object fragment
/// ({"admission":N,...,"execute":R,"total":T}), with execute the same
/// residual Observe() records. Attached to Tracer spans.
std::string PhasesJson(const PhaseAccumulator& acc, uint64_t total_ns);

}  // namespace oodb
