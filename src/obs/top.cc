#include "obs/top.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/phases.h"
#include "util/histogram.h"

namespace oodb {

namespace {

// --- a minimal JSON reader for sampler lines ---------------------------
//
// The sampler's emitter (obs/sampler.cc) writes a small, fixed shape:
// objects, arrays, strings without exotic escapes, and integer numbers.
// This reader accepts exactly that (plus standard whitespace); it keeps
// object keys in file order, which the renderers rely on for
// deterministic output.

struct Json {
  enum class Type { kNull, kBool, kInt, kStr, kObj, kArr };
  Type type = Type::kNull;
  bool b = false;
  long long i = 0;            ///< numbers (sampler values are integers)
  unsigned long long u = 0;   ///< same token as unsigned (counter deltas)
  std::string str;
  std::vector<std::pair<std::string, Json>> obj;
  std::vector<Json> arr;

  const Json* Find(const char* key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(Json* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' ||
                          *p_ == '\n')) {
      ++p_;
    }
  }

  bool ParseValue(Json* out) {
    SkipWs();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Json::Type::kStr;
        return ParseString(&out->str);
      case 't':
        if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
          out->type = Json::Type::kBool;
          out->b = true;
          p_ += 4;
          return true;
        }
        return false;
      case 'f':
        if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
          out->type = Json::Type::kBool;
          out->b = false;
          p_ += 5;
          return true;
        }
        return false;
      case 'n':
        if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0) {
          out->type = Json::Type::kNull;
          p_ += 4;
          return true;
        }
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json* out) {
    out->type = Json::Type::kObj;
    ++p_;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !ParseString(&key)) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      Json value;
      if (!ParseValue(&value)) return false;
      out->obj.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(Json* out) {
    out->type = Json::Type::kArr;
    ++p_;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      Json value;
      if (!ParseValue(&value)) return false;
      out->arr.push_back(std::move(value));
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++p_;  // '"'
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          default:
            out->push_back(*p_);
        }
        ++p_;
      } else {
        out->push_back(*p_++);
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }

  bool ParseNumber(Json* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ &&
           ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return false;
    std::string token(start, p_);
    out->type = Json::Type::kInt;
    out->i = std::strtoll(token.c_str(), nullptr, 10);
    out->u = std::strtoull(token.c_str(), nullptr, 10);
    return true;
  }

  const char* p_;
  const char* end_;
};

// --- aggregation -------------------------------------------------------

/// Everything the renderers need, folded once over the series.
struct Aggregate {
  uint64_t ticks = 0;
  uint64_t first_ts = 0;
  uint64_t last_ts = 0;
  uint64_t sampler_ns = 0;  ///< sum of dur_ns (self-cost)
  std::map<std::string, uint64_t> counters;  ///< summed deltas
  std::map<std::string, int64_t> last_gauges;
  std::map<std::string, int64_t> max_gauges;
  struct Hist {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> buckets;
    Hist() : buckets(hist_layout::kBucketCount, 0) {}
    uint64_t Quantile(double q) const {
      // The series carries no per-hist max; the top bucket's upper
      // bound is the tightest bound the deltas preserve.
      uint64_t max_bound = 0;
      for (size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] != 0) max_bound = hist_layout::BucketUpperBound(b);
      }
      return hist_layout::Quantile(buckets.data(), count, max_bound, q);
    }
  };
  std::map<std::string, Hist> hists;
  /// committed-per-tick, for the sparkline.
  std::vector<uint64_t> committed_per_tick;
};

Aggregate Fold(const SeriesData& series, size_t window) {
  Aggregate agg;
  size_t begin = 0;
  if (window > 0 && series.samples.size() > window) {
    begin = series.samples.size() - window;
  }
  for (size_t idx = begin; idx < series.samples.size(); ++idx) {
    const SeriesSample& s = series.samples[idx];
    if (agg.ticks == 0) agg.first_ts = s.ts_ns;
    agg.last_ts = s.ts_ns;
    ++agg.ticks;
    agg.sampler_ns += s.dur_ns;
    uint64_t committed = 0;
    for (const auto& [name, delta] : s.counters) {
      agg.counters[name] += delta;
      if (name == "db.txn.committed") committed = delta;
    }
    agg.committed_per_tick.push_back(committed);
    for (const auto& [name, value] : s.gauges) {
      agg.last_gauges[name] = value;
      auto [it, inserted] = agg.max_gauges.emplace(name, value);
      if (!inserted && value > it->second) it->second = value;
    }
    for (const auto& hist : s.hists) {
      Aggregate::Hist& slot = agg.hists[hist.name];
      slot.count += hist.count;
      slot.sum += hist.sum;
      for (const auto& [bucket, delta] : hist.buckets) {
        if (bucket < slot.buckets.size()) slot.buckets[bucket] += delta;
      }
    }
  }
  return agg;
}

/// Wall seconds covered by the aggregate (0 in logical mode, where
/// ts_ns is the tick index).
double WallSeconds(const SeriesData& series, const Aggregate& agg) {
  if (series.logical || agg.ticks < 2) return 0;
  return double(agg.last_ts - agg.first_ts) / 1e9;
}

struct PhaseRow {
  std::string name;    ///< taxonomy name ("lock-wait")
  uint64_t sum = 0;
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  double share = 0;    ///< of the six-phase total
};

/// The six phases in taxonomy order, plus the end-to-end total row.
/// Empty when the series carries no phase histograms.
std::vector<PhaseRow> PhaseRows(const Aggregate& agg, uint64_t* total_sum,
                                uint64_t* e2e_sum, uint64_t* e2e_count) {
  *total_sum = 0;
  *e2e_sum = 0;
  *e2e_count = 0;
  std::vector<PhaseRow> rows;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    auto it = agg.hists.find(std::string("phase.") + PhaseSuffix(phase) +
                             "_ns");
    if (it == agg.hists.end()) continue;
    PhaseRow row;
    row.name = PhaseName(phase);
    row.sum = it->second.sum;
    row.count = it->second.count;
    row.p50 = it->second.Quantile(0.50);
    row.p99 = it->second.Quantile(0.99);
    rows.push_back(std::move(row));
    *total_sum += it->second.sum;
  }
  auto total = agg.hists.find("phase.total_ns");
  if (total != agg.hists.end()) {
    *e2e_sum = total->second.sum;
    *e2e_count = total->second.count;
  }
  for (PhaseRow& row : rows) {
    row.share = *total_sum > 0 ? double(row.sum) / double(*total_sum) : 0;
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const PhaseRow& a, const PhaseRow& b) {
                     return a.sum > b.sum;
                   });
  return rows;
}

struct StripeRow {
  size_t stripe = 0;
  int64_t held = 0;
  int64_t waiters = 0;
  int64_t waits = 0;
  int64_t wait_ns = 0;
};

std::vector<StripeRow> StripeRows(const Aggregate& agg) {
  std::vector<StripeRow> rows;
  for (const auto& [name, value] : agg.last_gauges) {
    // lock.stripe.<i>.held anchors one row; siblings join it.
    const char* prefix = "lock.stripe.";
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t dot = name.find('.', std::strlen(prefix));
    if (dot == std::string::npos ||
        name.compare(dot, std::string::npos, ".held") != 0) {
      continue;
    }
    StripeRow row;
    row.stripe = std::strtoul(name.c_str() + std::strlen(prefix), nullptr, 10);
    const std::string base = name.substr(0, dot);
    row.held = value;
    auto get = [&agg](const std::string& n) {
      auto it = agg.last_gauges.find(n);
      return it == agg.last_gauges.end() ? int64_t{0} : it->second;
    };
    row.waiters = get(base + ".waiters");
    row.waits = get(base + ".waits");
    row.wait_ns = get(base + ".wait_ns");
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const StripeRow& a, const StripeRow& b) {
              return a.stripe < b.stripe;
            });
  return rows;
}

struct HotRow {
  int64_t id = -1;
  int64_t waits = 0;
};

std::vector<HotRow> HotRows(const Aggregate& agg, size_t top_k) {
  std::vector<HotRow> rows;
  for (size_t k = 0; k < top_k; ++k) {
    const std::string base = "lock.hot." + std::to_string(k);
    auto id = agg.last_gauges.find(base + ".id");
    auto waits = agg.last_gauges.find(base + ".waits");
    if (id == agg.last_gauges.end() || waits == agg.last_gauges.end()) break;
    if (id->second < 0) break;
    rows.push_back(HotRow{id->second, waits->second});
  }
  return rows;
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 10'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fs", double(ns) / 1e9);
  } else if (ns >= 10'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fms", double(ns) / 1e6);
  } else if (ns >= 10'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fus", double(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string Bar(double share, size_t width) {
  const size_t fill =
      share <= 0 ? 0 : static_cast<size_t>(share * double(width) + 0.5);
  std::string bar(std::min(fill, width), '#');
  bar.resize(width, '.');
  return bar;
}

std::string Sparkline(const std::vector<uint64_t>& values, size_t width) {
  if (values.empty()) return std::string(width, ' ');
  // Fold ticks into `width` columns (mean per column), then map each
  // column onto a 8-step ASCII ramp against the series max.
  static const char kRamp[] = " .:-=+*#%@";
  const size_t steps = sizeof(kRamp) - 2;
  std::vector<double> columns(std::min(width, values.size()), 0);
  const double per = double(values.size()) / double(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    const size_t lo = static_cast<size_t>(c * per);
    size_t hi = static_cast<size_t>((c + 1) * per);
    if (hi <= lo) hi = lo + 1;
    double sum = 0;
    for (size_t i = lo; i < hi && i < values.size(); ++i) sum += values[i];
    columns[c] = sum / double(hi - lo);
  }
  double max = 0;
  for (double v : columns) max = std::max(max, v);
  std::string out;
  out.reserve(columns.size());
  for (double v : columns) {
    const size_t step =
        max <= 0 ? 0
                 : static_cast<size_t>(v / max * double(steps) + 0.5);
    out.push_back(kRamp[std::min(step, steps)]);
  }
  return out;
}

uint64_t CounterOf(const Aggregate& agg, const char* name) {
  auto it = agg.counters.find(name);
  return it == agg.counters.end() ? 0 : it->second;
}

}  // namespace

Result<SeriesData> ParseSeries(const std::string& jsonl) {
  SeriesData series;
  bool saw_meta = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    Json root;
    JsonReader reader(line);
    if (!reader.Parse(&root) || root.type != Json::Type::kObj) {
      return Status::InvalidArgument("series line " +
                                     std::to_string(line_no) +
                                     ": malformed JSON");
    }
    const Json* type = root.Find("type");
    if (type == nullptr || type->type != Json::Type::kStr) {
      return Status::InvalidArgument("series line " +
                                     std::to_string(line_no) +
                                     ": missing \"type\"");
    }
    if (type->str == "series-meta") {
      if (saw_meta) {
        return Status::InvalidArgument("series line " +
                                       std::to_string(line_no) +
                                       ": duplicate series-meta");
      }
      saw_meta = true;
      if (const Json* v = root.Find("version")) series.version = v->u;
      if (const Json* v = root.Find("interval_ms")) series.interval_ms = v->u;
      if (const Json* v = root.Find("logical")) series.logical = v->b;
      if (const Json* v = root.Find("tag")) series.tag = v->str;
      if (series.version != 1) {
        return Status::InvalidArgument(
            "unsupported series version " + std::to_string(series.version));
      }
      continue;
    }
    if (type->str != "sample") {
      return Status::InvalidArgument("series line " +
                                     std::to_string(line_no) +
                                     ": unknown type \"" + type->str + "\"");
    }
    if (!saw_meta) {
      return Status::InvalidArgument(
          "series must start with a series-meta line");
    }
    SeriesSample sample;
    if (const Json* v = root.Find("tick")) sample.tick = v->u;
    if (const Json* v = root.Find("ts_ns")) sample.ts_ns = v->u;
    if (const Json* v = root.Find("dur_ns")) sample.dur_ns = v->u;
    if (const Json* counters = root.Find("counters")) {
      for (const auto& [name, value] : counters->obj) {
        sample.counters.emplace_back(name, value.u);
      }
    }
    if (const Json* gauges = root.Find("gauges")) {
      for (const auto& [name, value] : gauges->obj) {
        sample.gauges.emplace_back(name, value.i);
      }
    }
    if (const Json* hists = root.Find("hists")) {
      for (const auto& [name, value] : hists->obj) {
        SeriesSample::Hist hist;
        hist.name = name;
        if (const Json* v = value.Find("count")) hist.count = v->u;
        if (const Json* v = value.Find("sum")) hist.sum = v->u;
        if (const Json* buckets = value.Find("buckets")) {
          for (const Json& pair : buckets->arr) {
            if (pair.arr.size() == 2) {
              hist.buckets.emplace_back(
                  static_cast<uint32_t>(pair.arr[0].u), pair.arr[1].u);
            }
          }
        }
        sample.hists.push_back(std::move(hist));
      }
    }
    const uint64_t expected = series.samples.empty()
                                  ? sample.tick
                                  : series.samples.back().tick + 1;
    if (sample.tick != expected) {
      return Status::InvalidArgument(
          "series line " + std::to_string(line_no) +
          ": tick " + std::to_string(sample.tick) + ", expected " +
          std::to_string(expected));
    }
    series.samples.push_back(std::move(sample));
  }
  if (!saw_meta) {
    return Status::InvalidArgument("empty series (no series-meta line)");
  }
  return series;
}

std::string RenderScreen(const SeriesData& series, const TopOptions& options,
                         size_t window) {
  const Aggregate agg = Fold(series, window);
  const double seconds = WallSeconds(series, agg);
  std::ostringstream os;

  os << "oodb_top — " << (series.tag.empty() ? "(untagged)" : series.tag)
     << "  [" << agg.ticks << " ticks";
  if (seconds > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ", %.2fs", seconds);
    os << buf;
  }
  os << ", interval " << series.interval_ms << "ms]\n";

  const uint64_t committed = CounterOf(agg, "db.txn.committed");
  const uint64_t aborted = CounterOf(agg, "db.txn.aborted");
  const uint64_t operations = CounterOf(agg, "db.call.operations");
  os << "txns   " << committed << " committed, " << aborted << " aborted, "
     << operations << " operations";
  if (seconds > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  (%.0f txn/s, %.0f act/s)",
                  double(committed) / seconds, double(operations) / seconds);
    os << buf;
  }
  os << "\n";
  os << "commit/tick [" << Sparkline(agg.committed_per_tick,
                                     options.sparkline_width)
     << "]\n";

  uint64_t phase_sum = 0;
  uint64_t e2e_sum = 0;
  uint64_t e2e_count = 0;
  const std::vector<PhaseRow> phases =
      PhaseRows(agg, &phase_sum, &e2e_sum, &e2e_count);
  if (!phases.empty()) {
    auto e2e = agg.hists.find("phase.total_ns");
    os << "latency";
    if (e2e != agg.hists.end() && e2e->second.count > 0) {
      os << "  p50 " << FormatNs(e2e->second.Quantile(0.50)) << "  p99 "
         << FormatNs(e2e->second.Quantile(0.99));
    }
    os << "\n";
    os << "phase            share                      p50        p99\n";
    for (const PhaseRow& row : phases) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "  %-14s %5.1f%% [%s] %9s %10s\n",
                    row.name.c_str(), row.share * 100,
                    Bar(row.share, 16).c_str(), FormatNs(row.p50).c_str(),
                    FormatNs(row.p99).c_str());
      os << buf;
    }
  }

  const std::vector<StripeRow> stripes = StripeRows(agg);
  if (!stripes.empty()) {
    int64_t max_waits = 0;
    for (const StripeRow& row : stripes) {
      max_waits = std::max(max_waits, row.waits);
    }
    os << "stripes (held/waiters/waits)\n";
    std::vector<StripeRow> hottest = stripes;
    std::stable_sort(hottest.begin(), hottest.end(),
                     [](const StripeRow& a, const StripeRow& b) {
                       return a.waits > b.waits;
                     });
    if (hottest.size() > options.top_k) hottest.resize(options.top_k);
    for (const StripeRow& row : hottest) {
      const double share =
          max_waits > 0 ? double(row.waits) / double(max_waits) : 0;
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "  [%2zu] %4lld held %3lld waiting %8lld waits [%s]\n",
                    row.stripe, static_cast<long long>(row.held),
                    static_cast<long long>(row.waiters),
                    static_cast<long long>(row.waits),
                    Bar(share, 12).c_str());
      os << buf;
    }
  }

  const std::vector<HotRow> hot = HotRows(agg, options.top_k);
  if (!hot.empty()) {
    os << "hot objects (cumulative waits)\n";
    for (const HotRow& row : hot) {
      os << "  obj " << row.id << "  waits=" << row.waits << "\n";
    }
  }

  // storage.cache.{hits,misses} are counters (summed deltas over the
  // window); fall back to the gauges older series published.
  auto cache_tally = [&agg](const char* name, int64_t* out) {
    auto cit = agg.counters.find(name);
    if (cit != agg.counters.end()) {
      *out = static_cast<int64_t>(cit->second);
      return true;
    }
    auto git = agg.last_gauges.find(name);
    if (git == agg.last_gauges.end()) return false;
    *out = git->second;
    return true;
  };
  int64_t hit_n = 0, miss_n = 0;
  if (cache_tally("storage.cache.hits", &hit_n) &&
      cache_tally("storage.cache.misses", &miss_n)) {
    const int64_t total = hit_n + miss_n;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "cache  %lld hits, %lld misses (%.1f%% hit)\n",
                  static_cast<long long>(hit_n),
                  static_cast<long long>(miss_n),
                  total > 0 ? 100.0 * double(hit_n) / double(total) : 0.0);
    os << buf;
  }
  auto max_gauge = [&agg](const char* name) -> int64_t {
    auto it = agg.max_gauges.find(name);
    return it == agg.max_gauges.end() ? 0 : it->second;
  };
  if (agg.max_gauges.count("lock.waitsfor.nodes") != 0) {
    os << "waits-for  peak " << max_gauge("lock.waitsfor.nodes")
       << " nodes / " << max_gauge("lock.waitsfor.edges") << " edges\n";
  }
  if (agg.max_gauges.count("epoch.pending") != 0) {
    os << "epoch  " << max_gauge("epoch.number") << " epochs, peak "
       << max_gauge("epoch.pending") << " events pending\n";
  }
  if (agg.ticks > 0) {
    os << "sampler  " << agg.ticks << " ticks, "
       << FormatNs(agg.sampler_ns / agg.ticks) << " avg tick\n";
  }
  return os.str();
}

std::string RenderReport(const SeriesData& series,
                         const TopOptions& options) {
  const Aggregate agg = Fold(series, /*window=*/0);
  const double seconds = WallSeconds(series, agg);
  uint64_t phase_sum = 0;
  uint64_t e2e_sum = 0;
  uint64_t e2e_count = 0;
  const std::vector<PhaseRow> phases =
      PhaseRows(agg, &phase_sum, &e2e_sum, &e2e_count);

  std::ostringstream os;
  char buf[128];
  os << "{\n  \"format\": \"oodb-top-report-v1\",\n";
  os << "  \"tag\": \"" << series.tag << "\",\n";
  os << "  \"ticks\": " << agg.ticks << ",\n";
  os << "  \"interval_ms\": " << series.interval_ms << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  os << "  \"seconds\": " << buf << ",\n";

  const uint64_t committed = CounterOf(agg, "db.txn.committed");
  const uint64_t operations = CounterOf(agg, "db.call.operations");
  os << "  \"throughput\": {\"committed\": " << committed
     << ", \"aborted\": " << CounterOf(agg, "db.txn.aborted")
     << ", \"operations\": " << operations;
  if (seconds > 0) {
    std::snprintf(buf, sizeof(buf), "%.1f", double(committed) / seconds);
    os << ", \"txn_per_sec\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.1f", double(operations) / seconds);
    os << ", \"act_per_sec\": " << buf;
  }
  os << "},\n";

  os << "  \"phases\": {";
  bool first = true;
  for (const PhaseRow& row : phases) {
    std::snprintf(buf, sizeof(buf), "%.4f", row.share);
    os << (first ? "" : ",") << "\n    \"" << row.name
       << "\": {\"sum_ns\": " << row.sum << ", \"count\": " << row.count
       << ", \"share\": " << buf << ", \"p50_ns\": " << row.p50
       << ", \"p99_ns\": " << row.p99 << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  if (!phases.empty()) {
    // PhaseRows sorts by sum descending, so the dominant phase leads.
    os << "  \"dominant_phase\": \"" << phases.front().name << "\",\n";
    os << "  \"phase_sum_ns\": " << phase_sum << ",\n";
    os << "  \"e2e_sum_ns\": " << e2e_sum << ",\n";
    os << "  \"e2e_count\": " << e2e_count << ",\n";
    // The acceptance figure: phase sums over measured end-to-end time.
    // Execute-as-residual makes this 1.0 up to clamping.
    std::snprintf(buf, sizeof(buf), "%.4f",
                  e2e_sum > 0 ? double(phase_sum) / double(e2e_sum) : 0.0);
    os << "  \"coverage\": " << buf << ",\n";
  }

  const std::vector<HotRow> hot = HotRows(agg, options.top_k);
  os << "  \"hot_objects\": [";
  for (size_t i = 0; i < hot.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "{\"id\": " << hot[i].id
       << ", \"waits\": " << hot[i].waits << "}";
  }
  os << "],\n";

  std::vector<StripeRow> stripes = StripeRows(agg);
  std::stable_sort(stripes.begin(), stripes.end(),
                   [](const StripeRow& a, const StripeRow& b) {
                     return a.waits > b.waits;
                   });
  if (stripes.size() > options.top_k) stripes.resize(options.top_k);
  os << "  \"hot_stripes\": [";
  for (size_t i = 0; i < stripes.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "{\"stripe\": " << stripes[i].stripe
       << ", \"held\": " << stripes[i].held
       << ", \"waiters\": " << stripes[i].waiters
       << ", \"waits\": " << stripes[i].waits
       << ", \"wait_ns\": " << stripes[i].wait_ns << "}";
  }
  os << "],\n";

  // Counters first (summed deltas), gauge fallback for older series.
  auto cache_tally = [&agg](const char* name) -> int64_t {
    auto cit = agg.counters.find(name);
    if (cit != agg.counters.end()) return static_cast<int64_t>(cit->second);
    auto git = agg.last_gauges.find(name);
    return git == agg.last_gauges.end() ? -1 : git->second;
  };
  const int64_t hits = cache_tally("storage.cache.hits");
  const int64_t misses = cache_tally("storage.cache.misses");
  if (hits >= 0 && misses >= 0) {
    const int64_t total = hits + misses;
    std::snprintf(buf, sizeof(buf), "%.4f",
                  total > 0 ? double(hits) / double(total) : 0.0);
    os << "  \"cache\": {\"hits\": " << hits << ", \"misses\": " << misses
       << ", \"hit_ratio\": " << buf << "},\n";
  }
  auto max_gauge = [&agg](const char* name) {
    auto it = agg.max_gauges.find(name);
    return it == agg.max_gauges.end() ? int64_t{0} : it->second;
  };
  os << "  \"waits_for\": {\"peak_nodes\": "
     << max_gauge("lock.waitsfor.nodes")
     << ", \"peak_edges\": " << max_gauge("lock.waitsfor.edges") << "},\n";

  os << "  \"sampler\": {\"ticks\": " << agg.ticks
     << ", \"total_tick_ns\": " << agg.sampler_ns << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace oodb
