#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace oodb {

namespace {

uint64_t WallNanos() {
  using Clock = std::chrono::steady_clock;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping for names/outcomes/details.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Ids print as signed so UINT64_MAX (no parent / no object) reads -1.
long long AsSigned(uint64_t v) {
  return v == UINT64_MAX ? -1 : static_cast<long long>(v);
}

}  // namespace

Tracer::Tracer(TracerOptions options) : options_(std::move(options)) {
  if (!options_.golden) wall_base_ = WallNanos();
}

uint64_t Tracer::NowNs() {
  if (options_.golden) {
    return logical_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return WallNanos() - wall_base_;
}

uint32_t Tracer::ThreadId() {
  if (options_.golden) return 0;
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::RecordSpan(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

void Tracer::RecordInstant(std::string name, uint64_t ts,
                           std::string detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(TraceInstant{std::move(name), ts, std::move(detail)});
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void Tracer::SortedEvents(std::vector<const TraceSpan*>* spans,
                          std::vector<const TraceInstant*>* instants) const {
  spans->reserve(spans_.size());
  for (const TraceSpan& s : spans_) spans->push_back(&s);
  std::sort(spans->begin(), spans->end(),
            [](const TraceSpan* a, const TraceSpan* b) {
              return a->start != b->start ? a->start < b->start
                                          : a->id < b->id;
            });
  instants->reserve(instants_.size());
  for (const TraceInstant& i : instants_) instants->push_back(&i);
  std::sort(instants->begin(), instants->end(),
            [](const TraceInstant* a, const TraceInstant* b) {
              return a->ts != b->ts ? a->ts < b->ts : a->name < b->name;
            });
}

std::string Tracer::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const TraceSpan*> spans;
  std::vector<const TraceInstant*> instants;
  SortedEvents(&spans, &instants);

  std::ostringstream os;
  os << "{\"type\":\"meta\",\"version\":1,\"golden\":"
     << (options_.golden ? "true" : "false") << ",\"tag\":\""
     << Escape(options_.tag) << "\"}\n";
  for (const TraceInstant* i : instants) {
    os << "{\"type\":\"instant\",\"name\":\"" << Escape(i->name)
       << "\",\"ts\":" << i->ts << ",\"detail\":\"" << Escape(i->detail)
       << "\"}\n";
  }
  for (const TraceSpan* s : spans) {
    os << "{\"type\":\"span\",\"id\":" << s->id
       << ",\"parent\":" << AsSigned(s->parent) << ",\"name\":\""
       << Escape(s->name) << "\",\"object\":" << AsSigned(s->object)
       << ",\"txn\":" << s->txn << ",\"level\":" << s->level
       << ",\"tid\":" << s->tid << ",\"start\":" << s->start
       << ",\"end\":" << s->end << ",\"outcome\":\"" << Escape(s->outcome)
       << "\"";
    // Phase breakdowns are wall-clock ns, so golden (logical-clock)
    // traces omit them to stay byte-stable.
    if (!s->phases.empty() && !options_.golden) {
      os << ",\"phases\":" << s->phases;
    }
    os << "}\n";
  }
  return os.str();
}

std::string Tracer::ToChromeTrace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const TraceSpan*> spans;
  std::vector<const TraceInstant*> instants;
  SortedEvents(&spans, &instants);

  // In golden mode logical ticks are exported verbatim as microseconds;
  // in wall mode nanoseconds are converted. Both keep containment.
  auto ts_of = [this](uint64_t ns) -> double {
    return options_.golden ? double(ns) : double(ns) / 1000.0;
  };

  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"oodb"
     << (options_.tag.empty() ? "" : " ") << Escape(options_.tag) << "\"}}";
  char buf[64];
  for (const TraceInstant* i : instants) {
    std::snprintf(buf, sizeof(buf), "%.3f", ts_of(i->ts));
    os << ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":" << buf
       << ",\"s\":\"g\",\"name\":\"" << Escape(i->name)
       << "\",\"args\":{\"detail\":\"" << Escape(i->detail) << "\"}}";
  }
  for (const TraceSpan* s : spans) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << s->tid << ",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", ts_of(s->start));
    os << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  ts_of(s->end) - ts_of(s->start));
    os << buf << ",\"name\":\"" << Escape(s->name)
       << "\",\"args\":{\"id\":" << s->id
       << ",\"parent\":" << AsSigned(s->parent)
       << ",\"object\":" << AsSigned(s->object) << ",\"txn\":" << s->txn
       << ",\"level\":" << s->level << ",\"outcome\":\""
       << Escape(s->outcome) << "\"}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace oodb
