// oodb_trace: run an instrumented workload and export its trace.
//
// Runs either the paper's Fig 7 / Example 4 schedule (the deterministic
// golden workload) or a small concurrent encyclopedia mix through the
// real runtime with a Tracer and a MetricsRegistry attached, optionally
// validates the recorded history, and writes the trace as Chrome
// trace_event JSON (open in Perfetto or chrome://tracing) or as the
// JSON-lines schema that trace_schema_check enforces.
//
// Examples:
//   oodb_trace --trace-out=fig7.json           # Chrome trace of Fig 7
//   oodb_trace --golden --format=jsonl         # byte-stable JSONL
//   oodb_trace --workload=mix --threads=8 --metrics-out=-

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schedule/validator.h"
#include "util/random.h"
#include "workload/harness.h"

using namespace oodb;

namespace {

struct Options {
  std::string workload = "fig7";
  std::string scheduler = "open";
  std::string format = "chrome";
  std::string trace_out = "-";
  std::string metrics_out;
  size_t threads = 4;
  size_t txns = 50;
  bool golden = false;
  bool validate = true;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: oodb_trace [options]\n"
      "  --workload=fig7|mix   fig7: the Example 4 schedule (default);\n"
      "                        mix: a concurrent encyclopedia mix\n"
      "  --scheduler=open|closed|flat2pl|exclusive|none  (default open)\n"
      "  --format=chrome|jsonl (default chrome)\n"
      "  --trace-out=PATH      trace destination, '-' = stdout (default)\n"
      "  --metrics-out=PATH    metrics JSON destination ('-' = stdout)\n"
      "  --threads=N           mix workers (default 4)\n"
      "  --txns=N              mix transactions per worker (default 50)\n"
      "  --golden              logical clock + tid 0: byte-stable traces\n"
      "  --no-validate         skip the oo-serializability validation\n");
}

bool ParseFlag(const std::string& arg, const char* name,
               std::string* value) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--golden") {
      opts->golden = true;
    } else if (arg == "--no-validate") {
      opts->validate = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (ParseFlag(arg, "--workload", &opts->workload) ||
               ParseFlag(arg, "--scheduler", &opts->scheduler) ||
               ParseFlag(arg, "--format", &opts->format) ||
               ParseFlag(arg, "--trace-out", &opts->trace_out) ||
               ParseFlag(arg, "--metrics-out", &opts->metrics_out)) {
      // handled
    } else if (ParseFlag(arg, "--threads", &value)) {
      opts->threads = std::stoul(value);
    } else if (ParseFlag(arg, "--txns", &value)) {
      opts->txns = std::stoul(value);
    } else {
      std::fprintf(stderr, "oodb_trace: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

bool SchedulerFromName(const std::string& name, SchedulerKind* out) {
  if (name == "open") {
    *out = SchedulerKind::kOpenNested;
  } else if (name == "closed") {
    *out = SchedulerKind::kClosedNested;
  } else if (name == "flat2pl") {
    *out = SchedulerKind::kFlat2PL;
  } else if (name == "exclusive") {
    *out = SchedulerKind::kObjectExclusive;
  } else if (name == "none") {
    *out = SchedulerKind::kNone;
  } else {
    return false;
  }
  return true;
}

/// The four transactions of Example 4 on a small encyclopedia — the
/// schedule behind Fig 7, and the golden-trace workload.
void RunFig7(Database* db) {
  Encyclopedia::RegisterMethods(db);
  ObjectId enc = Encyclopedia::Create(db, "Enc", 8, 8, 4);
  (void)db->RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert("DBS", "database systems"));
  });
  (void)db->RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
    return txn.Call(enc, Encyclopedia::Change("DBMS", "dbms v2"));
  });
  (void)db->RunTransaction("T3", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
  });
  (void)db->RunTransaction("T4", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
  });
}

/// A contended concurrent mix: inserts, changes, searches, and readSeq
/// over a small key range, from `threads` workers.
void RunMix(Database* db, MetricsRegistry* registry, size_t threads,
            size_t txns) {
  Encyclopedia::RegisterMethods(db);
  ObjectId enc = Encyclopedia::Create(db, "Enc", 16, 16, 4);
  HarnessConfig config;
  config.threads = threads;
  config.txns_per_thread = txns;
  config.metrics = registry;
  HarnessResult result = Harness::Run(
      db, config, [enc](size_t thread, size_t index) -> TransactionBody {
        return [enc, thread, index](MethodContext& txn) -> Status {
          Rng rng(thread * 7919 + index);
          std::string key = "K" + std::to_string(rng.NextBelow(64));
          switch (rng.NextBelow(10)) {
            case 0:
              return txn.Call(enc, Encyclopedia::ReadSeq());
            case 1:
            case 2: {
              Value out;
              return txn.Call(enc, Encyclopedia::Search(key), &out);
            }
            case 3:
            case 4:
            case 5: {
              Status st = txn.Call(
                  enc, Encyclopedia::Change(key, "v" + std::to_string(index)));
              // Changing a key nobody inserted yet is a benign miss.
              return st.IsNotFound() ? Status::OK() : st;
            }
            default: {
              Status st = txn.Call(
                  enc,
                  Encyclopedia::Insert(key, "d" + std::to_string(index)));
              return st.code() == StatusCode::kAlreadyExists ? Status::OK()
                                                             : st;
            }
          }
        };
      });
  std::fprintf(stderr, "mix: %s\n", result.Row().c_str());
}

bool WriteOut(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "oodb_trace: cannot open '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }
  SchedulerKind kind;
  if (!SchedulerFromName(opts.scheduler, &kind)) {
    std::fprintf(stderr, "oodb_trace: unknown scheduler '%s'\n",
                 opts.scheduler.c_str());
    return 2;
  }
  if (opts.format != "chrome" && opts.format != "jsonl") {
    std::fprintf(stderr, "oodb_trace: unknown format '%s'\n",
                 opts.format.c_str());
    return 2;
  }

  MetricsRegistry registry;
  TracerOptions trace_options;
  trace_options.golden = opts.golden;
  trace_options.tag = opts.workload + ":" + opts.scheduler;
  Tracer tracer(trace_options);

  DatabaseOptions db_options;
  db_options.scheduler = kind;
  Database db(db_options);
  db.AttachObservability(&registry, &tracer);

  if (opts.workload == "fig7") {
    RunFig7(&db);
  } else if (opts.workload == "mix") {
    RunMix(&db, &registry, opts.threads, opts.txns);
  } else {
    std::fprintf(stderr, "oodb_trace: unknown workload '%s'\n",
                 opts.workload.c_str());
    return 2;
  }
  db.counters().PublishTo(&registry);

  if (opts.validate) {
    ValidationOptions voptions;
    voptions.metrics = &registry;
    voptions.tracer = &tracer;
    ValidationReport report = Validator::Validate(&db.ts(), voptions);
    std::fprintf(stderr, "validate: %s\n", report.Summary().c_str());
  }

  std::string trace = opts.format == "chrome" ? tracer.ToChromeTrace()
                                              : tracer.ToJsonLines();
  if (!WriteOut(opts.trace_out, trace)) return 1;
  if (!opts.metrics_out.empty() &&
      !WriteOut(opts.metrics_out, registry.JsonSnapshot() + "\n")) {
    return 1;
  }
  std::fprintf(stderr, "oodb_trace: %zu spans (%s, %s)\n",
               tracer.SpanCount(), opts.workload.c_str(),
               opts.format.c_str());
  return 0;
}
