// oodb_explain: validate an execution and explain the verdict.
//
// Runs one of the built-in worlds — the paper's Fig 7 / Example 4
// schedule through the real runtime, or a Section-9 anomaly scenario —
// or loads a recorded history dump, validates it with provenance
// recording on, and renders the explanation (witness cycles expanded to
// their primitive conflicts, the Def 6/15 relations, the Def 16 union)
// as text, Graphviz DOT, or JSON.
//
// Validation always runs the serial reference engine (num_threads = 1):
// the explanation is byte-deterministic, which is what the golden tests
// and the CI explain gate diff against.
//
// Examples:
//   oodb_explain                                   # Fig 7, text
//   oodb_explain --workload=s9 --anomaly=lost-update --format=dot
//   oodb_explain --history=run.hist --format=json --metrics-out=-

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/encyclopedia.h"
#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schedule/history_io.h"
#include "schedule/validator.h"
#include "workload/anomalies.h"

using namespace oodb;

namespace {

struct Options {
  std::string workload = "fig7";
  std::string anomaly = "lost-update";
  std::string variant = "bad";
  std::string history;
  std::string format = "text";
  std::string out = "-";
  std::string metrics_out;
  bool include_global = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: oodb_explain [options]\n"
      "  --workload=fig7|s9    fig7: the Example 4 schedule (default);\n"
      "                        s9: a Section 9 anomaly scenario\n"
      "  --anomaly=NAME        s9 scenario: lost-update (default),\n"
      "                        inconsistent-read, phantom, write-skew\n"
      "  --variant=bad|good    s9 interleaving to explain (default bad)\n"
      "  --history=PATH        explain a recorded history dump instead\n"
      "  --format=text|dot|json  (default text)\n"
      "  --out=PATH            destination, '-' = stdout (default)\n"
      "  --metrics-out=PATH    metrics JSON destination ('-' = stdout)\n"
      "  --global              also run the strictly-global cycle check\n");
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--global") {
      opts->include_global = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (ParseFlag(arg, "--workload", &opts->workload) ||
               ParseFlag(arg, "--anomaly", &opts->anomaly) ||
               ParseFlag(arg, "--variant", &opts->variant) ||
               ParseFlag(arg, "--history", &opts->history) ||
               ParseFlag(arg, "--format", &opts->format) ||
               ParseFlag(arg, "--out", &opts->out) ||
               ParseFlag(arg, "--metrics-out", &opts->metrics_out)) {
      // handled
    } else {
      std::fprintf(stderr, "oodb_explain: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

bool AnomalyFromName(const std::string& name, AnomalyKind* out) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    if (name == AnomalyKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// The four transactions of Example 4 on a small encyclopedia — the
/// same deterministic schedule oodb_trace --workload=fig7 runs.
void RunFig7(Database* db) {
  Encyclopedia::RegisterMethods(db);
  ObjectId enc = Encyclopedia::Create(db, "Enc", 8, 8, 4);
  (void)db->RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert("DBS", "database systems"));
  });
  (void)db->RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
    return txn.Call(enc, Encyclopedia::Change("DBMS", "dbms v2"));
  });
  (void)db->RunTransaction("T3", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
  });
  (void)db->RunTransaction("T4", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
  });
}

bool WriteOut(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "oodb_explain: cannot open '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    PrintUsage();
    return 2;
  }
  if (opts.format != "text" && opts.format != "dot" &&
      opts.format != "json") {
    std::fprintf(stderr, "oodb_explain: unknown format '%s'\n",
                 opts.format.c_str());
    return 2;
  }
  if (opts.variant != "bad" && opts.variant != "good") {
    std::fprintf(stderr, "oodb_explain: unknown variant '%s'\n",
                 opts.variant.c_str());
    return 2;
  }

  MetricsRegistry registry;
  TracerOptions trace_options;
  trace_options.golden = true;  // logical clock: byte-stable output
  trace_options.tag = "explain";
  Tracer tracer(trace_options);
  const Tracer* span_source = nullptr;

  // The system to explain. Either owned by a Database (fig7), loaded
  // from a dump, or built directly (s9 anomalies).
  std::unique_ptr<Database> db;
  std::unique_ptr<TransactionSystem> owned;
  TransactionSystem* ts = nullptr;

  if (!opts.history.empty()) {
    std::ifstream in(opts.history, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "oodb_explain: cannot read '%s'\n",
                   opts.history.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Types resolve by name through the global registry; make sure the
    // built-in container and app types are registered even though no
    // workload ran in this process.
    {
      Database scratch;
      RegisterPageMethods(&scratch);
      BpTree::RegisterMethods(&scratch);
      Encyclopedia::RegisterMethods(&scratch);
    }
    auto loaded = HistoryIo::LoadWithGlobalTypes(buf.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "oodb_explain: load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    owned = std::move(*loaded);
    ts = owned.get();
  } else if (opts.workload == "fig7") {
    db = std::make_unique<Database>();
    db->AttachObservability(&registry, &tracer);
    RunFig7(db.get());
    ts = &db->ts();
    span_source = &tracer;  // span ids are action ids: cross-reference
  } else if (opts.workload == "s9") {
    AnomalyKind kind;
    if (!AnomalyFromName(opts.anomaly, &kind)) {
      std::fprintf(stderr, "oodb_explain: unknown anomaly '%s'\n",
                   opts.anomaly.c_str());
      return 2;
    }
    owned = MakeAnomaly(kind, opts.variant == "bad");
    ts = owned.get();
  } else {
    std::fprintf(stderr, "oodb_explain: unknown workload '%s'\n",
                 opts.workload.c_str());
    return 2;
  }

  ValidationOptions voptions;
  voptions.record_provenance = true;
  voptions.num_threads = 1;  // serial reference engine: deterministic
  voptions.check_global = opts.include_global;
  voptions.metrics = &registry;
  ValidationReport report = Validator::Validate(ts, voptions);

  Explainer explainer(*ts, report, ExplainOptions{}, span_source);
  std::string rendered;
  if (opts.format == "text") {
    rendered = explainer.Text();
  } else if (opts.format == "dot") {
    rendered = explainer.Dot();
  } else {
    rendered = explainer.Json();
  }
  if (!WriteOut(opts.out, rendered)) return 1;
  if (!opts.metrics_out.empty() &&
      !WriteOut(opts.metrics_out, registry.JsonSnapshot() + "\n")) {
    return 1;
  }
  std::fprintf(stderr, "oodb_explain: %s, %zu witnesses (%s)\n",
               report.oo_serializable ? "oo-serializable" : "NOT serializable",
               report.witnesses.size(), opts.format.c_str());
  return 0;
}
