#include "obs/trace_check.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/top.h"
#include "util/histogram.h"

namespace oodb {

namespace {

/// Extracts the value of "key": as a signed number. False if absent or
/// malformed.
bool FindNumber(const std::string& line, const std::string& key,
                long long* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  long long v = std::strtoll(start, &end, 10);
  if (end == start) return false;
  *out = v;
  return true;
}

/// Extracts the value of "key": as a string (no unescaping; emitter
/// escapes quotes, so scanning to the next unescaped quote is exact).
bool FindString(const std::string& line, const std::string& key,
                std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  std::string value;
  while (pos < line.size()) {
    char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      value += line[pos + 1];
      pos += 2;
      continue;
    }
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    value += c;
    ++pos;
  }
  return false;
}

struct SpanRow {
  long long parent, txn, level;
  long long start, end;
};

Status Fail(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                 ": " + what);
}

}  // namespace

Status ValidateTraceLines(const std::string& jsonl) {
  std::istringstream in(jsonl);
  std::string line;
  size_t line_no = 0;
  std::unordered_map<long long, SpanRow> spans;
  // Two passes over the same document: the first collects spans (the
  // export sorts by start time, which is not topological for parents —
  // a parent *ends* after but *starts* before its children, so parents
  // do come first; still, collecting up front keeps the checker
  // order-independent), the second verifies parent linkage.
  std::vector<std::pair<size_t, long long>> to_check;  // (line, id)

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string type;
    if (!FindString(line, "type", &type)) {
      return Fail(line_no, "missing \"type\"");
    }
    if (line_no == 1) {
      if (type != "meta") return Fail(line_no, "first line must be meta");
      long long version;
      if (!FindNumber(line, "version", &version)) {
        return Fail(line_no, "meta without version");
      }
      continue;
    }
    if (type == "meta") return Fail(line_no, "duplicate meta record");
    if (type == "instant") {
      std::string name;
      long long ts;
      if (!FindString(line, "name", &name) || name.empty()) {
        return Fail(line_no, "instant without name");
      }
      if (!FindNumber(line, "ts", &ts) || ts < 0) {
        return Fail(line_no, "instant without ts");
      }
      continue;
    }
    if (type != "span") return Fail(line_no, "unknown type '" + type + "'");

    long long id, object, tid;
    SpanRow row;
    std::string name, outcome;
    if (!FindNumber(line, "id", &id)) return Fail(line_no, "span without id");
    if (!FindNumber(line, "parent", &row.parent) ||
        !FindNumber(line, "object", &object) ||
        !FindNumber(line, "txn", &row.txn) ||
        !FindNumber(line, "level", &row.level) ||
        !FindNumber(line, "tid", &tid) ||
        !FindNumber(line, "start", &row.start) ||
        !FindNumber(line, "end", &row.end)) {
      return Fail(line_no, "span missing a required numeric field");
    }
    if (!FindString(line, "name", &name) || name.empty()) {
      return Fail(line_no, "span without name");
    }
    if (!FindString(line, "outcome", &outcome) || outcome.empty()) {
      return Fail(line_no, "span without outcome");
    }
    if (row.start > row.end) return Fail(line_no, "span with start > end");
    if (row.level < 0) return Fail(line_no, "negative level");
    if (row.level == 0 && row.parent != -1) {
      return Fail(line_no, "level-0 span with a parent");
    }
    if (row.level > 0 && row.parent == -1) {
      return Fail(line_no, "nested span without parent");
    }
    if (!spans.emplace(id, row).second) {
      return Fail(line_no, "duplicate span id " + std::to_string(id));
    }
    if (row.parent != -1) to_check.emplace_back(line_no, id);
  }
  if (line_no == 0) return Status::InvalidArgument("trace: empty document");

  for (const auto& [at, id] : to_check) {
    const SpanRow& child = spans.at(id);
    auto it = spans.find(child.parent);
    if (it == spans.end()) {
      return Fail(at, "parent " + std::to_string(child.parent) +
                          " has no span");
    }
    const SpanRow& parent = it->second;
    if (child.start < parent.start || child.end > parent.end) {
      return Fail(at, "span escapes its parent's time window");
    }
    if (child.txn != parent.txn) {
      return Fail(at, "span and parent disagree on txn");
    }
    if (child.level != parent.level + 1) {
      return Fail(at, "span level is not parent level + 1");
    }
  }
  return Status::OK();
}

Status ValidateSeriesLines(const std::string& jsonl) {
  // ParseSeries already enforces the document structure: one meta line
  // first, known version, contiguous 1-based ticks, flat JSON samples.
  Result<SeriesData> series = ParseSeries(jsonl);
  if (!series.ok()) return series.status();
  for (size_t i = 0; i < series->samples.size(); ++i) {
    const SeriesSample& sample = series->samples[i];
    for (const SeriesSample::Hist& hist : sample.hists) {
      uint64_t bucket_total = 0;
      for (const auto& [bucket, delta] : hist.buckets) {
        if (bucket >= hist_layout::kBucketCount) {
          return Status::InvalidArgument(
              "series tick " + std::to_string(sample.tick) + ": hist '" +
              hist.name + "' bucket " + std::to_string(bucket) +
              " outside layout (" +
              std::to_string(hist_layout::kBucketCount) + " buckets)");
        }
        bucket_total += delta;
      }
      // Every observation lands in exactly one bucket, so the per-tick
      // count delta must equal the sum of the bucket deltas.
      if (bucket_total != hist.count) {
        return Status::InvalidArgument(
            "series tick " + std::to_string(sample.tick) + ": hist '" +
            hist.name + "' count " + std::to_string(hist.count) +
            " != bucket delta sum " + std::to_string(bucket_total));
      }
    }
  }
  return Status::OK();
}

}  // namespace oodb
