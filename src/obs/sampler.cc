#include "obs/sampler.h"

#include <cassert>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace oodb {

namespace {

uint64_t NowNsSince(std::chrono::steady_clock::time_point base) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

std::string EscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

MetricsSampler::MetricsSampler(MetricsRegistry* registry,
                               SamplerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::AddProbe(std::string name,
                              std::function<void()> probe) {
  std::lock_guard<std::mutex> lock(tick_mu_);
  probes_.emplace_back(std::move(name), std::move(probe));
}

void MetricsSampler::RefreshRefs() {
  const uint64_t version = registry_->Version();
  if (enumerated_ && version == seen_version_) return;

  MetricsRegistry::MetricRefs fresh = registry_->Enumerate();

  // Carry baselines over by name; metrics registered since the last
  // tick start from zero, so their whole current value is this tick's
  // delta (it all happened since then).
  std::unordered_map<std::string, uint64_t> old_counters;
  for (size_t i = 0; i < refs_.counters.size(); ++i) {
    old_counters[refs_.counters[i].first] = counter_base_[i];
  }
  std::unordered_map<std::string, const HistogramSnapshot*> old_hists;
  for (size_t i = 0; i < refs_.histograms.size(); ++i) {
    old_hists[refs_.histograms[i].first] = &hist_base_[i];
  }

  std::vector<uint64_t> counter_base(fresh.counters.size(), 0);
  for (size_t i = 0; i < fresh.counters.size(); ++i) {
    auto it = old_counters.find(fresh.counters[i].first);
    if (it != old_counters.end()) counter_base[i] = it->second;
  }
  std::vector<HistogramSnapshot> hist_base(fresh.histograms.size());
  for (size_t i = 0; i < fresh.histograms.size(); ++i) {
    auto it = old_hists.find(fresh.histograms[i].first);
    if (it != old_hists.end()) hist_base[i] = *it->second;
  }

  refs_ = std::move(fresh);
  counter_base_ = std::move(counter_base);
  hist_base_ = std::move(hist_base);
  seen_version_ = version;
  enumerated_ = true;
}

Sample MetricsSampler::Fold() {
  const uint64_t fold_start = NowNsSince(start_);
  for (auto& [name, probe] : probes_) {
    (void)name;
    probe();
  }
  RefreshRefs();

  Sample sample;
  sample.tick = ++tick_count_;
  sample.ts_ns = options_.logical_clock ? sample.tick : NowNsSince(start_);

  uint64_t nonmonotone = 0;
  for (size_t i = 0; i < refs_.counters.size(); ++i) {
    const uint64_t value = refs_.counters[i].second->Value();
    if (value < counter_base_[i]) {
      // Counters are monotone by contract; a decrease means some layer
      // rebuilt "its" registry mid-run (the bug the s2/s6 single-
      // registry fix removed) or reused a name for a non-counter.
      ++nonmonotone;
      assert(false && "counter decreased between sampler ticks");
      counter_base_[i] = value;
      continue;
    }
    const uint64_t delta = value - counter_base_[i];
    counter_base_[i] = value;
    if (delta != 0) {
      sample.counters.emplace_back(refs_.counters[i].first, delta);
    }
  }

  sample.gauges.reserve(refs_.gauges.size());
  for (const auto& [name, gauge] : refs_.gauges) {
    sample.gauges.emplace_back(name, gauge->Value());
  }

  for (size_t i = 0; i < refs_.histograms.size(); ++i) {
    HistogramSnapshot snap = refs_.histograms[i].second->Snapshot();
    const HistogramSnapshot& base = hist_base_[i];
    if (snap.count() == base.count() && snap.sum() == base.sum()) {
      hist_base_[i] = std::move(snap);
      continue;
    }
    Sample::HistDelta delta;
    delta.name = refs_.histograms[i].first;
    delta.count = snap.count() - base.count();
    delta.sum = snap.sum() - base.sum();
    const auto& now_buckets = snap.buckets();
    const auto& base_buckets = base.buckets();
    for (size_t b = 0; b < now_buckets.size(); ++b) {
      if (now_buckets[b] != base_buckets[b]) {
        delta.buckets.emplace_back(static_cast<uint32_t>(b),
                                   now_buckets[b] - base_buckets[b]);
      }
    }
    sample.hists.push_back(std::move(delta));
    hist_base_[i] = std::move(snap);
  }

  sample.dur_ns = NowNsSince(start_) - fold_start;

  {
    std::lock_guard<std::mutex> ring(ring_mu_);
    ring_.push_back(sample);
    while (ring_.size() > options_.ring_capacity) {
      ring_.pop_front();
      ++stats_.dropped_samples;
    }
    ++stats_.ticks;
    stats_.total_tick_ns += sample.dur_ns;
    if (sample.dur_ns > stats_.max_tick_ns) {
      stats_.max_tick_ns = sample.dur_ns;
    }
    stats_.nonmonotone_counters += nonmonotone;
  }
  return sample;
}

Sample MetricsSampler::SampleNow() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  return Fold();
}

void MetricsSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(wake_mu_);
    while (!stop_requested_) {
      if (wake_.wait_for(lock, options_.interval,
                         [this] { return stop_requested_; })) {
        break;
      }
      lock.unlock();
      SampleNow();
      lock.lock();
    }
  });
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    running_ = false;
  }
  // The final fold publishes everything since the last periodic tick,
  // so a stopped sampler's series accounts for the whole run.
  SampleNow();
}

std::vector<Sample> MetricsSampler::Series() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return {ring_.begin(), ring_.end()};
}

SamplerStats MetricsSampler::Stats() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return stats_;
}

std::string MetricsSampler::SampleJson(const Sample& sample) {
  std::ostringstream os;
  os << "{\"type\":\"sample\",\"tick\":" << sample.tick
     << ",\"ts_ns\":" << sample.ts_ns << ",\"dur_ns\":" << sample.dur_ns
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : sample.counters) {
    os << (first ? "" : ",") << "\"" << EscapeName(name) << "\":" << delta;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : sample.gauges) {
    os << (first ? "" : ",") << "\"" << EscapeName(name) << "\":" << value;
    first = false;
  }
  os << "},\"hists\":{";
  first = true;
  for (const auto& hist : sample.hists) {
    os << (first ? "" : ",") << "\"" << EscapeName(hist.name)
       << "\":{\"count\":" << hist.count << ",\"sum\":" << hist.sum
       << ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [bucket, delta] : hist.buckets) {
      os << (first_bucket ? "" : ",") << "[" << bucket << "," << delta
         << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsSampler::ToJsonLines() const {
  std::ostringstream os;
  os << "{\"type\":\"series-meta\",\"version\":1,\"interval_ms\":"
     << options_.interval.count() << ",\"logical\":"
     << (options_.logical_clock ? "true" : "false") << ",\"tag\":\""
     << EscapeName(options_.tag) << "\"}\n";
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (const Sample& sample : ring_) {
    os << SampleJson(sample) << "\n";
  }
  return os.str();
}

Status MetricsSampler::WriteJsonLines(const std::string& path) const {
  const std::string body = ToJsonLines();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace oodb
