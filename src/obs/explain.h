// Explainer: renders a validation verdict as an explanation.
//
// A ValidationReport says *whether* an execution is oo-serializable; the
// explainer says *why not* (or why), in three deterministic formats:
//   * Text — the witness cycles with every edge expanded down its
//     provenance chain to the Axiom 1 primitive conflict, then the
//     Def 6 relations per object, the Def 15 added relations, the
//     Def 16 union graph, and the serialization order;
//   * DOT  — the same graphs for Graphviz, witness edges highlighted
//     (red, thick), virtual Def 5 nodes double-bordered, transaction
//     dependencies bold and added dependencies dashed;
//   * JSON — the machine-readable form (schema in
//     docs/OBSERVABILITY.md): an action table plus witnesses,
//     relations, and the union as id pairs.
//
// Determinism contract: identical (system, report, tracer) inputs
// produce byte-identical output. Objects render in id order, nodes in
// relation insertion order, successors sorted ascending — no hash-map
// iteration anywhere. Validate with num_threads = 1 (the serial
// reference engine) when the output is golden-tested, because the
// indexed engine may legitimately record a different (equally valid)
// provenance cause for the same edge.
//
// The relations and union sections need ValidationOptions::
// record_provenance (which keeps the schedules on the report); without
// it the explainer still renders the verdict and every witness, just
// with bare cycles instead of derivation chains.
//
// A Tracer whose span ids line up with action ids (obs/trace.h records
// exactly that) lets the explainer cross-reference witnesses to trace
// spans: actions that have a span are marked, so a cycle can be chased
// into the timeline view.

#pragma once

#include <string>
#include <unordered_set>

#include "model/transaction_system.h"
#include "schedule/validator.h"

namespace oodb {

class Tracer;

struct ExplainOptions {
  /// Render the per-object Def 6 relations (and Def 15 added
  /// relations). Needs report.schedules.
  bool include_relations = true;
  /// Render the Def 16 union graph (action ∪ added dependencies across
  /// all objects). Needs report.schedules.
  bool include_union = true;
};

class Explainer {
 public:
  /// `ts` must be the system the report was computed from, after the
  /// Def 5 extension (Validate extends in place, so passing the same
  /// system is the natural call). All referenced objects must outlive
  /// the explainer.
  Explainer(const TransactionSystem& ts, const ValidationReport& report,
            ExplainOptions options = {}, const Tracer* tracer = nullptr);

  std::string Text() const;
  std::string Dot() const;
  std::string Json() const;

 private:
  /// Object name, with "(virtual of X, Def 5)" appended for Def 5
  /// duplicates; "(global)" for the invalid id of global witnesses.
  std::string ObjName(ObjectId o) const;
  /// Human label of an action ("Object.method(params) [T1.2]").
  std::string Label(ActionId a) const;
  bool HasSpan(ActionId a) const { return span_ids_.count(a.value) != 0; }

  void TextWitness(const Witness& w, size_t index, std::string* out) const;
  void TextStep(const ProvenanceStep& step, std::string* out) const;

  const TransactionSystem& ts_;
  const ValidationReport& report_;
  ExplainOptions options_;
  std::unordered_set<uint64_t> span_ids_;
};

}  // namespace oodb
