// MetricsSampler: the flight recorder.
//
// A registry snapshot answers "what happened over the whole run"; the
// sampler answers "what was happening at second 3". On every tick it
// folds the registry into one Sample — counter *deltas* since the
// previous tick, gauge absolute values, and sparse per-bucket histogram
// deltas — and appends it to a bounded ring. The ring is the time
// series: export it as JSON lines (one sample per line) and feed it to
// `oodb_top`, or keep it in memory as a crash-scene record of the last
// N ticks.
//
// Consistency model: bounded staleness, never stop-the-world. The
// instrumented threads only ever touch relaxed atomics, so sampling
// costs them nothing — no barrier, no pause, no lock they can block on.
// The price is that a Sample is not a point-in-time cut: the fold reads
// each metric at a slightly different instant, so a sample may see
// counter increments of a transaction whose histogram observation lands
// in the next tick. Every delta is eventually attributed exactly once
// (the property the sampler correctness test pins down): for any prefix
// of samples, sum(deltas) equals some registry state that really
// existed between tick boundaries, and after quiescence sum(deltas) ==
// the final snapshot, exactly.
//
// Probes: contention snapshots (lock-stripe occupancy, waits-for graph
// size, cache hit ratios, epoch-pipeline depth) are functions the
// owning layers register via AddProbe; the sampler runs them at the
// start of each tick so their gauges land in the same sample as the
// counter deltas. Probes may take fine-grained latches (one lock stripe
// at a time) but must never stop the world.
//
// Self-accounting: the sampler measures its own tick cost into
// SamplerStats (kept out of the registry so series exports stay free of
// observer feedback); the extended obs_overhead_smoke gates
// sum(tick_ns) against wall-time * workers at <= 1%.
//
// Threading: Start() runs one background thread ticking at the
// configured interval; SampleNow() may be called instead (or in
// addition — appends are serialized) for manual, deterministic ticks.
// The logical_clock option stamps samples with their tick index instead
// of wall time, for byte-stable series in tests.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace oodb {

struct SamplerOptions {
  /// Tick period of the background thread (Start()).
  std::chrono::milliseconds interval{10};
  /// Ring capacity: how many recent samples the recorder keeps. Older
  /// samples fall off the front (dropped_samples counts them).
  size_t ring_capacity = 8192;
  /// Stamp samples with the tick index instead of wall nanoseconds
  /// (byte-stable series for deterministic workloads).
  bool logical_clock = false;
  /// Tag carried in the series meta line.
  std::string tag;
};

/// One tick of the flight recorder. Counter and histogram entries are
/// deltas since the previous sample and omit zero rows (a quiet tick is
/// a few bytes); gauges are absolute values, all of them every tick.
struct Sample {
  uint64_t tick = 0;   ///< 1-based tick index
  uint64_t ts_ns = 0;  ///< ns since sampler creation (tick in logical mode)
  uint64_t dur_ns = 0;  ///< cost of taking this sample
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  struct HistDelta {
    std::string name;
    uint64_t count = 0;  ///< observations this tick
    uint64_t sum = 0;    ///< value sum this tick
    /// (bucket index, delta) for buckets that grew this tick; indexes
    /// follow util/histogram's hist_layout.
    std::vector<std::pair<uint32_t, uint64_t>> buckets;
  };
  std::vector<HistDelta> hists;
};

/// Cumulative self-accounting, read at any time.
struct SamplerStats {
  uint64_t ticks = 0;
  uint64_t total_tick_ns = 0;  ///< sum of Sample::dur_ns
  uint64_t max_tick_ns = 0;
  uint64_t dropped_samples = 0;   ///< fell off the ring
  uint64_t nonmonotone_counters = 0;  ///< counter decreases observed
};

class MetricsSampler {
 public:
  explicit MetricsSampler(MetricsRegistry* registry,
                          SamplerOptions options = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Registers a named probe run at the start of every tick (in
  /// registration order), before the registry fold, so the gauges it
  /// sets land in that tick's sample. Register before Start().
  void AddProbe(std::string name, std::function<void()> probe);

  /// Starts the background tick thread. No-op if already running.
  void Start();

  /// Stops the thread and takes one final sample, so every delta since
  /// the last tick is in the ring. No-op if not running.
  void Stop();

  /// Takes one sample right now (probes included) and appends it to the
  /// ring. Serialized against the background thread; usable with or
  /// without Start() — without, the caller owns the cadence.
  Sample SampleNow();

  /// Copy of the ring, oldest first.
  std::vector<Sample> Series() const;

  SamplerStats Stats() const;

  /// The series as JSON lines: one series-meta line, then one sample
  /// line per tick (docs/OBSERVABILITY.md "Time-series schema").
  std::string ToJsonLines() const;
  Status WriteJsonLines(const std::string& path) const;

  /// Renders one sample as its JSON line (used by ToJsonLines; exposed
  /// for streaming exporters).
  static std::string SampleJson(const Sample& sample);

 private:
  /// The fold: runs probes, diffs the registry against baselines, and
  /// appends the sample. Requires tick_mu_.
  Sample Fold();

  /// Re-enumerates the registry when its version changed, carrying
  /// existing baselines over. Requires tick_mu_.
  void RefreshRefs();

  MetricsRegistry* const registry_;
  const SamplerOptions options_;
  const std::chrono::steady_clock::time_point start_;

  /// Serializes ticks (background thread vs SampleNow callers).
  mutable std::mutex tick_mu_;
  std::vector<std::pair<std::string, std::function<void()>>> probes_;
  uint64_t seen_version_ = 0;
  bool enumerated_ = false;
  MetricsRegistry::MetricRefs refs_;
  /// Previous-tick baselines, index-aligned with refs_.
  std::vector<uint64_t> counter_base_;
  std::vector<HistogramSnapshot> hist_base_;
  uint64_t tick_count_ = 0;

  /// The ring and self-stats, under their own mutex so readers
  /// (Series/ToJsonLines) never block a fold longer than one append.
  mutable std::mutex ring_mu_;
  std::deque<Sample> ring_;
  SamplerStats stats_;

  /// Background thread plumbing.
  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace oodb
