// Tracer: one span per action of the nested transaction tree.
//
// The runtime records a span for every action it executes — parented by
// the calling action, tagged with object id, method, top-level
// transaction id, call-tree level, and outcome (commit / abort /
// deadlock / error code) — and the Def 5 extension contributes instant
// events for virtual-object splits. Span ids ARE action ids, so a trace
// lines up 1:1 with the TransactionSystem record the validator reads.
//
// Two exports:
//   * JSON lines — one self-contained object per line, the schema the
//     trace_check validator enforces (docs/OBSERVABILITY.md);
//   * Chrome trace_event JSON — open in Perfetto or chrome://tracing;
//     spans become "X" (complete) events whose ts/dur containment
//     renders the call tree.
//
// Golden mode (TracerOptions::golden) replaces the wall clock by a
// process-wide logical tick counter and pins every thread id to 0, so a
// deterministic workload (e.g. the Fig 7 schedule, single-threaded)
// produces a byte-stable trace across runs — the contract of the
// obs_trace_golden_test.
//
// Thread-safety: RecordSpan/RecordInstant/NowNs may be called from any
// thread; exports require quiescence only for a *stable* result, never
// for memory safety.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace oodb {

/// One completed action, as the tracer saw it.
struct TraceSpan {
  uint64_t id = 0;          ///< action id (span ids are action ids)
  uint64_t parent = UINT64_MAX;  ///< calling action id; UINT64_MAX = root
  std::string name;         ///< "Object.method" (or the txn name at top)
  uint64_t object = UINT64_MAX;  ///< object id; UINT64_MAX for top-level
  uint64_t txn = 0;         ///< top-level transaction (root action) id
  uint32_t level = 0;       ///< call-tree depth; 0 = top-level
  uint32_t tid = 0;         ///< worker thread (0 in golden mode)
  uint64_t start = 0;       ///< NowNs() at entry
  uint64_t end = 0;         ///< NowNs() at exit
  std::string outcome;      ///< "ok","commit","abort","deadlock",...
  /// Root-transaction spans only: the per-phase ns breakdown as a JSON
  /// object fragment (obs/phases.h PhasesJson). Empty when phase
  /// attribution is off. Wall-clock ns, so the JSON-lines exporter
  /// omits it in golden mode to keep goldens byte-stable.
  std::string phases;
};

/// A point event (virtual-object split, retry backoff, ...).
struct TraceInstant {
  std::string name;
  uint64_t ts = 0;
  std::string detail;
};

struct TracerOptions {
  /// Logical clock + tid 0: byte-stable traces for deterministic
  /// workloads.
  bool golden = false;
  /// Free-form tag carried in the trace header (e.g. scheduler name).
  std::string tag;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  /// Current trace clock: wall nanoseconds (monotonic, zero-based), or
  /// the next logical tick in golden mode.
  uint64_t NowNs();

  /// Compact trace thread id of the caller (0 in golden mode).
  uint32_t ThreadId();

  void RecordSpan(TraceSpan span);
  void RecordInstant(std::string name, uint64_t ts, std::string detail);

  /// One meta line, then every instant and span sorted by (start, id).
  std::string ToJsonLines() const;

  /// Chrome trace_event JSON (the {"traceEvents": [...]} form).
  std::string ToChromeTrace() const;

  /// Recorded spans in record order (tests).
  std::vector<TraceSpan> Spans() const;

  size_t SpanCount() const;
  const TracerOptions& options() const { return options_; }

 private:
  /// Spans and instants in deterministic export order.
  void SortedEvents(std::vector<const TraceSpan*>* spans,
                    std::vector<const TraceInstant*>* instants) const;

  TracerOptions options_;
  std::atomic<uint64_t> logical_clock_{0};
  uint64_t wall_base_ = 0;

  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
};

}  // namespace oodb
