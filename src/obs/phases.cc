#include "obs/phases.h"

#include <sstream>

#include "obs/metrics.h"

namespace oodb {

namespace {

thread_local PhaseAccumulator* g_current_accumulator = nullptr;

constexpr const char* kPhaseNames[kPhaseCount] = {
    "admission",      "lock-wait",      "execute",
    "wal-force",      "commit-publish", "retry-backoff",
};

constexpr const char* kPhaseSuffixes[kPhaseCount] = {
    "admission",  "lock_wait",      "execute",
    "wal_force",  "commit_publish", "retry_backoff",
};

}  // namespace

const char* PhaseName(Phase phase) {
  return kPhaseNames[static_cast<size_t>(phase)];
}

const char* PhaseSuffix(Phase phase) {
  return kPhaseSuffixes[static_cast<size_t>(phase)];
}

uint64_t PhaseAccumulator::MeasuredTotal() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    if (static_cast<Phase>(i) == Phase::kExecute) continue;
    total += ns_[i].load(std::memory_order_relaxed);
  }
  return total;
}

PhaseAccumulator* PhaseAccumulator::Current() { return g_current_accumulator; }

void PhaseAccumulator::SetCurrent(PhaseAccumulator* acc) {
  g_current_accumulator = acc;
}

PhaseHistograms::PhaseHistograms(MetricsRegistry* registry) {
  for (size_t i = 0; i < kPhaseCount; ++i) {
    phase_[i] = registry->GetHistogram(
        std::string("phase.") + kPhaseSuffixes[i] + "_ns");
  }
  total_ = registry->GetHistogram("phase.total_ns");
}

void PhaseHistograms::Observe(const PhaseAccumulator& acc, uint64_t total_ns) {
  const uint64_t measured = acc.MeasuredTotal();
  const uint64_t execute = total_ns > measured ? total_ns - measured : 0;
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    phase_[i]->Observe(phase == Phase::kExecute ? execute : acc.Get(phase));
  }
  total_->Observe(total_ns);
}

std::string PhasesJson(const PhaseAccumulator& acc, uint64_t total_ns) {
  const uint64_t measured = acc.MeasuredTotal();
  const uint64_t execute = total_ns > measured ? total_ns - measured : 0;
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    os << "\"" << kPhaseNames[i] << "\":"
       << (phase == Phase::kExecute ? execute : acc.Get(phase)) << ",";
  }
  os << "\"total\":" << total_ns << "}";
  return os.str();
}

}  // namespace oodb
