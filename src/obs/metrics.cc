#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace oodb {

namespace {

/// Relaxed CAS fold toward a minimum / maximum.
void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (value > cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string HistogramSnapshot::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Quantile(0.50)),
                static_cast<unsigned long long>(Quantile(0.95)),
                static_cast<unsigned long long>(Quantile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

HistogramMetric::HistogramMetric() : buckets_(hist_layout::kBucketCount) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void HistogramMetric::Observe(uint64_t value) {
  buckets_[hist_layout::BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot HistogramMetric::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count_ = count_.load(std::memory_order_relaxed);
  snap.sum_ = sum_.load(std::memory_order_relaxed);
  snap.min_ = min_.load(std::memory_order_relaxed);
  snap.max_ = max_.load(std::memory_order_relaxed);
  return snap;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<HistogramMetric>();
    version_.fetch_add(1, std::memory_order_release);
  }
  return slot.get();
}

MetricsRegistry::MetricRefs MetricsRegistry::Enumerate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricRefs refs;
  refs.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    refs.counters.emplace_back(name, counter.get());
  }
  refs.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    refs.gauges.emplace_back(name, gauge.get());
  }
  refs.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    refs.histograms.emplace_back(name, histogram.get());
  }
  return refs;
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " " << histogram->Snapshot().Summary() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": " << counter->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << gauge->Value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap = histogram->Snapshot();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"sum\": %llu, \"mean\": %.1f, "
                  "\"min\": %llu, \"max\": %llu, \"p50\": %llu, "
                  "\"p95\": %llu, \"p99\": %llu}",
                  static_cast<unsigned long long>(snap.count()),
                  static_cast<unsigned long long>(snap.sum()), snap.Mean(),
                  static_cast<unsigned long long>(snap.min()),
                  static_cast<unsigned long long>(snap.max()),
                  static_cast<unsigned long long>(snap.Quantile(0.50)),
                  static_cast<unsigned long long>(snap.Quantile(0.95)),
                  static_cast<unsigned long long>(snap.Quantile(0.99)));
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << buf;
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace oodb
